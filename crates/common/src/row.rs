//! Row representation for the row-oriented paths.

use crate::datum::Datum;
use crate::error::{DashError, Result};
use crate::schema::Schema;
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single row of datums.
///
/// The columnar engine only materializes rows at plan edges (results,
/// shuffles); internally it stays in compressed column vectors. The
/// row-store baseline uses `Row` throughout.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Row(pub Vec<Datum>);

impl Row {
    /// Create a row from datums.
    pub fn new(values: Vec<Datum>) -> Row {
        Row(values)
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The datum at ordinal `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &Datum {
        &self.0[i]
    }

    /// All values.
    pub fn values(&self) -> &[Datum] {
        &self.0
    }

    /// Project a subset of columns into a new row.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenate with another row (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend(self.0.iter().cloned());
        v.extend(other.0.iter().cloned());
        Row(v)
    }

    /// Validate the row against a schema: arity, types, nullability.
    /// Integer widths are checked against their declared ranges.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if self.0.len() != schema.len() {
            return Err(DashError::analysis(format!(
                "row has {} values but table has {} columns",
                self.0.len(),
                schema.len()
            )));
        }
        for (i, (d, f)) in self.0.iter().zip(schema.fields()).enumerate() {
            if d.is_null() {
                if !f.nullable {
                    return Err(DashError::Constraint(format!(
                        "NULL value for NOT NULL column {} (ordinal {i})",
                        f.name
                    )));
                }
                continue;
            }
            let ok = match (f.data_type, d) {
                (DataType::Bool, Datum::Bool(_)) => true,
                (DataType::Int16, Datum::Int(v)) => {
                    (i16::MIN as i64..=i16::MAX as i64).contains(v)
                }
                (DataType::Int32, Datum::Int(v)) => {
                    (i32::MIN as i64..=i32::MAX as i64).contains(v)
                }
                (DataType::Int64, Datum::Int(_)) => true,
                (DataType::Float32 | DataType::Float64, Datum::Float(_)) => true,
                (DataType::Float32 | DataType::Float64, Datum::Int(_)) => true,
                (DataType::Decimal(_, _), Datum::Decimal(_, _)) => true,
                (DataType::Decimal(_, _), Datum::Int(_)) => true,
                (DataType::Date, Datum::Date(_)) => true,
                (DataType::Timestamp, Datum::Timestamp(_)) => true,
                (DataType::Utf8, Datum::Str(_)) => true,
                _ => false,
            };
            if !ok {
                return Err(DashError::analysis(format!(
                    "type mismatch for column {}: expected {}, got {:?}",
                    f.name, f.data_type, d
                )));
            }
        }
        Ok(())
    }

    /// Coerce row values to match the schema's declared types (int→float,
    /// int→decimal, string→date, etc.). Used by INSERT paths so users can
    /// write `'2017-01-01'` for a DATE column.
    pub fn coerce(mut self, schema: &Schema) -> Result<Row> {
        if self.0.len() != schema.len() {
            return Err(DashError::analysis(format!(
                "row has {} values but table has {} columns",
                self.0.len(),
                schema.len()
            )));
        }
        for (d, f) in self.0.iter_mut().zip(schema.fields()) {
            if d.is_null() {
                continue;
            }
            *d = coerce_datum(std::mem::replace(d, Datum::Null), f.data_type)?;
        }
        self.validate(schema)?;
        Ok(self)
    }
}

/// Coerce a single datum to a target type. Lossless or standard SQL casts
/// only; fails with an execution error on impossible conversions.
pub fn coerce_datum(d: Datum, target: DataType) -> Result<Datum> {
    use crate::date;
    if d.is_null() {
        return Ok(Datum::Null);
    }
    let out = match (target, &d) {
        (DataType::Bool, Datum::Bool(_)) => d,
        (DataType::Bool, Datum::Int(v)) => Datum::Bool(*v != 0),
        (DataType::Int16 | DataType::Int32 | DataType::Int64, Datum::Int(_)) => d,
        (DataType::Int16 | DataType::Int32 | DataType::Int64, Datum::Bool(b)) => {
            Datum::Int(*b as i64)
        }
        (DataType::Int16 | DataType::Int32 | DataType::Int64, Datum::Float(f)) => {
            Datum::Int(*f as i64)
        }
        (DataType::Int16 | DataType::Int32 | DataType::Int64, Datum::Str(s)) => Datum::Int(
            s.trim()
                .parse::<i64>()
                .map_err(|_| DashError::exec(format!("cannot cast '{s}' to integer")))?,
        ),
        (DataType::Float32 | DataType::Float64, _) if d.as_float().is_some() => {
            Datum::Float(d.as_float().unwrap())
        }
        (DataType::Float32 | DataType::Float64, Datum::Str(s)) => Datum::Float(
            s.trim()
                .parse::<f64>()
                .map_err(|_| DashError::exec(format!("cannot cast '{s}' to double")))?,
        ),
        (DataType::Decimal(_, s), Datum::Int(v)) => {
            Datum::Decimal(*v as i128 * 10i128.pow(s as u32), s)
        }
        (DataType::Decimal(_, s), Datum::Float(f)) => {
            Datum::Decimal((f * 10f64.powi(s as i32)).round() as i128, s)
        }
        (DataType::Decimal(_, s), Datum::Decimal(v, vs)) => {
            rescale_decimal(*v, *vs, s)
        }
        (DataType::Decimal(_, s), Datum::Str(txt)) => {
            let f: f64 = txt
                .trim()
                .parse()
                .map_err(|_| DashError::exec(format!("cannot cast '{txt}' to decimal")))?;
            Datum::Decimal((f * 10f64.powi(s as i32)).round() as i128, s)
        }
        (DataType::Date, Datum::Date(_)) => d,
        (DataType::Date, Datum::Timestamp(t)) => {
            Datum::Date(date::timestamp_micros_to_date(*t))
        }
        (DataType::Date, Datum::Str(s)) => Datum::Date(
            date::parse_date(s)
                .ok_or_else(|| DashError::exec(format!("cannot cast '{s}' to date")))?,
        ),
        (DataType::Timestamp, Datum::Timestamp(_)) => d,
        (DataType::Timestamp, Datum::Date(days)) => {
            Datum::Timestamp(date::date_to_timestamp_micros(*days))
        }
        (DataType::Timestamp, Datum::Str(s)) => Datum::Timestamp(
            date::parse_timestamp(s)
                .ok_or_else(|| DashError::exec(format!("cannot cast '{s}' to timestamp")))?,
        ),
        (DataType::Utf8, Datum::Str(_)) => d,
        (DataType::Utf8, other) => Datum::str(other.render()),
        (t, other) => {
            return Err(DashError::exec(format!(
                "cannot coerce {other:?} to {t}"
            )))
        }
    };
    Ok(out)
}

fn rescale_decimal(v: i128, from: u8, to: u8) -> Datum {
    use std::cmp::Ordering::*;
    match from.cmp(&to) {
        Equal => Datum::Decimal(v, to),
        Less => Datum::Decimal(v * 10i128.pow((to - from) as u32), to),
        Greater => {
            let div = 10i128.pow((from - to) as u32);
            // Round half away from zero.
            let q = (v + v.signum() * div / 2) / div;
            Datum::Decimal(q, to)
        }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Datum>> for Row {
    fn from(v: Vec<Datum>) -> Self {
        Row(v)
    }
}

/// Build a row from heterogeneous literals: `row![1i64, "x", Datum::Null]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::row::Row::new(vec![$($crate::datum::Datum::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::not_null("id", DataType::Int32),
            Field::new("ts", DataType::Date),
            Field::new("amt", DataType::Decimal(10, 2)),
        ])
        .unwrap()
    }

    #[test]
    fn validate_catches_not_null() {
        let r = Row::new(vec![Datum::Null, Datum::Date(0), Datum::Decimal(100, 2)]);
        assert!(matches!(
            r.validate(&schema()),
            Err(DashError::Constraint(_))
        ));
    }

    #[test]
    fn validate_catches_range() {
        let r = Row::new(vec![
            Datum::Int(i64::MAX),
            Datum::Date(0),
            Datum::Decimal(1, 2),
        ]);
        assert!(r.validate(&schema()).is_err());
    }

    #[test]
    fn coerce_string_date_and_int_decimal() {
        let r = row![7i64, "2017-04-20", 5i64].coerce(&schema()).unwrap();
        assert_eq!(r.get(1), &Datum::Date(17276));
        assert_eq!(r.get(2), &Datum::Decimal(500, 2));
    }

    #[test]
    fn coerce_bad_date_fails() {
        let r = row![7i64, "not a date", 5i64].coerce(&schema());
        assert!(r.is_err());
    }

    #[test]
    fn decimal_rescale_rounds() {
        assert_eq!(rescale_decimal(125, 2, 1), Datum::Decimal(13, 1)); // 1.25 -> 1.3
        assert_eq!(rescale_decimal(-125, 2, 1), Datum::Decimal(-13, 1));
        assert_eq!(rescale_decimal(5, 0, 2), Datum::Decimal(500, 2));
    }

    #[test]
    fn project_concat() {
        let r = row![1i64, "a", 2.5f64];
        assert_eq!(r.project(&[2, 0]), row![2.5f64, 1i64]);
        assert_eq!(r.concat(&row![true]).len(), 4);
    }
}

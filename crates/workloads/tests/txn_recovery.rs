//! Acceptance tests for durable concurrent statements: the concurrent
//! customer mix loses no updates, kill-mid-commit crashes recover to a
//! consistent committed snapshot for every fault seed, and snapshot
//! readers concurrent with writers see exactly what a serial schedule
//! would have shown.
//!
//! Environment knobs (the CI crash-recovery matrix):
//! * `DASH_FAULT_SEED` — run the chaos test with one specific seed
//!   (default: the full built-in set `{7, 11, 42, 1337}`).
//! * `DASH_PARALLELISM` — concurrent stream count for the mix test
//!   (default 4).

use dash_common::faults::{
    FaultAction, FaultPolicy, FaultRegistry, CKPT_CAPTURE, TXN_STAMP, WAL_COMMIT, WAL_CREATE,
};
use dash_core::{Database, HardwareSpec};
use dash_storage::wal::SyncPolicy;
use dash_workloads::concurrent::{load_base_tables, run_concurrent_mix, MixConfig};
use dash_workloads::customer;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dash-txn-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Acceptance (a): the N-thread customer statement mix commits with zero
/// lost updates — the contended audit counter equals the number of
/// committed batches, and every per-stream counter matches its stream's
/// commit count.
#[test]
fn concurrent_customer_mix_loses_no_updates() {
    let streams = env_usize("DASH_PARALLELISM", 4).clamp(1, 16);
    let db = Database::with_hardware(HardwareSpec::laptop());
    let w = customer::generate(400, 0);
    load_base_tables(&db, &w.tables).unwrap();

    let cfg = MixConfig {
        streams,
        statements_per_stream: 150,
        scale: 400,
        batch: 5,
        max_retries: 128,
        checkpoint_every: None,
    };
    let out = run_concurrent_mix(&db, &cfg).unwrap();

    assert_eq!(out.per_stream.len(), streams);
    assert!(
        out.total_commits() >= streams as u64 * 10,
        "streams barely committed: {:?}",
        out.per_stream
    );
    assert_eq!(
        out.lost_updates(),
        0,
        "lost updates on the contended counter: commits={} audit={:?}",
        out.total_commits(),
        out.audit
    );
    assert!(
        out.is_consistent(),
        "per-stream audit mismatch: {:?} vs {:?}",
        out.per_stream,
        out.audit
    );
    // The monitor saw the same commits the streams counted (setup/load
    // commits also land there, so it is a lower bound).
    let txn_stats = db.monitor().txn();
    assert!(txn_stats.txn_commits >= out.total_commits());
}

/// One chaos round: run transactions until the armed WAL_COMMIT failpoint
/// "kills" the log, reopen, and verify the surviving database contains
/// exactly the acknowledged transactions — each one whole.
fn chaos_round(seed: u64) {
    let dir = tmpdir(&format!("chaos-{seed}"));
    // Crash at a seed-dependent commit so each seed exercises a different
    // log prefix; EveryNth keeps the schedule deterministic regardless of
    // thread interleaving.
    let nth = 3 + (seed % 7);
    let faults = FaultRegistry::with_seed(seed);
    faults.arm(
        WAL_COMMIT,
        FaultPolicy::EveryNth(nth),
        FaultAction::Error(format!("chaos seed {seed}: die before commit record")),
    );

    let mut acked: Vec<i64> = Vec::new();
    {
        let db = Database::open_with(
            dir.clone(),
            HardwareSpec::laptop(),
            SyncPolicy::Always,
            faults,
        )
        .unwrap();
        let mut s = db.connect();
        s.execute("CREATE TABLE ledger (k BIGINT NOT NULL, v BIGINT NOT NULL)")
            .unwrap();
        for k in 0..40i64 {
            // Each transaction writes two rows; atomicity means recovery
            // must surface both or neither.
            let committed = (|| -> dash_common::Result<()> {
                s.execute("BEGIN")?;
                s.execute(&format!("INSERT INTO ledger VALUES ({k}, {})", k * 10))?;
                s.execute(&format!("INSERT INTO ledger VALUES ({k}, {})", k * 10 + 1))?;
                s.execute("COMMIT")?;
                Ok(())
            })();
            match committed {
                Ok(()) => acked.push(k),
                Err(_) => {
                    // The log is dead from here on; the session may think a
                    // transaction is still open — clear it and stop, like a
                    // process that just lost its storage.
                    if s.in_transaction() {
                        let _ = s.execute("ROLLBACK");
                    }
                    break;
                }
            }
        }
        s.close();
        // `db` drops here: the crashed process image.
    }

    // The failpoint must actually have fired (the CREATE and the ledger
    // commits give it plenty of evaluations).
    assert!(
        !acked.is_empty() && acked.len() < 40,
        "seed {seed}: expected a mid-run crash, acked {} commits",
        acked.len()
    );

    // Reboot and audit.
    let db = Database::open(dir.clone()).unwrap();
    let mut s = db.connect();
    let rows = s.query("SELECT k, v FROM ledger").unwrap();
    let mut by_key: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
    for r in &rows {
        by_key
            .entry(r.get(0).as_int().unwrap())
            .or_default()
            .push(r.get(1).as_int().unwrap());
    }
    let survivors: Vec<i64> = by_key.keys().copied().collect();
    assert_eq!(
        survivors, acked,
        "seed {seed}: recovered keys differ from acknowledged commits"
    );
    for (k, mut vs) in by_key {
        vs.sort();
        assert_eq!(
            vs,
            vec![k * 10, k * 10 + 1],
            "seed {seed}: transaction for key {k} recovered partially"
        );
    }
    // The monitor recorded the replay.
    let txn_stats = db.monitor().txn();
    assert!(
        txn_stats.wal_records_replayed > 0,
        "seed {seed}: recovery replayed nothing"
    );
    s.close();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance (b): kill-mid-commit chaos replays to a consistent committed
/// snapshot for every fault seed.
#[test]
fn kill_mid_commit_recovers_committed_snapshot_per_seed() {
    match std::env::var("DASH_FAULT_SEED") {
        Ok(s) => chaos_round(s.parse().expect("DASH_FAULT_SEED must be an integer")),
        Err(_) => {
            for seed in [7u64, 11, 42, 1337] {
                chaos_round(seed);
            }
        }
    }
}

/// Acceptance (c): a snapshot reader concurrent with committing writers
/// returns byte-identical results to the serial schedule in which all its
/// reads run before any writer starts.
#[test]
fn snapshot_reads_match_serial_schedule() {
    let setup = |db: &Arc<Database>| {
        let mut s = db.connect();
        s.execute("CREATE TABLE bal (k BIGINT NOT NULL, v BIGINT NOT NULL)")
            .unwrap();
        s.execute("BEGIN").unwrap();
        for k in 0..100i64 {
            s.execute(&format!("INSERT INTO bal VALUES ({k}, {k})")).unwrap();
        }
        s.execute("COMMIT").unwrap();
        s.close();
    };
    const Q: &str = "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM bal";
    let render = |db: &Arc<Database>| {
        let mut s = db.connect();
        let out = s.execute(Q).unwrap().to_table();
        s.close();
        out
    };

    // Serial reference: the same data with no writers at all.
    let serial_db = Database::with_hardware(HardwareSpec::laptop());
    setup(&serial_db);
    let serial = render(&serial_db);

    // Concurrent run: a reader pins a snapshot, then writers commit churn
    // while the reader keeps re-reading inside its transaction.
    let db = Database::with_hardware(HardwareSpec::laptop());
    setup(&db);
    let mut reader = db.connect();
    reader.execute("BEGIN").unwrap();
    let first = reader.execute(Q).unwrap().to_table();
    assert_eq!(first, serial, "pinned snapshot differs from serial result");

    std::thread::scope(|scope| {
        let writers: Vec<_> = (0..3)
            .map(|w| {
                let db = &db;
                scope.spawn(move || {
                    let mut s = db.connect();
                    for i in 0..30i64 {
                        let k = w * 1000 + i;
                        // Autocommit single-statement transactions.
                        s.execute(&format!("INSERT INTO bal VALUES ({k}, {})", k * 2))
                            .unwrap();
                        let _ = s.execute(&format!(
                            "UPDATE bal SET v = v + 1 WHERE k = {}",
                            i % 100
                        ));
                        let _ = s.execute(&format!("DELETE FROM bal WHERE k = {k}"));
                    }
                    s.close();
                })
            })
            .collect();
        // Interleave reads with the writers' commits: every read inside
        // the open transaction must be byte-identical to the first.
        for round in 0..20 {
            let again = reader.execute(Q).unwrap().to_table();
            assert_eq!(again, serial, "snapshot drifted on read #{round}");
            std::thread::yield_now();
        }
        for w in writers {
            w.join().unwrap();
        }
    });

    // Still pinned after every writer committed.
    let last_pinned = reader.execute(Q).unwrap().to_table();
    assert_eq!(last_pinned, serial);
    reader.execute("COMMIT").unwrap();

    // A fresh statement (new snapshot) finally sees the churn: the
    // updates incremented values, so SUM must have moved.
    let after = render(&db);
    assert_ne!(after, serial, "post-commit read still pinned to old snapshot");
}

/// Group commit is observable: N sessions committing concurrently share
/// WAL fsyncs, so the monitor ends the run with fewer commit-path fsyncs
/// than commits (ISSUE 7 acceptance: `wal_fsyncs < commits`).
#[test]
fn group_commit_amortizes_fsyncs_across_sessions() {
    let dir = tmpdir("group-commit");
    let db = Database::open_with(
        dir.clone(),
        HardwareSpec::laptop(),
        SyncPolicy::Commit,
        FaultRegistry::new(),
    )
    .unwrap();
    // A wide window so even slow CI machines overlap their commits.
    db.set_group_commit_window(Duration::from_millis(10));
    {
        let mut s = db.connect();
        s.execute("CREATE TABLE gc (k BIGINT NOT NULL, v BIGINT NOT NULL)")
            .unwrap();
        s.close();
    }

    const THREADS: i64 = 6;
    const TXNS: i64 = 20;
    let barrier = std::sync::Barrier::new(THREADS as usize);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let db = &db;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut s = db.connect();
                barrier.wait();
                for i in 0..TXNS {
                    let k = t * 1000 + i;
                    s.execute("BEGIN").unwrap();
                    s.execute(&format!("INSERT INTO gc VALUES ({k}, {})", k * 2))
                        .unwrap();
                    s.execute("COMMIT").unwrap();
                }
                s.close();
            });
        }
    });

    let mut s = db.connect();
    let n = s.query("SELECT COUNT(*) FROM gc").unwrap()[0].get(0).as_int();
    assert_eq!(n, Some(THREADS * TXNS), "every committed insert visible");
    s.close();

    let stats = db.monitor().txn();
    assert!(stats.group_commit_batches >= 1, "no batches recorded");
    assert!(stats.wal_fsyncs > 0, "durable commits must fsync");
    assert!(
        stats.wal_fsyncs < (THREADS * TXNS) as u64,
        "no batch ever absorbed a second commit: {} fsyncs for {} commits",
        stats.wal_fsyncs,
        THREADS * TXNS
    );
    assert!(
        stats.wal_fsyncs < stats.txn_commits,
        "acceptance: wal_fsyncs ({}) must stay below commits ({})",
        stats.wal_fsyncs,
        stats.txn_commits
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// ISSUE 7 acceptance: `Database::checkpoint` runs against a snapshot and
/// succeeds with transactions still open; their pending rows are resolved
/// at recovery from the commit records in the next generation.
#[test]
fn checkpoint_accepts_open_transactions() {
    let dir = tmpdir("ckpt-open-txn");
    {
        let db = Database::open_with(
            dir.clone(),
            HardwareSpec::laptop(),
            SyncPolicy::Commit,
            FaultRegistry::new(),
        )
        .unwrap();
        let mut writer = db.connect();
        writer
            .execute("CREATE TABLE acct (k BIGINT NOT NULL, v BIGINT NOT NULL)")
            .unwrap();
        writer.execute("INSERT INTO acct VALUES (100, 100)").unwrap();

        // Leave a transaction open with pending (unstamped) rows...
        writer.execute("BEGIN").unwrap();
        writer.execute("INSERT INTO acct VALUES (1, 10)").unwrap();
        writer.execute("INSERT INTO acct VALUES (2, 20)").unwrap();
        assert!(writer.in_transaction());

        // ...and a second one that will roll back.
        let mut doomed = db.connect();
        doomed.execute("BEGIN").unwrap();
        doomed.execute("INSERT INTO acct VALUES (999, 999)").unwrap();

        // The old checkpoint refused this outright; the snapshot
        // checkpointer must not.
        let generation = db.checkpoint().expect("checkpoint with open transactions");
        assert_eq!(generation, db.generation());
        assert_eq!(db.monitor().txn().checkpoints, 1);

        // Both transactions outlive the checkpoint.
        writer.execute("INSERT INTO acct VALUES (3, 30)").unwrap();
        writer.execute("COMMIT").unwrap();
        doomed.execute("ROLLBACK").unwrap();
        writer.close();
        doomed.close();
    }

    // The checkpoint captured rows 1 and 2 as *pending*; only the commit
    // record in the next generation proves them committed. Recovery must
    // resolve them — and must not resurrect the rolled-back 999.
    let db = Database::open(dir.clone()).unwrap();
    let mut s = db.connect();
    let rows = s.query("SELECT k, v FROM acct").unwrap();
    let mut got: Vec<(i64, i64)> = rows
        .iter()
        .map(|r| (r.get(0).as_int().unwrap(), r.get(1).as_int().unwrap()))
        .collect();
    got.sort();
    assert_eq!(
        got,
        vec![(1, 10), (2, 20), (3, 30), (100, 100)],
        "pending-at-checkpoint rows must recover via the commit record"
    );
    s.close();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression (satellite bugfix 1): when stamping fails after the commit
/// record is durable, the engine must poison itself — refusing new writes
/// — rather than undo a transaction the log already promises. On reopen
/// the log wins: the transaction is present.
#[test]
fn stamp_failure_poisons_engine_and_log_wins() {
    let dir = tmpdir("stamp-poison");
    let faults = FaultRegistry::new();
    {
        let db = Database::open_with(
            dir.clone(),
            HardwareSpec::laptop(),
            SyncPolicy::Commit,
            faults.clone(),
        )
        .unwrap();
        let mut s = db.connect();
        s.execute("CREATE TABLE pled (k BIGINT NOT NULL)").unwrap();
        s.execute("INSERT INTO pled VALUES (1)").unwrap();

        // Arm *after* setup so only the next commit's stamping dies.
        faults.arm(
            TXN_STAMP,
            FaultPolicy::OneShot,
            FaultAction::Error("stamping torn by test".into()),
        );
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO pled VALUES (2)").unwrap();
        let err = s.execute("COMMIT").unwrap_err().to_string();
        assert!(
            err.contains("poisoned"),
            "commit error must say the engine is poisoned: {err}"
        );
        assert!(db.is_poisoned());

        // Writes are refused from here on; reads still work.
        let werr = s.execute("INSERT INTO pled VALUES (3)").unwrap_err().to_string();
        assert!(werr.contains("poisoned"), "write on poisoned engine: {werr}");
        assert!(s.query("SELECT COUNT(*) FROM pled").is_ok());

        // Checkpoints are refused too — the in-memory image has diverged
        // from the log and must not be captured as truth.
        assert!(db.checkpoint().is_err());
        s.close();
    }

    // Reopen: the commit record is durable, so replay surfaces key 2 —
    // the log, not the torn memory image, is the source of truth.
    let db = Database::open(dir.clone()).unwrap();
    assert!(!db.is_poisoned(), "reopen recovers from poisoning");
    let mut s = db.connect();
    let mut got: Vec<i64> = s
        .query("SELECT k FROM pled")
        .unwrap()
        .iter()
        .map(|r| r.get(0).as_int().unwrap())
        .collect();
    got.sort();
    assert_eq!(got, vec![1, 2], "the logged transaction must survive reopen");
    s.close();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression (satellite bugfix 2): DDL and loads racing the checkpoint's
/// generation switch must not lose records. `CKPT_CAPTURE` stalls the
/// checkpointer right after the switch while the main thread creates
/// tables, inserts, and runs a CTAS into the freshly-cut generation.
#[test]
fn ddl_concurrent_with_checkpoint_survives_reopen() {
    let dir = tmpdir("ckpt-ddl-race");
    let faults = FaultRegistry::new();
    {
        let db = Database::open_with(
            dir.clone(),
            HardwareSpec::laptop(),
            SyncPolicy::Commit,
            faults.clone(),
        )
        .unwrap();
        let mut s = db.connect();
        s.execute("CREATE TABLE base (k BIGINT NOT NULL)").unwrap();
        for k in 0..10i64 {
            s.execute(&format!("INSERT INTO base VALUES ({k})")).unwrap();
        }

        // Hold the checkpoint open mid-capture for 100ms.
        faults.arm(
            CKPT_CAPTURE,
            FaultPolicy::OneShot,
            FaultAction::Stall(Duration::from_millis(100)),
        );
        std::thread::scope(|scope| {
            let db = &db;
            let ckpt = scope.spawn(move || db.checkpoint().expect("stalled checkpoint"));
            // Let the checkpointer reach the stall, then race it.
            std::thread::sleep(Duration::from_millis(20));
            s.execute("CREATE TABLE extra (k BIGINT NOT NULL)").unwrap();
            s.execute("INSERT INTO extra VALUES (41)").unwrap();
            s.execute("INSERT INTO extra VALUES (42)").unwrap();
            s.execute("CREATE TABLE snap AS SELECT k FROM base").unwrap();
            ckpt.join().unwrap();
        });
        s.close();
    }

    let db = Database::open(dir.clone()).unwrap();
    let mut s = db.connect();
    let count = |s: &mut dash_core::Session, q: &str| -> i64 {
        s.query(q).unwrap()[0].get(0).as_int().unwrap()
    };
    assert_eq!(count(&mut s, "SELECT COUNT(*) FROM base"), 10);
    assert_eq!(count(&mut s, "SELECT COUNT(*) FROM extra"), 2);
    assert_eq!(
        count(&mut s, "SELECT COUNT(*) FROM snap"),
        10,
        "CTAS rows racing the generation switch must be WAL-covered"
    );
    s.close();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression (satellite bugfix 3): the checkpoint creates `wal.N+1`
/// *before* publishing generation N+1. When the create fails, the old
/// generation stays live, commits keep flowing, and a later checkpoint
/// succeeds.
#[test]
fn failed_wal_create_leaves_old_generation_live() {
    let dir = tmpdir("wal-create-fail");
    let faults = FaultRegistry::new();
    {
        let db = Database::open_with(
            dir.clone(),
            HardwareSpec::laptop(),
            SyncPolicy::Commit,
            faults.clone(),
        )
        .unwrap();
        let mut s = db.connect();
        s.execute("CREATE TABLE w (k BIGINT NOT NULL)").unwrap();
        s.execute("INSERT INTO w VALUES (1)").unwrap();

        let gen_before = db.generation();
        faults.arm(
            WAL_CREATE,
            FaultPolicy::OneShot,
            FaultAction::Error("disk full creating the next generation".into()),
        );
        let err = db.checkpoint().unwrap_err().to_string();
        assert!(err.contains("disk full"), "surfaced create failure: {err}");
        assert_eq!(
            db.generation(),
            gen_before,
            "a failed create must not publish the new generation"
        );

        // The old log is untouched: commits keep working...
        s.execute("INSERT INTO w VALUES (2)").unwrap();
        // ...and the next checkpoint (failpoint spent) succeeds.
        let generation = db.checkpoint().expect("retry after failed create");
        assert_eq!(generation, gen_before + 1);
        s.execute("INSERT INTO w VALUES (3)").unwrap();
        s.close();
    }

    let db = Database::open(dir.clone()).unwrap();
    let mut s = db.connect();
    let mut got: Vec<i64> = s
        .query("SELECT k FROM w")
        .unwrap()
        .iter()
        .map(|r| r.get(0).as_int().unwrap())
        .collect();
    got.sort();
    assert_eq!(got, vec![1, 2, 3]);
    s.close();
    let _ = std::fs::remove_dir_all(&dir);
}

/// ISSUE 7 acceptance: the concurrent mix with a checkpointer thread
/// firing every few milliseconds still loses zero updates, and the
/// checkpointed state reopens to the same audit totals.
#[test]
fn checkpoint_under_load_loses_no_updates() {
    let streams = env_usize("DASH_PARALLELISM", 4).clamp(1, 16);
    let dir = tmpdir("ckpt-under-load");
    let total;
    {
        let db = Database::open_with(
            dir.clone(),
            HardwareSpec::laptop(),
            SyncPolicy::Commit,
            FaultRegistry::new(),
        )
        .unwrap();
        let w = customer::generate(200, 0);
        load_base_tables(&db, &w.tables).unwrap();

        let cfg = MixConfig {
            streams,
            statements_per_stream: 120,
            scale: 200,
            batch: 5,
            max_retries: 128,
            checkpoint_every: Some(Duration::from_millis(10)),
        };
        let out = run_concurrent_mix(&db, &cfg).unwrap();
        assert!(
            out.checkpoints >= 1,
            "the checkpointer never completed a pass: {out:?}"
        );
        assert_eq!(out.checkpoint_errors, 0, "checkpoints failed: {out:?}");
        assert_eq!(
            out.lost_updates(),
            0,
            "checkpointing raced an update away: commits={} audit={:?}",
            out.total_commits(),
            out.audit
        );
        assert!(out.is_consistent(), "per-stream audit mismatch: {out:?}");
        assert_eq!(db.monitor().txn().checkpoints, out.checkpoints);
        total = out.total_commits() as i64;
    }

    // Recovery from checkpoint + trailing generations reproduces the
    // exact audit totals.
    let db = Database::open(dir.clone()).unwrap();
    let mut s = db.connect();
    let shared = s
        .query(&format!(
            "SELECT hits FROM mix_audit WHERE id = {}",
            dash_workloads::concurrent::SHARED_AUDIT_ID
        ))
        .unwrap()[0]
        .get(0)
        .as_int()
        .unwrap();
    assert_eq!(shared, total, "reopened audit counter lost committed batches");
    s.close();
    let _ = std::fs::remove_dir_all(&dir);
}

/// One checkpoint-under-load chaos round: writers commit through group
/// commit while a checkpointer cuts generations, until `WAL_COMMIT`
/// kills the log. With batched commits a crash can leave some outcomes
/// *unknown* (the record may have reached disk with the dying batch), so
/// the recovery invariant is set-wise:
/// `acked ⊆ recovered ⊆ acked ∪ unknown` — and every recovered
/// transaction is whole.
fn ckpt_chaos_round(seed: u64) {
    let dir = tmpdir(&format!("ckpt-chaos-{seed}"));
    let nth = 25 + (seed % 13);
    let faults = FaultRegistry::with_seed(seed);
    faults.arm(
        WAL_COMMIT,
        FaultPolicy::EveryNth(nth),
        FaultAction::Error(format!("ckpt chaos seed {seed}")),
    );

    let acked = Mutex::new(Vec::<i64>::new());
    let unknown = Mutex::new(Vec::<i64>::new());
    {
        let db = Database::open_with(
            dir.clone(),
            HardwareSpec::laptop(),
            SyncPolicy::Commit,
            faults.clone(),
        )
        .unwrap();
        {
            let mut s = db.connect();
            s.execute("CREATE TABLE ledger (k BIGINT NOT NULL, v BIGINT NOT NULL)")
                .unwrap();
            s.close();
        }

        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let ckpt = {
                let (db, done) = (&db, &done);
                scope.spawn(move || {
                    while !done.load(Ordering::SeqCst) {
                        // Errors expected once the log dies.
                        let _ = db.checkpoint();
                        std::thread::sleep(Duration::from_millis(5));
                    }
                })
            };
            let writers: Vec<_> = (0..4i64)
                .map(|w| {
                    let (db, acked, unknown) = (&db, &acked, &unknown);
                    scope.spawn(move || {
                        let mut s = db.connect();
                        for i in 0..25i64 {
                            let k = w * 1000 + i;
                            let committed = (|| -> dash_common::Result<()> {
                                s.execute("BEGIN")?;
                                s.execute(&format!("INSERT INTO ledger VALUES ({k}, {})", k * 10))?;
                                s.execute(&format!(
                                    "INSERT INTO ledger VALUES ({k}, {})",
                                    k * 10 + 1
                                ))?;
                                s.execute("COMMIT")?;
                                Ok(())
                            })();
                            match committed {
                                Ok(()) => acked.lock().unwrap().push(k),
                                Err(e) => {
                                    if s.in_transaction() {
                                        let _ = s.execute("ROLLBACK");
                                    }
                                    if e.to_string().contains("outcome unknown") {
                                        // May or may not be durable; keep
                                        // going — later commits will fail
                                        // cleanly on the dead log.
                                        unknown.lock().unwrap().push(k);
                                    } else {
                                        break;
                                    }
                                }
                            }
                        }
                        s.close();
                    })
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }
            done.store(true, Ordering::SeqCst);
            ckpt.join().unwrap();
        });
    }

    let mut acked = acked.into_inner().unwrap();
    let mut unknown = unknown.into_inner().unwrap();
    acked.sort();
    unknown.sort();
    assert!(
        acked.len() < 100,
        "seed {seed}: the failpoint never fired ({} acks)",
        acked.len()
    );

    let db = Database::open(dir.clone()).unwrap();
    let mut s = db.connect();
    let rows = s.query("SELECT k, v FROM ledger").unwrap();
    let mut by_key: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
    for r in &rows {
        by_key
            .entry(r.get(0).as_int().unwrap())
            .or_default()
            .push(r.get(1).as_int().unwrap());
    }
    for k in &acked {
        assert!(
            by_key.contains_key(k),
            "seed {seed}: acknowledged txn {k} lost (acked={acked:?}, unknown={unknown:?})"
        );
    }
    for (k, mut vs) in by_key {
        assert!(
            acked.binary_search(&k).is_ok() || unknown.binary_search(&k).is_ok(),
            "seed {seed}: phantom txn {k} recovered without an ack"
        );
        vs.sort();
        assert_eq!(
            vs,
            vec![k * 10, k * 10 + 1],
            "seed {seed}: txn {k} recovered partially"
        );
    }
    s.close();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance (ISSUE 7 CI leg): kill-during-checkpoint chaos recovers the
/// set-wise committed snapshot for every fault seed.
#[test]
fn kill_during_checkpoint_under_load_recovers_per_seed() {
    match std::env::var("DASH_FAULT_SEED") {
        Ok(s) => ckpt_chaos_round(s.parse().expect("DASH_FAULT_SEED must be an integer")),
        Err(_) => {
            for seed in [7u64, 11, 42, 1337] {
                ckpt_chaos_round(seed);
            }
        }
    }
}

//! Analyzer and planner: AST → `dash_exec::PhysicalPlan`.
//!
//! Responsibilities:
//! * name resolution against the catalog (tables, views — with the view's
//!   *creation* dialect, per §II.C.2 — CTEs, aliases);
//! * column pruning (scans project only referenced columns — where the
//!   columnar architecture's I/O advantage comes from);
//! * predicate pushdown into [`dash_exec::scan::ScanConfig`] so simple
//!   comparisons run on compressed codes;
//! * join planning: explicit JOIN ... ON/USING, comma-lists joined through
//!   WHERE equalities, Oracle `(+)` outer-join markers;
//! * aggregation, HAVING, DISTINCT, ORDER BY (ordinals, aliases),
//!   LIMIT/OFFSET/FETCH FIRST, ROWNUM, CONNECT BY, sequences;
//! * scalar/IN/EXISTS subqueries (uncorrelated; evaluated eagerly at plan
//!   time).

use crate::ast::*;
use dash_common::dialect::Dialect;
use dash_common::{DashError, DataType, Datum, Field, Result, Row, Schema};
use dash_exec::agg::{AggExpr, AggFunc};
use dash_exec::expr::{ArithOp, CmpOp, Expr};
use dash_exec::functions::{EvalContext, FunctionRegistry};
use dash_exec::join::JoinType;
use dash_exec::key::KeyMode;
use dash_exec::plan::{PhysicalPlan, SharedTable};
use dash_exec::scan::{ColumnPredicate, ScanConfig};
use dash_exec::sort::SortKey;
use dash_storage::bufferpool::BufferPool;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A resolved table: catalog id plus the shared storage handle.
#[derive(Clone)]
pub struct TableHandle {
    /// Catalog table id (used for buffer-pool page keys).
    pub id: u32,
    /// The storage object.
    pub table: SharedTable,
}

/// What the planner needs from the catalog.
pub trait SchemaProvider {
    /// Resolve a base table (following DB2 aliases).
    fn table(&self, name: &str) -> Result<TableHandle>;

    /// Resolve a view: its defining SQL and the dialect it was created
    /// under (views keep their creation dialect, §II.C.2).
    fn view(&self, name: &str) -> Option<(String, Dialect)>;

    /// The shared buffer pool, if the session tracks one.
    fn pool(&self) -> Option<Arc<Mutex<BufferPool>>> {
        None
    }

    /// Look up a user-defined extension function (§II.C.4). UDXes shadow
    /// builtins of the same name. Default: no UDXes.
    fn udx(&self, _name: &str) -> Option<Arc<dash_exec::functions::ScalarFunction>> {
        None
    }

    /// Intra-query scan parallelism (strides scheduled across threads,
    /// §II.B.6). Default: serial.
    fn parallelism(&self) -> usize {
        1
    }

    /// Rows per parallel sort run (`DASH_SORT_RUN_ROWS`). Default: the
    /// engine default.
    fn sort_run_rows(&self) -> usize {
        dash_exec::sort::DEFAULT_SORT_RUN_ROWS
    }

    /// The session's snapshot-isolation view, if it reads under one.
    /// `None` (the default) scans latest-committed state — which keeps
    /// providers that predate transactions working unchanged.
    fn snapshot(&self) -> Option<dash_common::txn::SnapshotView> {
        None
    }
}

/// Plan a SELECT statement into a physical plan.
pub fn plan_select(
    stmt: &SelectStmt,
    provider: &dyn SchemaProvider,
    dialect: Dialect,
    ctx: &EvalContext,
) -> Result<PhysicalPlan> {
    let mut planner = Planner {
        provider,
        dialect,
        registry: dash_exec::functions::builtin_registry(),
        ctx,
        ctes: HashMap::new(),
        depth: 0,
    };
    let (plan, _) = planner.plan_query(stmt)?;
    Ok(pushdown(plan))
}

/// Lower a standalone expression (no table scope) — used by INSERT VALUES
/// and UPDATE assignments in `dash-core`.
pub fn lower_standalone_expr(
    ast: &AstExpr,
    provider: &dyn SchemaProvider,
    dialect: Dialect,
    ctx: &EvalContext,
) -> Result<Expr> {
    let mut planner = Planner {
        provider,
        dialect,
        registry: dash_exec::functions::builtin_registry(),
        ctx,
        ctes: HashMap::new(),
        depth: 0,
    };
    let (e, _) = planner.lower(ast, &Scope::default())?;
    Ok(e)
}

/// Lower an expression against a single table's schema (used by UPDATE /
/// DELETE WHERE clauses in `dash-core`). Column ordinals reference the
/// table schema directly.
pub fn lower_table_expr(
    ast: &AstExpr,
    schema: &Schema,
    provider: &dyn SchemaProvider,
    dialect: Dialect,
    ctx: &EvalContext,
) -> Result<Expr> {
    let mut planner = Planner {
        provider,
        dialect,
        registry: dash_exec::functions::builtin_registry(),
        ctx,
        ctes: HashMap::new(),
        depth: 0,
    };
    let scope = Scope::from_schema(None, schema);
    let (e, _) = planner.lower(ast, &scope)?;
    Ok(e)
}

// ---- scopes -------------------------------------------------------------

#[derive(Debug, Clone)]
struct ScopeCol {
    qualifier: Option<String>,
    name: String,
    dt: DataType,
    nullable: bool,
}

/// A name-resolution scope: one entry per output ordinal of the current
/// plan node.
#[derive(Debug, Clone, Default)]
struct Scope {
    cols: Vec<ScopeCol>,
}

impl Scope {
    fn from_schema(qualifier: Option<&str>, schema: &Schema) -> Scope {
        Scope {
            cols: schema
                .fields()
                .iter()
                .map(|f| ScopeCol {
                    qualifier: qualifier.map(|q| q.to_ascii_uppercase()),
                    name: f.name.clone(),
                    dt: f.data_type,
                    nullable: f.nullable,
                })
                .collect(),
        }
    }

    fn join(&self, other: &Scope) -> Scope {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Scope { cols }
    }

    /// Resolve a column reference. Unqualified names resolve to the
    /// leftmost match (permissive resolution: JOIN USING and self-joins
    /// with identical column names pick the left input).
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Option<usize> {
        let name = name.to_ascii_uppercase();
        let q = qualifier.map(|s| s.to_ascii_uppercase());
        self.cols.iter().position(|c| {
            c.name == name
                && match &q {
                    Some(q) => c.qualifier.as_deref() == Some(q.as_str()),
                    None => true,
                }
        })
    }

    fn to_schema(&self) -> Schema {
        Schema::new_unchecked(
            self.cols
                .iter()
                .map(|c| Field {
                    name: c.name.clone(),
                    data_type: c.dt,
                    nullable: c.nullable,
                })
                .collect(),
        )
    }
}

// ---- the planner ----------------------------------------------------------

struct Planner<'a> {
    provider: &'a dyn SchemaProvider,
    dialect: Dialect,
    registry: &'static FunctionRegistry,
    ctx: &'a EvalContext,
    /// CTEs visible in the current query (name → (plan, scope)).
    ctes: HashMap<String, (PhysicalPlan, Scope)>,
    depth: usize,
}

const MAX_SUBQUERY_DEPTH: usize = 16;

impl Planner<'_> {
    fn plan_query(&mut self, stmt: &SelectStmt) -> Result<(PhysicalPlan, Scope)> {
        self.depth += 1;
        if self.depth > MAX_SUBQUERY_DEPTH {
            return Err(DashError::analysis("query nesting too deep"));
        }
        let result = self.plan_query_inner(stmt);
        self.depth -= 1;
        result
    }

    fn plan_query_inner(&mut self, stmt: &SelectStmt) -> Result<(PhysicalPlan, Scope)> {
        // CTEs: plan each and register (restored on exit via clone).
        let saved_ctes = self.ctes.clone();
        for (name, body) in &stmt.ctes {
            let (plan, scope) = self.plan_query(body)?;
            // Re-qualify the CTE's columns under its name.
            let scope = Scope {
                cols: scope
                    .cols
                    .iter()
                    .map(|c| ScopeCol {
                        qualifier: Some(name.clone()),
                        ..c.clone()
                    })
                    .collect(),
            };
            self.ctes.insert(name.clone(), (plan, scope));
        }
        let out = self.plan_block(stmt);
        self.ctes = saved_ctes;
        let (mut plan, mut scope) = out?;

        // Set operations.
        if let Some((op, rhs)) = &stmt.set_op {
            let (rplan, rscope) = self.plan_query(rhs)?;
            if rscope.cols.len() != scope.cols.len() {
                return Err(DashError::analysis(format!(
                    "UNION arms have {} vs {} columns",
                    scope.cols.len(),
                    rscope.cols.len()
                )));
            }
            // Promote per-column types to a common supertype and coerce
            // each arm (standard UNION typing).
            let merged: Vec<DataType> = scope
                .cols
                .iter()
                .zip(&rscope.cols)
                .map(|(l, r)| union_supertype(l.dt, r.dt))
                .collect();
            let plan_l = coerce_arm(plan, &scope, &merged);
            let plan_r = coerce_arm(rplan, &rscope, &merged);
            for (c, dt) in scope.cols.iter_mut().zip(&merged) {
                c.dt = *dt;
            }
            plan = PhysicalPlan::UnionAll {
                inputs: vec![plan_l, plan_r],
            };
            if *op == SetOp::Union {
                plan = PhysicalPlan::Distinct {
                    input: Box::new(plan),
                };
            }
            // Column names come from the left arm.
            scope = Scope {
                cols: scope
                    .cols
                    .iter()
                    .map(|c| ScopeCol {
                        qualifier: None,
                        ..c.clone()
                    })
                    .collect(),
            };
        }
        Ok((plan, scope))
    }

    /// Plan one query block (no CTEs/set ops).
    fn plan_block(&mut self, stmt: &SelectStmt) -> Result<(PhysicalPlan, Scope)> {
        // ---- FROM ----
        let (mut plan, mut scope) = self.plan_from(stmt)?;

        // ---- CONNECT BY (before WHERE, Oracle semantics) ----
        if let Some((parent, child)) = &stmt.connect_by {
            let start = match &stmt.start_with {
                Some(e) => self.lower(e, &scope)?.0,
                None => Expr::lit(true),
            };
            let p = scope
                .resolve(None, parent)
                .ok_or_else(|| DashError::not_found("column", parent))?;
            let c = scope
                .resolve(None, child)
                .ok_or_else(|| DashError::not_found("column", child))?;
            plan = PhysicalPlan::ConnectBy {
                input: Box::new(plan),
                start_with: start,
                parent: p,
                child: c,
            };
            scope.cols.push(ScopeCol {
                qualifier: None,
                name: "LEVEL".into(),
                dt: DataType::Int64,
                nullable: false,
            });
        }

        // ---- WHERE ----
        let mut rownum_conjuncts: Vec<AstExpr> = Vec::new();
        if let Some(selection) = &stmt.selection {
            let mut conjuncts = Vec::new();
            split_conjuncts(selection, &mut conjuncts);
            // Oracle ROWNUM conjuncts apply after the rest of the WHERE.
            let mut normal = Vec::new();
            for c in conjuncts {
                if self.dialect == Dialect::Oracle && references_rownum(&c) {
                    rownum_conjuncts.push(c);
                } else {
                    normal.push(c);
                }
            }
            if !normal.is_empty() {
                let lowered = self.lower_conjuncts(&normal, &scope)?;
                plan = PhysicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: lowered,
                };
            }
        }
        // ROWNUM support: materialize the pseudo-column if referenced.
        let needs_rownum = !rownum_conjuncts.is_empty()
            || (self.dialect == Dialect::Oracle && block_references_rownum(stmt));
        if needs_rownum {
            plan = PhysicalPlan::RowNumber {
                input: Box::new(plan),
                name: "ROWNUM".into(),
            };
            scope.cols.push(ScopeCol {
                qualifier: None,
                name: "ROWNUM".into(),
                dt: DataType::Int64,
                nullable: false,
            });
            if !rownum_conjuncts.is_empty() {
                let lowered = self.lower_conjuncts(&rownum_conjuncts, &scope)?;
                plan = PhysicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: lowered,
                };
            }
        }

        // ---- aggregation ----
        let has_agg = stmt.group_by.is_empty()
            && (stmt
                .projection
                .iter()
                .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
                || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate()));
        let grouped = !stmt.group_by.is_empty() || has_agg;

        let mut projection_asts: Vec<(AstExpr, Option<String>)> = Vec::new();
        for item in &stmt.projection {
            match item {
                SelectItem::Wildcard => {
                    for c in &scope.cols {
                        if c.name == "_TSN" {
                            continue;
                        }
                        projection_asts.push((
                            AstExpr::Column {
                                qualifier: c.qualifier.clone(),
                                name: c.name.clone(),
                            },
                            Some(c.name.clone()),
                        ));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let qu = q.to_ascii_uppercase();
                    let mut any = false;
                    for c in &scope.cols {
                        if c.qualifier.as_deref() == Some(qu.as_str()) {
                            projection_asts.push((
                                AstExpr::Column {
                                    qualifier: c.qualifier.clone(),
                                    name: c.name.clone(),
                                },
                                Some(c.name.clone()),
                            ));
                            any = true;
                        }
                    }
                    if !any {
                        return Err(DashError::not_found("table alias", q));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    projection_asts.push((expr.clone(), alias.clone()));
                }
            }
        }

        // Output column names derive from the *original* projection (the
        // aggregation rewrite below replaces expressions with internal
        // _AGGn references, which must not leak into result schemas).
        let display_names: Vec<String> = projection_asts
            .iter()
            .enumerate()
            .map(|(i, (ast, alias))| {
                alias.clone().unwrap_or_else(|| derive_name(ast, i))
            })
            .collect();
        let mut having_ast = stmt.having.clone();
        let mut order_asts: Vec<AstExpr> =
            stmt.order_by.iter().map(|o| o.expr.clone()).collect();
        if grouped {
            let (new_plan, new_scope, rewritten_proj, rewritten_having, rewritten_order) = self
                .plan_aggregation(
                    plan,
                    &scope,
                    &stmt.group_by,
                    &projection_asts,
                    having_ast.as_ref(),
                    &order_asts,
                )?;
            plan = new_plan;
            scope = new_scope;
            projection_asts = rewritten_proj;
            having_ast = rewritten_having;
            order_asts = rewritten_order;
            if let Some(h) = &having_ast {
                let (pred, _) = self.lower(h, &scope)?;
                plan = PhysicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: pred,
                };
            }
        } else if stmt.having.is_some() {
            return Err(DashError::analysis("HAVING requires GROUP BY or aggregates"));
        }

        // ---- projection ----
        let mut exprs = Vec::with_capacity(projection_asts.len());
        let mut out_cols = Vec::with_capacity(projection_asts.len());
        for (i, (ast, _)) in projection_asts.iter().enumerate() {
            let (e, dt) = self.lower(ast, &scope)?;
            out_cols.push(ScopeCol {
                qualifier: None,
                name: display_names[i].to_ascii_uppercase(),
                dt,
                nullable: true,
            });
            exprs.push(e);
        }
        let out_scope = Scope { cols: out_cols };
        let out_schema = out_scope.to_schema();
        // Pure pass-through projection elision: `SELECT *` keeps the child.
        let passthrough = exprs.len() == scope.cols.len()
            && exprs
                .iter()
                .enumerate()
                .all(|(i, e)| matches!(e, Expr::Col(j) if *j == i))
            && out_schema
                .fields()
                .iter()
                .zip(scope.cols.iter())
                .all(|(f, c)| f.name == c.name);

        // ---- resolve ORDER BY keys ----
        // Resolution order: output ordinal → output column (exact, then
        // name-only so `ORDER BY d.label` finds the output column LABEL) →
        // input column (becomes a hidden sort column appended to the
        // projection and stripped after the sort).
        enum KeySource {
            Out(Expr),
            Hidden(Expr, DataType),
        }
        let mut key_sources: Vec<(KeySource, bool, bool)> = Vec::new();
        for (item, ast) in stmt.order_by.iter().zip(&order_asts) {
            let asc = item.asc;
            let nl = item.nulls_last.unwrap_or(true);
            let src = match ast {
                AstExpr::Lit(Datum::Int(n)) => {
                    let idx = *n as usize;
                    if idx == 0 || idx > out_scope.cols.len() {
                        return Err(DashError::analysis(format!(
                            "ORDER BY position {idx} is out of range"
                        )));
                    }
                    KeySource::Out(Expr::col(idx - 1))
                }
                ast => {
                    if let Ok((e, _)) = self.lower(ast, &out_scope) {
                        KeySource::Out(e)
                    } else if let AstExpr::Column {
                        qualifier: Some(_),
                        name,
                    } = ast
                    {
                        // Qualified reference: retry name-only on the output.
                        let bare = AstExpr::Column {
                            qualifier: None,
                            name: name.clone(),
                        };
                        match self.lower(&bare, &out_scope) {
                            Ok((e, _)) => KeySource::Out(e),
                            Err(_) => {
                                let (e, dt) = self.lower(ast, &scope)?;
                                KeySource::Hidden(e, dt)
                            }
                        }
                    } else {
                        let (e, dt) = self.lower(ast, &scope)?;
                        KeySource::Hidden(e, dt)
                    }
                }
            };
            key_sources.push((src, asc, nl));
        }
        let needs_hidden = key_sources
            .iter()
            .any(|(s, ..)| matches!(s, KeySource::Hidden(..)));
        if needs_hidden && stmt.distinct {
            return Err(DashError::analysis(
                "ORDER BY column must appear in the SELECT DISTINCT list",
            ));
        }

        let out_width = out_scope.cols.len();
        let mut keys: Vec<SortKey> = Vec::new();
        if needs_hidden && !passthrough {
            // Extend the projection with the hidden key expressions.
            let mut ext_exprs = exprs.clone();
            let mut ext_fields = out_schema.fields().to_vec();
            for (i, (src, asc, nl)) in key_sources.into_iter().enumerate() {
                match src {
                    KeySource::Out(e) => keys.push(SortKey {
                        expr: e,
                        asc,
                        nulls_last: nl,
                    }),
                    KeySource::Hidden(e, dt) => {
                        ext_exprs.push(e);
                        ext_fields.push(Field::new(format!("_SORT{i}"), dt));
                        keys.push(SortKey {
                            expr: Expr::col(ext_fields.len() - 1),
                            asc,
                            nulls_last: nl,
                        });
                    }
                }
            }
            plan = PhysicalPlan::Project {
                input: Box::new(plan),
                exprs: ext_exprs,
                schema: Schema::new_unchecked(ext_fields),
            };
            plan = PhysicalPlan::Sort {
                input: Box::new(plan),
                keys,
                limit: stmt.limit.map(|l| l as usize),
                offset: stmt.offset.unwrap_or(0) as usize,
                parallelism: self.provider.parallelism(),
                run_rows: self.provider.sort_run_rows(),
            };
            // Strip the hidden columns.
            plan = PhysicalPlan::Project {
                input: Box::new(plan),
                exprs: (0..out_width).map(Expr::col).collect(),
                schema: out_schema,
            };
            return Ok((plan, out_scope));
        }

        // No hidden keys (or pass-through projection where input == output).
        for (src, asc, nl) in key_sources {
            let expr = match src {
                KeySource::Out(e) | KeySource::Hidden(e, _) => e,
            };
            keys.push(SortKey {
                expr,
                asc,
                nulls_last: nl,
            });
        }
        if !passthrough {
            plan = PhysicalPlan::Project {
                input: Box::new(plan),
                exprs,
                schema: out_schema,
            };
        }
        if stmt.distinct {
            plan = PhysicalPlan::Distinct {
                input: Box::new(plan),
            };
        }
        if !keys.is_empty() || stmt.limit.is_some() || stmt.offset.is_some() {
            plan = PhysicalPlan::Sort {
                input: Box::new(plan),
                keys,
                limit: stmt.limit.map(|l| l as usize),
                offset: stmt.offset.unwrap_or(0) as usize,
                parallelism: self.provider.parallelism(),
                run_rows: self.provider.sort_run_rows(),
            };
        }
        Ok((plan, out_scope))
    }

    // ---- FROM clause ------------------------------------------------------

    fn plan_from(&mut self, stmt: &SelectStmt) -> Result<(PhysicalPlan, Scope)> {
        if stmt.from.is_empty() {
            // SELECT without FROM: one empty row.
            return Ok((
                PhysicalPlan::Values {
                    schema: Schema::empty(),
                    rows: vec![Row::new(vec![])],
                },
                Scope::default(),
            ));
        }
        // Column pruning needs the set of referenced names for this block.
        let referenced = collect_block_columns(stmt);
        let mut items: Vec<(PhysicalPlan, Scope)> = Vec::new();
        for tr in &stmt.from {
            items.push(self.plan_table_ref(tr, &referenced)?);
        }
        if items.len() == 1 {
            return items
                .pop()
                .ok_or_else(|| DashError::internal("single FROM item vanished"));
        }
        // Comma-list: connect through WHERE equalities (including Oracle
        // `(+)` markers); fall back to cross joins.
        let mut conjuncts = Vec::new();
        if let Some(sel) = &stmt.selection {
            split_conjuncts(sel, &mut conjuncts);
        }
        let (mut plan, mut scope) = items.remove(0);
        while !items.is_empty() {
            // Find a conjunct that links the current scope to some item.
            let mut linked: Option<(usize, usize, usize, bool)> = None; // (item, left_ord, right_ord, outer)
            'search: for (idx, (_, iscope)) in items.iter().enumerate() {
                for c in &conjuncts {
                    if let Some((lq, ln, rq, rn, outer_on_right)) = equi_pair(c) {
                        // left side resolves in current scope, right in item?
                        let combos = [
                            ((lq.as_deref(), ln.as_str()), (rq.as_deref(), rn.as_str()), outer_on_right),
                            ((rq.as_deref(), rn.as_str()), (lq.as_deref(), ln.as_str()), !outer_on_right && equi_has_marker(c)),
                        ];
                        for ((aq, an), (bq, bn), outer) in combos {
                            if let (Some(l), Some(r)) =
                                (scope.resolve(aq, an), iscope.resolve(bq, bn))
                            {
                                // Make sure the "b" side doesn't also resolve in
                                // the current scope with the same qualifier
                                // (self-join safety): qualified refs are exact.
                                let _ = r;
                                linked = Some((idx, l, r, outer));
                                break 'search;
                            }
                        }
                    }
                }
            }
            match linked {
                Some((idx, l, r, outer)) => {
                    let (rplan, rscope) = items.remove(idx);
                    let jt = if outer { JoinType::Left } else { JoinType::Inner };
                    let on = vec![(l, r)];
                    let key_mode = KeyMode::for_join(&plan.schema(), &rplan.schema(), &on);
                    plan = PhysicalPlan::HashJoin {
                        left: Box::new(plan),
                        right: Box::new(rplan),
                        on,
                        join_type: jt,
                        key_mode,
                        parallelism: self.provider.parallelism(),
                    };
                    scope = scope.join(&rscope);
                }
                None => {
                    let (rplan, rscope) = items.remove(0);
                    plan = PhysicalPlan::CrossJoin {
                        left: Box::new(plan),
                        right: Box::new(rplan),
                    };
                    scope = scope.join(&rscope);
                }
            }
        }
        Ok((plan, scope))
    }

    fn plan_table_ref(
        &mut self,
        tr: &TableRef,
        referenced: &Option<Vec<(Option<String>, String)>>,
    ) -> Result<(PhysicalPlan, Scope)> {
        match tr {
            TableRef::Dual => Ok((
                PhysicalPlan::Values {
                    schema: Schema::new_unchecked(vec![Field::new("DUMMY", DataType::Utf8)]),
                    rows: vec![Row::new(vec![Datum::str("X")])],
                },
                Scope::from_schema(Some("DUAL"), &Schema::new_unchecked(vec![Field::new(
                    "DUMMY",
                    DataType::Utf8,
                )])),
            )),
            TableRef::Named { name, alias } => {
                let qualifier = alias.clone().unwrap_or_else(|| name.clone());
                // CTE?
                if let Some((plan, scope)) = self.ctes.get(name) {
                    let scope = Scope {
                        cols: scope
                            .cols
                            .iter()
                            .map(|c| ScopeCol {
                                qualifier: Some(qualifier.clone()),
                                ..c.clone()
                            })
                            .collect(),
                    };
                    return Ok((plan.clone(), scope));
                }
                // View? Parse under its creation dialect.
                if let Some((text, view_dialect)) = self.provider.view(name) {
                    let stmt = crate::parser::parse_statement(&text, view_dialect)?;
                    let select = match stmt {
                        Statement::Select(s) => s,
                        _ => return Err(DashError::internal("view body is not a SELECT")),
                    };
                    let saved = self.dialect;
                    self.dialect = view_dialect;
                    let out = self.plan_query(&select);
                    self.dialect = saved;
                    let (plan, scope) = out?;
                    let scope = Scope {
                        cols: scope
                            .cols
                            .iter()
                            .map(|c| ScopeCol {
                                qualifier: Some(qualifier.clone()),
                                ..c.clone()
                            })
                            .collect(),
                    };
                    return Ok((plan, scope));
                }
                // Base table.
                let handle = self.provider.table(name)?;
                let schema = handle.table.read().schema().clone();
                // Column pruning: keep referenced columns only.
                let projection: Vec<usize> = match referenced {
                    None => (0..schema.len()).collect(),
                    Some(refs) => {
                        let mut keep: Vec<usize> = Vec::new();
                        for (q, n) in refs {
                            let applies = match q {
                                Some(q) => q.eq_ignore_ascii_case(&qualifier),
                                None => true,
                            };
                            if applies {
                                if let Some(i) = schema.index_of(n) {
                                    if !keep.contains(&i) {
                                        keep.push(i);
                                    }
                                }
                            }
                        }
                        keep.sort_unstable();
                        if keep.is_empty() {
                            // e.g. COUNT(*): still need one column to scan.
                            vec![0]
                        } else {
                            keep
                        }
                    }
                };
                let scan_schema = schema.project(&projection);
                let config = ScanConfig {
                    pool: self.provider.pool(),
                    parallelism: self.provider.parallelism(),
                    snapshot: self.provider.snapshot(),
                    ..ScanConfig::full(handle.id, projection)
                };
                Ok((
                    PhysicalPlan::ColumnScan {
                        table: handle.table,
                        config,
                    },
                    Scope::from_schema(Some(&qualifier), &scan_schema),
                ))
            }
            TableRef::Subquery { select, alias } => {
                let (plan, scope) = self.plan_query(select)?;
                let scope = Scope {
                    cols: scope
                        .cols
                        .iter()
                        .map(|c| ScopeCol {
                            qualifier: Some(alias.to_ascii_uppercase()),
                            ..c.clone()
                        })
                        .collect(),
                };
                Ok((plan, scope))
            }
            TableRef::Join {
                left,
                right,
                kind,
                constraint,
            } => {
                let (lplan, lscope) = self.plan_table_ref(left, referenced)?;
                let (rplan, rscope) = self.plan_table_ref(right, referenced)?;
                let combined = lscope.join(&rscope);
                match kind {
                    JoinKind::Cross => Ok((
                        PhysicalPlan::CrossJoin {
                            left: Box::new(lplan),
                            right: Box::new(rplan),
                        },
                        combined,
                    )),
                    JoinKind::Inner | JoinKind::Left | JoinKind::Right => {
                        let (on, residual) = self.join_keys(
                            constraint, &lscope, &rscope, &combined,
                        )?;
                        let (mut plan, scope) = if *kind == JoinKind::Right {
                            // RIGHT JOIN = LEFT JOIN with sides swapped, then
                            // re-project into the original column order.
                            let flipped: Vec<(usize, usize)> =
                                on.iter().map(|&(l, r)| (r, l)).collect();
                            let key_mode = KeyMode::for_join(
                                &rplan.schema(),
                                &lplan.schema(),
                                &flipped,
                            );
                            let inner = PhysicalPlan::HashJoin {
                                left: Box::new(rplan),
                                right: Box::new(lplan),
                                on: flipped,
                                join_type: JoinType::Left,
                                key_mode,
                                parallelism: self.provider.parallelism(),
                            };
                            let nl = lscope.cols.len();
                            let nr = rscope.cols.len();
                            let reorder: Vec<Expr> = (0..nl)
                                .map(|i| Expr::col(nr + i))
                                .chain((0..nr).map(Expr::col))
                                .collect();
                            let plan = PhysicalPlan::Project {
                                input: Box::new(inner),
                                exprs: reorder,
                                schema: combined.to_schema(),
                            };
                            (plan, combined)
                        } else {
                            let jt = if *kind == JoinKind::Left {
                                JoinType::Left
                            } else {
                                JoinType::Inner
                            };
                            let key_mode =
                                KeyMode::for_join(&lplan.schema(), &rplan.schema(), &on);
                            (
                                PhysicalPlan::HashJoin {
                                    left: Box::new(lplan),
                                    right: Box::new(rplan),
                                    on,
                                    join_type: jt,
                                    key_mode,
                                    parallelism: self.provider.parallelism(),
                                },
                                combined,
                            )
                        };
                        if let Some(res) = residual {
                            plan = PhysicalPlan::Filter {
                                input: Box::new(plan),
                                predicate: res,
                            };
                        }
                        Ok((plan, scope))
                    }
                }
            }
        }
    }

    /// Extract hash-join key pairs from a join constraint; non-equi parts
    /// become a residual filter over the combined scope.
    #[allow(clippy::type_complexity)]
    fn join_keys(
        &mut self,
        constraint: &JoinConstraint,
        lscope: &Scope,
        rscope: &Scope,
        combined: &Scope,
    ) -> Result<(Vec<(usize, usize)>, Option<Expr>)> {
        match constraint {
            JoinConstraint::None => Err(DashError::analysis("join requires a condition")),
            JoinConstraint::Using(cols) => {
                let mut on = Vec::new();
                for c in cols {
                    let l = lscope
                        .resolve(None, c)
                        .ok_or_else(|| DashError::not_found("column", c))?;
                    let r = rscope
                        .resolve(None, c)
                        .ok_or_else(|| DashError::not_found("column", c))?;
                    on.push((l, r));
                }
                Ok((on, None))
            }
            JoinConstraint::On(expr) => {
                let mut conjuncts = Vec::new();
                split_conjuncts(expr, &mut conjuncts);
                let mut on = Vec::new();
                let mut residual = Vec::new();
                for c in &conjuncts {
                    let mut matched = false;
                    if let Some((lq, ln, rq, rn, _)) = equi_pair(c) {
                        if let (Some(l), Some(r)) = (
                            lscope.resolve(lq.as_deref(), &ln),
                            rscope.resolve(rq.as_deref(), &rn),
                        ) {
                            on.push((l, lscope.cols.len() + r - lscope.cols.len()));
                            // r is an ordinal within rscope already.
                            let last = on.len() - 1;
                            on[last] = (l, r);
                            matched = true;
                        } else if let (Some(r), Some(l)) = (
                            rscope.resolve(lq.as_deref(), &ln),
                            lscope.resolve(rq.as_deref(), &rn),
                        ) {
                            on.push((l, r));
                            matched = true;
                        }
                    }
                    if !matched {
                        residual.push((*c).clone());
                    }
                }
                if on.is_empty() {
                    return Err(DashError::analysis(
                        "join condition must include at least one equality between the two inputs",
                    ));
                }
                let residual = if residual.is_empty() {
                    None
                } else {
                    Some(self.lower_conjuncts(&residual, combined)?)
                };
                Ok((on, residual))
            }
        }
    }

    fn lower_conjuncts(&mut self, conjuncts: &[AstExpr], scope: &Scope) -> Result<Expr> {
        let mut parts = Vec::with_capacity(conjuncts.len());
        for c in conjuncts {
            let (e, _) = self.lower(c, scope)?;
            parts.push(e);
        }
        match (parts.len(), parts.pop()) {
            (1, Some(e)) => Ok(e),
            (_, Some(last)) => {
                parts.push(last);
                Ok(Expr::And(parts))
            }
            (_, None) => Err(DashError::internal("lower_conjuncts on empty list")),
        }
    }

    // ---- aggregation --------------------------------------------------------

    #[allow(clippy::type_complexity)]
    fn plan_aggregation(
        &mut self,
        input: PhysicalPlan,
        scope: &Scope,
        group_by: &[AstExpr],
        projection: &[(AstExpr, Option<String>)],
        having: Option<&AstExpr>,
        order_by: &[AstExpr],
    ) -> Result<(
        PhysicalPlan,
        Scope,
        Vec<(AstExpr, Option<String>)>,
        Option<AstExpr>,
        Vec<AstExpr>,
    )> {
        // Resolve GROUP BY items: ordinals and output-name references
        // (Netezza) map onto projection expressions.
        let mut group_asts: Vec<AstExpr> = Vec::new();
        for g in group_by {
            let resolved = match g {
                AstExpr::Lit(Datum::Int(n)) => {
                    let idx = *n as usize;
                    if idx == 0 || idx > projection.len() {
                        return Err(DashError::analysis(format!(
                            "GROUP BY position {idx} is out of range"
                        )));
                    }
                    projection[idx - 1].0.clone()
                }
                AstExpr::Column { qualifier: None, name }
                    if scope.resolve(None, name).is_none() =>
                {
                    // Output-column-name grouping (Netezza/PostgreSQL).
                    if !matches!(self.dialect, Dialect::Netezza | Dialect::PostgreSql) {
                        return Err(DashError::not_found("column", name));
                    }
                    let found = projection.iter().find(|(_, alias)| {
                        alias.as_deref().is_some_and(|a| a.eq_ignore_ascii_case(name))
                    });
                    match found {
                        Some((e, _)) => e.clone(),
                        None => return Err(DashError::not_found("column", name)),
                    }
                }
                other => other.clone(),
            };
            group_asts.push(resolved);
        }

        // Collect aggregate calls from projection + having + order by.
        let mut agg_calls: Vec<AstExpr> = Vec::new();
        for (e, _) in projection {
            collect_aggregates(e, &mut agg_calls);
        }
        if let Some(h) = having {
            collect_aggregates(h, &mut agg_calls);
        }
        for o in order_by {
            collect_aggregates(o, &mut agg_calls);
        }

        // Lower group keys.
        let mut group_exprs = Vec::new();
        let mut out_cols: Vec<ScopeCol> = Vec::new();
        for (i, g) in group_asts.iter().enumerate() {
            let (e, dt) = self.lower(g, scope)?;
            let name = match g {
                AstExpr::Column { name, .. } => name.clone(),
                _ => format!("_GROUP{i}"),
            };
            out_cols.push(ScopeCol {
                qualifier: None,
                name,
                dt,
                nullable: true,
            });
            group_exprs.push(e);
        }
        // Lower aggregates.
        let mut aggs = Vec::new();
        for (i, call) in agg_calls.iter().enumerate() {
            let AstExpr::Func {
                name,
                args,
                distinct,
                star,
            } = call
            else {
                return Err(DashError::internal("non-func aggregate call"));
            };
            let (func, arg_asts): (AggFunc, Vec<AstExpr>) = if *star {
                (AggFunc::CountStar, Vec::new())
            } else if name == "PERCENTILE_CONT" || name == "PERCENTILE_DISC" {
                // Simplified 2-arg form: PERCENTILE_CONT(q, x).
                if args.len() != 2 {
                    return Err(DashError::analysis(format!(
                        "{name} takes (fraction, expression)"
                    )));
                }
                let q = match &args[0] {
                    AstExpr::Lit(d) => d.as_float().ok_or_else(|| {
                        DashError::analysis(format!("{name} fraction must be numeric"))
                    })?,
                    _ => {
                        return Err(DashError::analysis(format!(
                            "{name} fraction must be a literal"
                        )))
                    }
                };
                let f = if name == "PERCENTILE_CONT" {
                    AggFunc::PercentileCont(q)
                } else {
                    AggFunc::PercentileDisc(q)
                };
                (f, vec![args[1].clone()])
            } else {
                let f = AggFunc::from_name(name)
                    .ok_or_else(|| DashError::not_found("aggregate function", name))?;
                if args.len() != f.arg_count() {
                    return Err(DashError::analysis(format!(
                        "{name} takes {} argument(s), got {}",
                        f.arg_count(),
                        args.len()
                    )));
                }
                (f, args.clone())
            };
            let mut lowered_args = Vec::new();
            let mut arg_dt = None;
            for a in &arg_asts {
                let (e, dt) = self.lower(a, scope)?;
                if arg_dt.is_none() {
                    arg_dt = Some(dt);
                }
                lowered_args.push(e);
            }
            let out_dt = func.output_type(arg_dt);
            out_cols.push(ScopeCol {
                qualifier: None,
                name: format!("_AGG{i}"),
                dt: out_dt,
                nullable: true,
            });
            aggs.push(AggExpr {
                func,
                args: lowered_args,
                distinct: *distinct,
            });
        }
        let agg_scope = Scope { cols: out_cols };
        let key_mode = KeyMode::for_group(&input.schema(), &group_exprs);
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(input),
            group: group_exprs,
            aggs,
            schema: agg_scope.to_schema(),
            key_mode,
            parallelism: self.provider.parallelism(),
        };

        // Rewrite projection/having to reference the aggregate output.
        let rewritten_proj: Vec<(AstExpr, Option<String>)> = projection
            .iter()
            .map(|(e, a)| {
                (
                    rewrite_post_agg(e, &group_asts, &agg_calls),
                    a.clone(),
                )
            })
            .collect();
        let rewritten_having = having.map(|h| rewrite_post_agg(h, &group_asts, &agg_calls));
        let rewritten_order = order_by
            .iter()
            .map(|o| rewrite_post_agg(o, &group_asts, &agg_calls))
            .collect();
        Ok((plan, agg_scope, rewritten_proj, rewritten_having, rewritten_order))
    }

    // ---- expression lowering ------------------------------------------------

    fn lower(&mut self, ast: &AstExpr, scope: &Scope) -> Result<(Expr, DataType)> {
        match ast {
            AstExpr::Column { qualifier, name } => {
                match scope.resolve(qualifier.as_deref(), name) {
                    Some(i) => Ok((Expr::col(i), scope.cols[i].dt)),
                    None => Err(DashError::not_found("column", name)),
                }
            }
            AstExpr::Lit(d) => {
                let dt = d.data_type().unwrap_or(DataType::Utf8);
                Ok((Expr::Lit(d.clone()), dt))
            }
            AstExpr::Neg(e) => {
                let (inner, dt) = self.lower(e, scope)?;
                Ok((Expr::Neg(Box::new(inner)), dt))
            }
            AstExpr::Not(e) => {
                let (inner, _) = self.lower(e, scope)?;
                Ok((Expr::Not(Box::new(inner)), DataType::Bool))
            }
            AstExpr::Binary { op, left, right } => self.lower_binary(*op, left, right, scope),
            AstExpr::OuterJoinMarker(e) => {
                // Markers are consumed by join planning; one surviving here
                // (e.g. inside a one-table query) degrades to its operand.
                self.lower(e, scope)
            }
            AstExpr::IsNull { expr, negated } => {
                let (inner, _) = self.lower(expr, scope)?;
                Ok((
                    Expr::IsNull {
                        expr: Box::new(inner),
                        negated: *negated,
                    },
                    DataType::Bool,
                ))
            }
            AstExpr::IsBool {
                expr,
                value,
                negated,
            } => {
                let (inner, _) = self.lower(expr, scope)?;
                // x ISTRUE ⇔ COALESCE(x = true, false).
                let cmp = Expr::Cmp(
                    CmpOp::Eq,
                    Box::new(inner),
                    Box::new(Expr::lit(*value)),
                );
                let coalesce = self.registry.resolve("COALESCE", Dialect::Ansi)?;
                let base = Expr::Func(coalesce, vec![cmp, Expr::lit(false)]);
                let e = if *negated {
                    Expr::Not(Box::new(base))
                } else {
                    base
                };
                Ok((e, DataType::Bool))
            }
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let (v, _) = self.lower(expr, scope)?;
                let (lo, _) = self.lower(low, scope)?;
                let (hi, _) = self.lower(high, scope)?;
                let range = Expr::And(vec![
                    Expr::Cmp(CmpOp::Ge, Box::new(v.clone()), Box::new(lo)),
                    Expr::Cmp(CmpOp::Le, Box::new(v), Box::new(hi)),
                ]);
                let e = if *negated {
                    Expr::Not(Box::new(range))
                } else {
                    range
                };
                Ok((e, DataType::Bool))
            }
            AstExpr::InList {
                expr,
                list,
                negated,
            } => {
                let (v, _) = self.lower(expr, scope)?;
                let mut datums = Vec::with_capacity(list.len());
                for item in list {
                    match self.lower(item, scope)? {
                        (Expr::Lit(d), _) => datums.push(d),
                        _ => {
                            // Non-literal IN items: expand to OR of equalities.
                            let mut ors = Vec::with_capacity(list.len());
                            for item in list {
                                let (rhs, _) = self.lower(item, scope)?;
                                ors.push(Expr::Cmp(
                                    CmpOp::Eq,
                                    Box::new(v.clone()),
                                    Box::new(rhs),
                                ));
                            }
                            let e = Expr::Or(ors);
                            let e = if *negated { Expr::Not(Box::new(e)) } else { e };
                            return Ok((e, DataType::Bool));
                        }
                    }
                }
                Ok((
                    Expr::InList {
                        expr: Box::new(v),
                        list: datums,
                        negated: *negated,
                    },
                    DataType::Bool,
                ))
            }
            AstExpr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                let (v, _) = self.lower(expr, scope)?;
                let rows = self.execute_subquery(subquery, 1)?;
                let list: Vec<Datum> = rows.into_iter().map(|mut r| r.0.remove(0)).collect();
                Ok((
                    Expr::InList {
                        expr: Box::new(v),
                        list,
                        negated: *negated,
                    },
                    DataType::Bool,
                ))
            }
            AstExpr::Exists { subquery, negated } => {
                let rows = self.execute_subquery(subquery, usize::MAX)?;
                Ok((Expr::lit(rows.is_empty() == *negated), DataType::Bool))
            }
            AstExpr::ScalarSubquery(subquery) => {
                let mut rows = self.execute_subquery(subquery, 1)?;
                if rows.len() > 1 {
                    return Err(DashError::exec(
                        "scalar subquery returned more than one row",
                    ));
                }
                let d = rows
                    .pop()
                    .map(|mut r| r.0.remove(0))
                    .unwrap_or(Datum::Null);
                let dt = d.data_type().unwrap_or(DataType::Utf8);
                Ok((Expr::Lit(d), dt))
            }
            AstExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let (v, _) = self.lower(expr, scope)?;
                let pattern = match self.lower(pattern, scope)? {
                    (Expr::Lit(Datum::Str(s)), _) => s.to_string(),
                    _ => {
                        return Err(DashError::analysis(
                            "LIKE pattern must be a string literal",
                        ))
                    }
                };
                Ok((
                    Expr::Like {
                        expr: Box::new(v),
                        pattern,
                        negated: *negated,
                    },
                    DataType::Bool,
                ))
            }
            AstExpr::Func {
                name,
                args,
                distinct,
                star,
            } => {
                if *star || AggFunc::from_name(name).is_some() {
                    return Err(DashError::analysis(format!(
                        "aggregate {name} is not allowed in this context"
                    )));
                }
                if *distinct {
                    return Err(DashError::analysis(
                        "DISTINCT is only valid inside aggregates",
                    ));
                }
                let f = match self.provider.udx(name) {
                    Some(udx) if udx.dialects.contains(self.dialect) => udx,
                    _ => self.registry.resolve(name, self.dialect)?,
                };
                let mut lowered = Vec::with_capacity(args.len());
                let mut arg_types = Vec::with_capacity(args.len());
                for a in args {
                    let (e, dt) = self.lower(a, scope)?;
                    lowered.push(e);
                    arg_types.push(dt);
                }
                if lowered.len() < f.min_args || lowered.len() > f.max_args {
                    return Err(DashError::analysis(format!(
                        "{} takes {}..{} arguments, got {}",
                        f.name,
                        f.min_args,
                        if f.max_args == usize::MAX {
                            "N".to_string()
                        } else {
                            f.max_args.to_string()
                        },
                        lowered.len()
                    )));
                }
                let dt = f
                    .return_type
                    .unwrap_or_else(|| function_return_type(name, &arg_types));
                Ok((Expr::Func(f, lowered), dt))
            }
            AstExpr::Cast {
                expr,
                type_name,
                type_args,
            } => {
                let (inner, _) = self.lower(expr, scope)?;
                let dt = DataType::from_sql_name(type_name, type_args).ok_or_else(|| {
                    DashError::analysis(format!("unknown type {type_name}"))
                })?;
                Ok((Expr::Cast(Box::new(inner), dt), dt))
            }
            AstExpr::Case {
                operand,
                branches,
                otherwise,
            } => {
                let op = match operand {
                    Some(o) => Some(Box::new(self.lower(o, scope)?.0)),
                    None => None,
                };
                let mut lowered = Vec::with_capacity(branches.len());
                let mut result_dt = None;
                for (w, t) in branches {
                    let (we, _) = self.lower(w, scope)?;
                    let (te, tdt) = self.lower(t, scope)?;
                    if result_dt.is_none() && !matches!(t, AstExpr::Lit(Datum::Null)) {
                        result_dt = Some(tdt);
                    }
                    lowered.push((we, te));
                }
                let otherwise = match otherwise {
                    Some(o) => {
                        let (oe, odt) = self.lower(o, scope)?;
                        if result_dt.is_none() {
                            result_dt = Some(odt);
                        }
                        Some(Box::new(oe))
                    }
                    None => None,
                };
                Ok((
                    Expr::Case {
                        operand: op,
                        branches: lowered,
                        otherwise,
                    },
                    result_dt.unwrap_or(DataType::Utf8),
                ))
            }
            AstExpr::NextVal(seq) => Ok((Expr::SeqNext(seq.clone()), DataType::Int64)),
            AstExpr::CurrVal(seq) => Ok((Expr::SeqCurr(seq.clone()), DataType::Int64)),
            AstExpr::Overlaps { left, right } => {
                // (s1, e1) OVERLAPS (s2, e2) ⇔ s1 < e2 AND s2 < e1.
                let (s1, _) = self.lower(&left.0, scope)?;
                let (e1, _) = self.lower(&left.1, scope)?;
                let (s2, _) = self.lower(&right.0, scope)?;
                let (e2, _) = self.lower(&right.1, scope)?;
                Ok((
                    Expr::And(vec![
                        Expr::Cmp(CmpOp::Lt, Box::new(s1), Box::new(e2)),
                        Expr::Cmp(CmpOp::Lt, Box::new(s2), Box::new(e1)),
                    ]),
                    DataType::Bool,
                ))
            }
            AstExpr::Prior(_) => Err(DashError::analysis(
                "PRIOR is only valid inside CONNECT BY",
            )),
        }
    }

    fn lower_binary(
        &mut self,
        op: BinOp,
        left: &AstExpr,
        right: &AstExpr,
        scope: &Scope,
    ) -> Result<(Expr, DataType)> {
        let (l, ldt) = self.lower(left, scope)?;
        let (r, rdt) = self.lower(right, scope)?;
        let cmp = |c: CmpOp, l: Expr, r: Expr| (Expr::Cmp(c, Box::new(l), Box::new(r)), DataType::Bool);
        Ok(match op {
            BinOp::Eq => cmp(CmpOp::Eq, l, r),
            BinOp::Ne => cmp(CmpOp::Ne, l, r),
            BinOp::Lt => cmp(CmpOp::Lt, l, r),
            BinOp::Le => cmp(CmpOp::Le, l, r),
            BinOp::Gt => cmp(CmpOp::Gt, l, r),
            BinOp::Ge => cmp(CmpOp::Ge, l, r),
            BinOp::And => (Expr::And(vec![l, r]), DataType::Bool),
            BinOp::Or => (Expr::Or(vec![l, r]), DataType::Bool),
            BinOp::Concat => {
                let f = self.registry.resolve("CONCAT", Dialect::Ansi)?;
                (Expr::Func(f, vec![l, r]), DataType::Utf8)
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                let aop = match op {
                    BinOp::Add => ArithOp::Add,
                    BinOp::Sub => ArithOp::Sub,
                    BinOp::Mul => ArithOp::Mul,
                    BinOp::Div => ArithOp::Div,
                    _ => ArithOp::Rem,
                };
                let dt = arith_type(aop, ldt, rdt);
                (Expr::Arith(aop, Box::new(l), Box::new(r)), dt)
            }
        })
    }

    /// Plan and run an uncorrelated subquery, returning up to... all rows
    /// (`max_cols` validates the column count).
    fn execute_subquery(&mut self, subquery: &SelectStmt, max_cols: usize) -> Result<Vec<Row>> {
        let (plan, scope) = self.plan_query(subquery)?;
        if max_cols != usize::MAX && scope.cols.len() != max_cols {
            return Err(DashError::analysis(format!(
                "subquery must return {max_cols} column(s), returned {}",
                scope.cols.len()
            )));
        }
        let plan = pushdown(plan);
        let (batch, _) = dash_exec::plan::execute(&plan, self.ctx)?;
        Ok(batch.to_rows())
    }
}

// ---- helpers ---------------------------------------------------------------

/// The common supertype two UNION arms promote to.
fn union_supertype(l: DataType, r: DataType) -> DataType {
    if l == r {
        return l;
    }
    if l.is_numeric() && r.is_numeric() {
        if l.is_integer() && r.is_integer() {
            return DataType::Int64;
        }
        return DataType::Float64;
    }
    if l.is_temporal() && r.is_temporal() {
        return DataType::Timestamp;
    }
    DataType::Utf8
}

/// Wrap a UNION arm in casts where its column types differ from the merged
/// schema.
fn coerce_arm(plan: PhysicalPlan, scope: &Scope, merged: &[DataType]) -> PhysicalPlan {
    let needs = scope.cols.iter().zip(merged).any(|(c, m)| c.dt != *m);
    if !needs {
        return plan;
    }
    let exprs: Vec<Expr> = scope
        .cols
        .iter()
        .zip(merged)
        .enumerate()
        .map(|(i, (c, m))| {
            if c.dt == *m {
                Expr::col(i)
            } else {
                Expr::Cast(Box::new(Expr::col(i)), *m)
            }
        })
        .collect();
    let fields: Vec<Field> = scope
        .cols
        .iter()
        .zip(merged)
        .map(|(c, m)| Field {
            name: c.name.clone(),
            data_type: *m,
            nullable: true,
        })
        .collect();
    PhysicalPlan::Project {
        input: Box::new(plan),
        exprs,
        schema: Schema::new_unchecked(fields),
    }
}

fn arith_type(op: ArithOp, l: DataType, r: DataType) -> DataType {
    use DataType::*;
    match (op, l, r) {
        (ArithOp::Add, Date, t) | (ArithOp::Sub, Date, t) if t.is_integer() => Date,
        (ArithOp::Add, t, Date) if t.is_integer() => Date,
        (ArithOp::Sub, Date, Date) => Int64,
        _ => l.arithmetic_result(r).unwrap_or(Float64),
    }
}

/// Return type of a scalar function given argument types. Falls back to
/// Float64 (numeric) which is compatible with any numeric runtime value.
fn function_return_type(name: &str, args: &[DataType]) -> DataType {
    let upper = name.to_ascii_uppercase();
    match upper.as_str() {
        "UPPER" | "LOWER" | "SUBSTR" | "SUBSTR2" | "SUBSTR4" | "SUBSTRB" | "SUBSTRING"
        | "LPAD" | "RPAD" | "TRIM" | "LTRIM" | "RTRIM" | "BTRIM" | "REPLACE" | "INITCAP"
        | "CONCAT" | "TO_CHAR" | "TO_HEX" | "HEXTORAW" | "RAWTOHEX" | "STRLEFT" | "STRLFT"
        | "STRRIGHT" => DataType::Utf8,
        "LENGTH" | "INSTR" | "STRPOS" | "SIGN" | "MOD" | "DATE_PART" | "EXTRACT"
        | "DAYS_BETWEEN" | "HOURS_BETWEEN" | "SECONDS_BETWEEN" | "WEEKS_BETWEEN" | "AGE"
        | "HASH" | "HASH4" | "HASH8" | "COMPARE_DECFLOAT" => DataType::Int64,
        n if n.starts_with("INT") && (n.ends_with("AND") || n.ends_with("OR") || n.ends_with("XOR") || n.ends_with("NOT")) => {
            DataType::Int64
        }
        "TO_DATE" | "CURRENT_DATE" | "SYSDATE" | "ADD_MONTHS" | "LAST_DAY" | "NEXT_MONTH" => {
            DataType::Date
        }
        "NOW" | "CURRENT_TIMESTAMP" | "TO_TIMESTAMP" => DataType::Timestamp,
        "ST_POINT" | "ST_GEOMFROMTEXT" | "ST_ASTEXT" | "ST_GEOMETRYTYPE" | "ST_CENTROID" => {
            DataType::Utf8
        }
        "ST_NUMPOINTS" => DataType::Int64,
        "ST_CONTAINS" | "ST_WITHIN" | "ST_INTERSECTS" => DataType::Bool,
        "TRUNC" if args.first().is_some_and(|t| t.is_temporal()) => DataType::Date,
        "COALESCE" | "NVL" | "IFNULL" | "GREATEST" | "LEAST" | "NULLIF" => {
            args.first().copied().unwrap_or(DataType::Utf8)
        }
        "NVL2" => args.get(1).copied().unwrap_or(DataType::Utf8),
        "DECODE" => args.get(2).copied().unwrap_or(DataType::Utf8),
        "ABS" | "ROUND" => args.first().copied().unwrap_or(DataType::Float64),
        "NORMALIZE_DECFLOAT" => args.first().copied().unwrap_or(DataType::Decimal(31, 6)),
        _ => DataType::Float64,
    }
}

fn derive_name(ast: &AstExpr, i: usize) -> String {
    match ast {
        AstExpr::Column { name, .. } => name.clone(),
        AstExpr::Func { name, .. } => name.clone(),
        AstExpr::NextVal(_) => "NEXTVAL".to_string(),
        AstExpr::CurrVal(_) => "CURRVAL".to_string(),
        _ => format!("COL{}", i + 1),
    }
}

fn split_conjuncts(e: &AstExpr, out: &mut Vec<AstExpr>) {
    match e {
        AstExpr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            split_conjuncts(left, out);
            split_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
    let _ = e;
}

/// If the conjunct is `col = col` (possibly with an Oracle `(+)` marker),
/// return (left qualifier, left name, right qualifier, right name,
/// outer_marker_on_right).
#[allow(clippy::type_complexity)]
fn equi_pair(
    e: &AstExpr,
) -> Option<(Option<String>, String, Option<String>, String, bool)> {
    let AstExpr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = e
    else {
        return None;
    };
    fn unwrap_col(e: &AstExpr) -> Option<(Option<String>, String, bool)> {
        match e {
            AstExpr::Column { qualifier, name } => {
                Some((qualifier.clone(), name.clone(), false))
            }
            AstExpr::OuterJoinMarker(inner) => {
                let (q, n, _) = unwrap_col(inner)?;
                Some((q, n, true))
            }
            _ => None,
        }
    }
    let (lq, ln, lmark) = unwrap_col(left)?;
    let (rq, rn, rmark) = unwrap_col(right)?;
    let _ = lmark;
    Some((lq, ln, rq, rn, rmark))
}

fn equi_has_marker(e: &AstExpr) -> bool {
    if let AstExpr::Binary { left, right, .. } = e {
        matches!(**left, AstExpr::OuterJoinMarker(_))
            || matches!(**right, AstExpr::OuterJoinMarker(_))
    } else {
        false
    }
}

fn references_rownum(e: &AstExpr) -> bool {
    match e {
        AstExpr::Column { name, .. } => name == "ROWNUM",
        AstExpr::Binary { left, right, .. } => {
            references_rownum(left) || references_rownum(right)
        }
        AstExpr::Neg(i) | AstExpr::Not(i) => references_rownum(i),
        _ => false,
    }
}

fn block_references_rownum(stmt: &SelectStmt) -> bool {
    stmt.projection.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => references_rownum(expr),
        _ => false,
    })
}

fn collect_aggregates(e: &AstExpr, out: &mut Vec<AstExpr>) {
    match e {
        AstExpr::Func { name, args, star, .. } => {
            if *star || AggFunc::from_name(name).is_some() {
                if !out.contains(e) {
                    out.push(e.clone());
                }
                return; // nested aggregates are invalid anyway
            }
            for a in args {
                collect_aggregates(a, out);
            }
        }
        AstExpr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        AstExpr::Neg(i) | AstExpr::Not(i) | AstExpr::Prior(i) => collect_aggregates(i, out),
        AstExpr::IsNull { expr, .. }
        | AstExpr::IsBool { expr, .. }
        | AstExpr::OuterJoinMarker(expr) => collect_aggregates(expr, out),
        AstExpr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        AstExpr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for l in list {
                collect_aggregates(l, out);
            }
        }
        AstExpr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(pattern, out);
        }
        AstExpr::Cast { expr, .. } => collect_aggregates(expr, out),
        AstExpr::Case {
            operand,
            branches,
            otherwise,
        } => {
            if let Some(o) = operand {
                collect_aggregates(o, out);
            }
            for (w, t) in branches {
                collect_aggregates(w, out);
                collect_aggregates(t, out);
            }
            if let Some(o) = otherwise {
                collect_aggregates(o, out);
            }
        }
        _ => {}
    }
}

/// Rewrite an expression after aggregation: group-by expressions become
/// references to the group columns, aggregate calls become references to
/// the aggregate columns.
fn rewrite_post_agg(e: &AstExpr, groups: &[AstExpr], aggs: &[AstExpr]) -> AstExpr {
    if let Some(i) = aggs.iter().position(|a| a == e) {
        return AstExpr::Column {
            qualifier: None,
            name: format!("_AGG{i}"),
        };
    }
    if let Some(i) = groups.iter().position(|g| g == e) {
        return match e {
            AstExpr::Column { name, .. } => AstExpr::Column {
                qualifier: None,
                name: name.clone(),
            },
            _ => AstExpr::Column {
                qualifier: None,
                name: format!("_GROUP{i}"),
            },
        };
    }
    match e {
        AstExpr::Binary { op, left, right } => AstExpr::Binary {
            op: *op,
            left: Box::new(rewrite_post_agg(left, groups, aggs)),
            right: Box::new(rewrite_post_agg(right, groups, aggs)),
        },
        AstExpr::Neg(i) => AstExpr::Neg(Box::new(rewrite_post_agg(i, groups, aggs))),
        AstExpr::Not(i) => AstExpr::Not(Box::new(rewrite_post_agg(i, groups, aggs))),
        AstExpr::IsNull { expr, negated } => AstExpr::IsNull {
            expr: Box::new(rewrite_post_agg(expr, groups, aggs)),
            negated: *negated,
        },
        AstExpr::Between {
            expr,
            low,
            high,
            negated,
        } => AstExpr::Between {
            expr: Box::new(rewrite_post_agg(expr, groups, aggs)),
            low: Box::new(rewrite_post_agg(low, groups, aggs)),
            high: Box::new(rewrite_post_agg(high, groups, aggs)),
            negated: *negated,
        },
        AstExpr::InList {
            expr,
            list,
            negated,
        } => AstExpr::InList {
            expr: Box::new(rewrite_post_agg(expr, groups, aggs)),
            list: list
                .iter()
                .map(|l| rewrite_post_agg(l, groups, aggs))
                .collect(),
            negated: *negated,
        },
        AstExpr::Cast {
            expr,
            type_name,
            type_args,
        } => AstExpr::Cast {
            expr: Box::new(rewrite_post_agg(expr, groups, aggs)),
            type_name: type_name.clone(),
            type_args: type_args.clone(),
        },
        AstExpr::Func {
            name,
            args,
            distinct,
            star,
        } => AstExpr::Func {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| rewrite_post_agg(a, groups, aggs))
                .collect(),
            distinct: *distinct,
            star: *star,
        },
        AstExpr::Case {
            operand,
            branches,
            otherwise,
        } => AstExpr::Case {
            operand: operand
                .as_ref()
                .map(|o| Box::new(rewrite_post_agg(o, groups, aggs))),
            branches: branches
                .iter()
                .map(|(w, t)| {
                    (
                        rewrite_post_agg(w, groups, aggs),
                        rewrite_post_agg(t, groups, aggs),
                    )
                })
                .collect(),
            otherwise: otherwise
                .as_ref()
                .map(|o| Box::new(rewrite_post_agg(o, groups, aggs))),
        },
        other => other.clone(),
    }
}

/// Collect every column referenced in a query block (its own clauses, not
/// nested subquery bodies). `None` when a wildcard makes pruning unsafe.
fn collect_block_columns(stmt: &SelectStmt) -> Option<Vec<(Option<String>, String)>> {
    let mut out = Vec::new();
    for item in &stmt.projection {
        match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => return None,
            SelectItem::Expr { expr, .. } => collect_expr_columns(expr, &mut out),
        }
    }
    if let Some(w) = &stmt.selection {
        collect_expr_columns(w, &mut out);
    }
    for g in &stmt.group_by {
        collect_expr_columns(g, &mut out);
    }
    if let Some(h) = &stmt.having {
        collect_expr_columns(h, &mut out);
    }
    for o in &stmt.order_by {
        collect_expr_columns(&o.expr, &mut out);
    }
    if let Some(sw) = &stmt.start_with {
        collect_expr_columns(sw, &mut out);
    }
    if let Some((p, c)) = &stmt.connect_by {
        out.push((None, p.clone()));
        out.push((None, c.clone()));
    }
    // JOIN constraints reference columns too.
    fn walk_tr(tr: &TableRef, out: &mut Vec<(Option<String>, String)>) {
        if let TableRef::Join {
            left,
            right,
            constraint,
            ..
        } = tr
        {
            walk_tr(left, out);
            walk_tr(right, out);
            match constraint {
                JoinConstraint::On(e) => collect_expr_columns(e, out),
                JoinConstraint::Using(cols) => {
                    for c in cols {
                        out.push((None, c.clone()));
                    }
                }
                JoinConstraint::None => {}
            }
        }
    }
    for tr in &stmt.from {
        walk_tr(tr, &mut out);
    }
    Some(out)
}

fn collect_expr_columns(e: &AstExpr, out: &mut Vec<(Option<String>, String)>) {
    match e {
        AstExpr::Column { qualifier, name } => out.push((qualifier.clone(), name.clone())),
        AstExpr::Binary { left, right, .. } => {
            collect_expr_columns(left, out);
            collect_expr_columns(right, out);
        }
        AstExpr::Neg(i) | AstExpr::Not(i) | AstExpr::Prior(i) | AstExpr::OuterJoinMarker(i) => {
            collect_expr_columns(i, out)
        }
        AstExpr::IsNull { expr, .. } | AstExpr::IsBool { expr, .. } => {
            collect_expr_columns(expr, out)
        }
        AstExpr::Between {
            expr, low, high, ..
        } => {
            collect_expr_columns(expr, out);
            collect_expr_columns(low, out);
            collect_expr_columns(high, out);
        }
        AstExpr::InList { expr, list, .. } => {
            collect_expr_columns(expr, out);
            for l in list {
                collect_expr_columns(l, out);
            }
        }
        AstExpr::InSubquery { expr, .. } => collect_expr_columns(expr, out),
        AstExpr::Like { expr, pattern, .. } => {
            collect_expr_columns(expr, out);
            collect_expr_columns(pattern, out);
        }
        AstExpr::Func { args, .. } => {
            for a in args {
                collect_expr_columns(a, out);
            }
        }
        AstExpr::Cast { expr, .. } => collect_expr_columns(expr, out),
        AstExpr::Case {
            operand,
            branches,
            otherwise,
        } => {
            if let Some(o) = operand {
                collect_expr_columns(o, out);
            }
            for (w, t) in branches {
                collect_expr_columns(w, out);
                collect_expr_columns(t, out);
            }
            if let Some(o) = otherwise {
                collect_expr_columns(o, out);
            }
        }
        AstExpr::Overlaps { left, right } => {
            collect_expr_columns(&left.0, out);
            collect_expr_columns(&left.1, out);
            collect_expr_columns(&right.0, out);
            collect_expr_columns(&right.1, out);
        }
        _ => {}
    }
}

// ---- predicate pushdown -----------------------------------------------------

/// AND a conjunct list without panicking at any arity: `None` for an
/// empty list, the sole predicate for one, `Expr::And` otherwise.
fn and_all(mut preds: Vec<Expr>) -> Option<Expr> {
    match preds.len() {
        0 => None,
        1 => preds.pop(),
        _ => Some(Expr::And(preds)),
    }
}

/// Push simple filter conjuncts into column scans so they evaluate on
/// compressed codes with synopsis pruning. Applied bottom-up.
pub fn pushdown(plan: PhysicalPlan) -> PhysicalPlan {
    match plan {
        PhysicalPlan::Filter { input, predicate } => {
            // Push conjuncts through inner/cross joins toward the side
            // whose columns they reference, then recurse so they can merge
            // into the scans.
            let input = match *input {
                PhysicalPlan::HashJoin {
                    left,
                    right,
                    on,
                    join_type: JoinType::Inner,
                    key_mode,
                    parallelism,
                } => {
                    let lw = left.schema().len();
                    let mut conjuncts = Vec::new();
                    flatten_and(predicate, &mut conjuncts);
                    let (mut lpreds, mut rpreds, mut keep) = (Vec::new(), Vec::new(), Vec::new());
                    for c in conjuncts {
                        let mut cols = Vec::new();
                        c.referenced_columns(&mut cols);
                        if !cols.is_empty() && cols.iter().all(|&i| i < lw) {
                            lpreds.push(c);
                        } else if !cols.is_empty() && cols.iter().all(|&i| i >= lw) {
                            rpreds.push(shift_cols(c, lw));
                        } else {
                            keep.push(c);
                        }
                    }
                    let wrap = |child: PhysicalPlan, preds: Vec<Expr>| match and_all(preds) {
                        Some(predicate) => PhysicalPlan::Filter {
                            input: Box::new(child),
                            predicate,
                        },
                        None => child,
                    };
                    let join = PhysicalPlan::HashJoin {
                        left: Box::new(pushdown(wrap(*left, lpreds))),
                        right: Box::new(pushdown(wrap(*right, rpreds))),
                        on,
                        join_type: JoinType::Inner,
                        key_mode,
                        parallelism,
                    };
                    return match and_all(keep) {
                        Some(predicate) => PhysicalPlan::Filter {
                            input: Box::new(join),
                            predicate,
                        },
                        None => join,
                    };
                }
                other => pushdown(other),
            };
            if let PhysicalPlan::ColumnScan { table, mut config } = input {
                let mut conjuncts = Vec::new();
                flatten_and(predicate, &mut conjuncts);
                let mut residual: Vec<Expr> = Vec::new();
                for c in conjuncts {
                    match to_column_predicate(&c, &config.projection, &table) {
                        Some(p) => config.predicates.push(p),
                        None => residual.push(c),
                    }
                }
                // Residual expressions inside the scan reference table
                // ordinals; remap from scan-output ordinals.
                let remapped: Vec<Expr> = residual
                    .into_iter()
                    .map(|e| remap_cols(e, &config.projection))
                    .collect();
                if let Some(combined) = and_all(remapped) {
                    config.residual = Some(match config.residual.take() {
                        Some(prev) => Expr::And(vec![prev, combined]),
                        None => combined,
                    });
                }
                PhysicalPlan::ColumnScan { table, config }
            } else {
                PhysicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        PhysicalPlan::Project {
            input,
            exprs,
            schema,
        } => PhysicalPlan::Project {
            input: Box::new(pushdown(*input)),
            exprs,
            schema,
        },
        PhysicalPlan::HashJoin {
            left,
            right,
            on,
            join_type,
            key_mode,
            parallelism,
        } => PhysicalPlan::HashJoin {
            left: Box::new(pushdown(*left)),
            right: Box::new(pushdown(*right)),
            on,
            join_type,
            key_mode,
            parallelism,
        },
        PhysicalPlan::CrossJoin { left, right } => PhysicalPlan::CrossJoin {
            left: Box::new(pushdown(*left)),
            right: Box::new(pushdown(*right)),
        },
        PhysicalPlan::HashAggregate {
            input,
            group,
            aggs,
            schema,
            key_mode,
            parallelism,
        } => PhysicalPlan::HashAggregate {
            input: Box::new(pushdown(*input)),
            group,
            aggs,
            schema,
            key_mode,
            parallelism,
        },
        PhysicalPlan::Sort {
            input,
            keys,
            limit,
            offset,
            parallelism,
            run_rows,
        } => PhysicalPlan::Sort {
            input: Box::new(pushdown(*input)),
            keys,
            limit,
            offset,
            parallelism,
            run_rows,
        },
        PhysicalPlan::UnionAll { inputs } => PhysicalPlan::UnionAll {
            inputs: inputs.into_iter().map(pushdown).collect(),
        },
        PhysicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(pushdown(*input)),
        },
        PhysicalPlan::RowNumber { input, name } => PhysicalPlan::RowNumber {
            input: Box::new(pushdown(*input)),
            name,
        },
        PhysicalPlan::ConnectBy {
            input,
            start_with,
            parent,
            child,
        } => PhysicalPlan::ConnectBy {
            input: Box::new(pushdown(*input)),
            start_with,
            parent,
            child,
        },
        leaf @ (PhysicalPlan::ColumnScan { .. } | PhysicalPlan::Values { .. }) => leaf,
    }
}

fn flatten_and(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(parts) => {
            for p in parts {
                flatten_and(p, out);
            }
        }
        other => out.push(other),
    }
}

/// Try converting a lowered conjunct over scan *output* ordinals into a
/// pushable [`ColumnPredicate`] over *table* ordinals.
fn to_column_predicate(
    e: &Expr,
    projection: &[usize],
    table: &SharedTable,
) -> Option<ColumnPredicate> {
    let schema = table.read().schema().clone();
    match e {
        Expr::IsNull { expr, negated } => {
            if let Expr::Col(i) = **expr {
                Some(ColumnPredicate::IsNull {
                    col: projection[i],
                    negated: *negated,
                })
            } else {
                None
            }
        }
        Expr::Cmp(op, l, r) => {
            let (col, lit, op) = match (&**l, &**r) {
                (Expr::Col(i), Expr::Lit(d)) => (*i, d.clone(), *op),
                (Expr::Lit(d), Expr::Col(i)) => (*i, d.clone(), op.flip()),
                _ => return None,
            };
            if lit.is_null() {
                // `col = NULL` is never true; leave as residual (correctly
                // evaluates to no rows).
                return None;
            }
            let table_col = projection[col];
            let dt = schema.field(table_col).data_type;
            let (lo, hi) = match op {
                CmpOp::Eq => (Some(lit.clone()), Some(lit)),
                CmpOp::Le => (None, Some(lit)),
                CmpOp::Ge => (Some(lit), None),
                CmpOp::Lt => (None, Some(exclusive_to_inclusive(lit, dt, false)?)),
                CmpOp::Gt => (Some(exclusive_to_inclusive(lit, dt, true)?), None),
                CmpOp::Ne => return None,
            };
            Some(ColumnPredicate::Range {
                col: table_col,
                lo,
                hi,
            })
        }
        _ => None,
    }
}

/// Convert an exclusive bound to an inclusive one where the domain allows
/// (`x < 5` ⇔ `x <= 4` for integers/dates; floats use next_down/up;
/// strings cannot be adjusted).
fn exclusive_to_inclusive(d: Datum, dt: DataType, lower: bool) -> Option<Datum> {
    match (dt.is_integer_encodable(), d) {
        (true, Datum::Int(v)) => Some(Datum::Int(if lower { v.checked_add(1)? } else { v.checked_sub(1)? })),
        (true, Datum::Date(v)) => Some(Datum::Date(if lower { v.checked_add(1)? } else { v.checked_sub(1)? })),
        (true, Datum::Timestamp(v)) => {
            Some(Datum::Timestamp(if lower { v.checked_add(1)? } else { v.checked_sub(1)? }))
        }
        (_, Datum::Float(f)) => Some(Datum::Float(if lower { f.next_up() } else { f.next_down() })),
        (true, Datum::Str(s)) if dt == DataType::Date => {
            let days = dash_common::date::parse_date(&s)?;
            Some(Datum::Date(if lower { days + 1 } else { days - 1 }))
        }
        _ => None,
    }
}

/// Shift column ordinals down by `lw` (right-side conjuncts pushed below a
/// join reference the right child's own ordinals).
fn shift_cols(e: Expr, lw: usize) -> Expr {
    remap_with(e, &|i| i - lw)
}

fn remap_with(e: Expr, f: &dyn Fn(usize) -> usize) -> Expr {
    match e {
        Expr::Col(i) => Expr::Col(f(i)),
        Expr::Cmp(op, l, r) => Expr::Cmp(op, Box::new(remap_with(*l, f)), Box::new(remap_with(*r, f))),
        Expr::Arith(op, l, r) => {
            Expr::Arith(op, Box::new(remap_with(*l, f)), Box::new(remap_with(*r, f)))
        }
        Expr::Neg(i) => Expr::Neg(Box::new(remap_with(*i, f))),
        Expr::Not(i) => Expr::Not(Box::new(remap_with(*i, f))),
        Expr::And(v) => Expr::And(v.into_iter().map(|x| remap_with(x, f)).collect()),
        Expr::Or(v) => Expr::Or(v.into_iter().map(|x| remap_with(x, f)).collect()),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(remap_with(*expr, f)),
            negated,
        },
        Expr::Func(func, args) => {
            Expr::Func(func, args.into_iter().map(|a| remap_with(a, f)).collect())
        }
        Expr::Case {
            operand,
            branches,
            otherwise,
        } => Expr::Case {
            operand: operand.map(|o| Box::new(remap_with(*o, f))),
            branches: branches
                .into_iter()
                .map(|(w, t)| (remap_with(w, f), remap_with(t, f)))
                .collect(),
            otherwise: otherwise.map(|o| Box::new(remap_with(*o, f))),
        },
        Expr::Cast(i, t) => Expr::Cast(Box::new(remap_with(*i, f)), t),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(remap_with(*expr, f)),
            pattern,
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(remap_with(*expr, f)),
            list,
            negated,
        },
        leaf @ (Expr::Lit(_) | Expr::SeqNext(_) | Expr::SeqCurr(_)) => leaf,
    }
}

/// Remap scan-output column ordinals back to table ordinals for residual
/// evaluation inside the scan.
fn remap_cols(e: Expr, projection: &[usize]) -> Expr {
    match e {
        Expr::Col(i) => Expr::Col(projection[i]),
        Expr::Cmp(op, l, r) => Expr::Cmp(
            op,
            Box::new(remap_cols(*l, projection)),
            Box::new(remap_cols(*r, projection)),
        ),
        Expr::Arith(op, l, r) => Expr::Arith(
            op,
            Box::new(remap_cols(*l, projection)),
            Box::new(remap_cols(*r, projection)),
        ),
        Expr::Neg(i) => Expr::Neg(Box::new(remap_cols(*i, projection))),
        Expr::Not(i) => Expr::Not(Box::new(remap_cols(*i, projection))),
        Expr::And(v) => Expr::And(v.into_iter().map(|x| remap_cols(x, projection)).collect()),
        Expr::Or(v) => Expr::Or(v.into_iter().map(|x| remap_cols(x, projection)).collect()),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(remap_cols(*expr, projection)),
            negated,
        },
        Expr::Func(f, args) => Expr::Func(
            f,
            args.into_iter().map(|a| remap_cols(a, projection)).collect(),
        ),
        Expr::Case {
            operand,
            branches,
            otherwise,
        } => Expr::Case {
            operand: operand.map(|o| Box::new(remap_cols(*o, projection))),
            branches: branches
                .into_iter()
                .map(|(w, t)| (remap_cols(w, projection), remap_cols(t, projection)))
                .collect(),
            otherwise: otherwise.map(|o| Box::new(remap_cols(*o, projection))),
        },
        Expr::Cast(i, t) => Expr::Cast(Box::new(remap_cols(*i, projection)), t),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(remap_cols(*expr, projection)),
            pattern,
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(remap_cols(*expr, projection)),
            list,
            negated,
        },
        leaf @ (Expr::Lit(_) | Expr::SeqNext(_) | Expr::SeqCurr(_)) => leaf,
    }
}

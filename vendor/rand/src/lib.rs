//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API this workspace uses — a seeded
//! [`rngs::StdRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`) and [`SeedableRng::seed_from_u64`] — backed by xoshiro256++
//! seeded through SplitMix64. Deterministic for a given seed, which is all
//! the workloads and the buffer-pool sampler require.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers (the rand `Rng` extension trait).
pub trait Rng: RngCore {
    /// Sample a value of `T` from its full/natural range
    /// (`f64`/`f32` sample the unit interval, matching rand's `Standard`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from full-range bits (rand's `Standard` distribution).
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (not the real StdRng's
    /// ChaCha12 — this stand-in is for simulation, not cryptography).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let x = r.gen_range(0u8..=255);
            let _ = x;
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
    }
}

//! Transaction management: the commit-timestamp clock, transaction id
//! allocation, and per-session transaction state.
//!
//! dashDB Local "looks like DB2" to applications, and that includes
//! transactional statement semantics: explicit BEGIN/COMMIT/ROLLBACK plus
//! autocommit. The reproduction implements snapshot isolation over the
//! columnar store's MVCC timestamp words (`dash-storage::table`):
//!
//! * Readers pin the commit clock at statement (or transaction) start and
//!   see exactly the rows committed at or before that timestamp.
//! * Writers stamp rows with a pending mark (their own transaction id) and
//!   upgrade the mark to a commit timestamp atomically at COMMIT.
//! * Write-write conflicts resolve first-writer-wins: the second deleter
//!   of a row gets SQLSTATE 40001 and must retry.
//!
//! Commit ordering is serialized by a single commit lock so the WAL's
//! record order, the commit-timestamp order, and the in-memory stamping
//! order always agree — which is what makes log replay deterministic.

use dash_common::ids::Tsn;
use dash_common::txn::TxnId;
use dash_exec::plan::SharedTable;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// What a transaction did to one row (its undo/commit log entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// The transaction appended this row (pending-invisible until commit).
    Insert,
    /// The transaction deleted this row (pending-visible until commit).
    Delete,
}

/// One row touched by an open transaction, remembered so COMMIT can stamp
/// it with the commit timestamp and ROLLBACK can undo it. Holding the
/// table handle (not a name) keeps the write-set valid for temporary
/// tables and across a concurrent DROP.
#[derive(Clone)]
pub struct WriteOp {
    /// The table the operation touched.
    pub table: SharedTable,
    /// Row position the operation touched.
    pub tsn: Tsn,
    /// Insert or delete.
    pub kind: WriteKind,
}

/// Per-session state of one open transaction.
pub struct Transaction {
    /// This transaction's id (stamped into pending timestamp words).
    pub id: TxnId,
    /// The commit clock value pinned at BEGIN: the transaction sees
    /// exactly the versions committed at or before this timestamp (plus
    /// its own writes).
    pub snapshot_ts: u64,
    /// Every row write, in order, for commit stamping / rollback undo.
    pub writes: Vec<WriteOp>,
    /// True for the implicit transaction wrapping a single autocommit
    /// statement (no explicit BEGIN was issued).
    pub autocommit: bool,
}

/// The database-wide transaction manager: allocates transaction ids,
/// advances the commit-timestamp clock, and serializes commits.
pub struct TxnManager {
    /// Last committed timestamp; snapshots read this. Starts at 0 so the
    /// pre-history timestamp word 0 (bulk loads, non-transactional
    /// inserts) is visible to every snapshot.
    clock: AtomicU64,
    /// Next transaction id to hand out (ids start at 1; 0 is reserved).
    next_txn: AtomicU64,
    /// Held across [commit-record append + table stamping + clock bump]
    /// so commit order in the WAL equals commit-timestamp order.
    commit_lock: Mutex<()>,
    /// Transaction ids currently open (checkpointing refuses to run while
    /// any are — a checkpoint must capture a clean committed state).
    active: Mutex<HashSet<u64>>,
}

impl TxnManager {
    /// Fresh manager: clock at 0, ids from 1.
    pub fn new() -> TxnManager {
        TxnManager {
            clock: AtomicU64::new(0),
            next_txn: AtomicU64::new(1),
            commit_lock: Mutex::new(()),
            active: Mutex::new(HashSet::new()),
        }
    }

    /// Restore clock and id allocator from a checkpoint + WAL replay.
    pub fn restore(&self, clock: u64, next_txn: u64) {
        self.clock.store(clock, Ordering::SeqCst);
        self.next_txn.store(next_txn.max(1), Ordering::SeqCst);
    }

    /// Open a transaction: allocate an id and mark it active.
    pub fn begin(&self) -> TxnId {
        let id = self.next_txn.fetch_add(1, Ordering::SeqCst);
        self.active.lock().insert(id);
        TxnId(id)
    }

    /// Close a transaction (after commit stamping or rollback undo).
    pub fn finish(&self, txn: TxnId) {
        self.active.lock().remove(&txn.0);
    }

    /// Current commit clock — the snapshot timestamp new readers pin.
    pub fn snapshot_ts(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Next transaction id that would be allocated (checkpoint metadata).
    pub fn next_txn_id(&self) -> u64 {
        self.next_txn.load(Ordering::SeqCst)
    }

    /// Number of transactions currently open.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Acquire the commit lock. The caller computes `commit_ts()` under
    /// the guard, appends the WAL commit record, stamps tables, and only
    /// then calls [`TxnManager::publish`] — still under the guard.
    pub fn lock_commits(&self) -> MutexGuard<'_, ()> {
        self.commit_lock.lock()
    }

    /// The timestamp the next commit will get (call under the commit lock).
    pub fn commit_ts(&self) -> u64 {
        self.clock.load(Ordering::SeqCst) + 1
    }

    /// Publish a commit: advance the clock to `ts` so new snapshots see
    /// the freshly stamped rows (call under the commit lock, after all
    /// tables are stamped).
    pub fn publish(&self, ts: u64) {
        self.clock.store(ts, Ordering::SeqCst);
    }
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_tracked() {
        let m = TxnManager::new();
        let a = m.begin();
        let b = m.begin();
        assert_ne!(a, b);
        assert_eq!(m.active_count(), 2);
        m.finish(a);
        assert_eq!(m.active_count(), 1);
        m.finish(b);
        assert_eq!(m.active_count(), 0);
        // Finishing twice is a no-op.
        m.finish(b);
        assert_eq!(m.active_count(), 0);
    }

    #[test]
    fn commit_protocol_advances_clock() {
        let m = TxnManager::new();
        assert_eq!(m.snapshot_ts(), 0);
        {
            let _guard = m.lock_commits();
            let ts = m.commit_ts();
            assert_eq!(ts, 1);
            m.publish(ts);
        }
        assert_eq!(m.snapshot_ts(), 1);
    }

    #[test]
    fn restore_resumes_allocation() {
        let m = TxnManager::new();
        m.restore(42, 100);
        assert_eq!(m.snapshot_ts(), 42);
        assert_eq!(m.begin(), dash_common::txn::TxnId(100));
        // next_txn below 1 clamps (id 0 is reserved).
        let m2 = TxnManager::new();
        m2.restore(0, 0);
        assert_eq!(m2.begin(), dash_common::txn::TxnId(1));
    }
}

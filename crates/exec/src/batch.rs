//! Columnar batches flowing between operators.
//!
//! Operators exchange data as column-major batches; rows are materialized
//! only at plan edges (results, inserts, shuffles). Batch sizes follow the
//! stride length so a scan emits one batch per surviving stride.

use std::sync::Arc;

use dash_common::{DashError, Datum, Result, Row, Schema};
use dash_encoding::column::ColumnValues;
use dash_encoding::dict::FreqDict;

/// A column-major batch of rows sharing one schema.
#[derive(Debug, Clone)]
pub struct Batch {
    schema: Schema,
    columns: Vec<ColumnValues>,
    len: usize,
    /// Per-column string dictionaries, when the column is backed by a
    /// frequency-partitioned dictionary in storage. Empty means "none known".
    /// Dictionaries are advisory metadata for the operate-on-compressed key
    /// path; they never affect the values a batch holds.
    dicts: Vec<Option<Arc<FreqDict<Arc<str>>>>>,
}

impl PartialEq for Batch {
    fn eq(&self, other: &Self) -> bool {
        // Dictionaries are advisory metadata, not data: two batches holding
        // the same values are equal regardless of dictionary attachment.
        self.schema == other.schema && self.columns == other.columns && self.len == other.len
    }
}

impl Batch {
    /// Build from columns. All columns must have the same length and match
    /// the schema's arity.
    pub fn new(schema: Schema, columns: Vec<ColumnValues>) -> Result<Batch> {
        if columns.len() != schema.len() {
            return Err(DashError::internal(format!(
                "batch has {} columns, schema has {}",
                columns.len(),
                schema.len()
            )));
        }
        let len = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != len) {
            return Err(DashError::internal("batch columns have unequal lengths"));
        }
        Ok(Batch {
            schema,
            columns,
            len,
            dicts: Vec::new(),
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Schema) -> Batch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnValues::empty_for(f.data_type))
            .collect();
        Batch {
            schema,
            columns,
            len: 0,
            dicts: Vec::new(),
        }
    }

    /// Build a batch from rows (validated against the schema).
    pub fn from_rows(schema: Schema, rows: &[Row]) -> Result<Batch> {
        let mut columns: Vec<ColumnValues> = schema
            .fields()
            .iter()
            .map(|f| ColumnValues::empty_for(f.data_type))
            .collect();
        for row in rows {
            if row.len() != schema.len() {
                return Err(DashError::internal(format!(
                    "row arity {} vs schema {}",
                    row.len(),
                    schema.len()
                )));
            }
            for (i, d) in row.values().iter().enumerate() {
                columns[i].push_datum(schema.field(i).data_type, d)?;
            }
        }
        let len = rows.len();
        Ok(Batch {
            schema,
            columns,
            len,
            dicts: Vec::new(),
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The columns.
    pub fn columns(&self) -> &[ColumnValues] {
        &self.columns
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &ColumnValues {
        &self.columns[i]
    }

    /// The datum at (row, col).
    pub fn value(&self, row: usize, col: usize) -> Datum {
        self.columns[col].datum_at(self.schema.field(col).data_type, row)
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Row {
        Row::new(
            (0..self.schema.len())
                .map(|c| self.value(i, c))
                .collect(),
        )
    }

    /// Materialize all rows.
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Keep only the rows at `positions` (ascending), producing a new batch.
    pub fn take(&self, positions: &[usize]) -> Batch {
        let columns = self
            .columns
            .iter()
            .map(|c| take_column(c, positions))
            .collect();
        Batch {
            schema: self.schema.clone(),
            columns,
            len: positions.len(),
            dicts: self.dicts.clone(),
        }
    }

    /// Project columns by ordinal.
    pub fn project(&self, indices: &[usize]) -> Batch {
        Batch {
            schema: self.schema.project(indices),
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
            len: self.len,
            dicts: indices
                .iter()
                .map(|&i| self.dicts.get(i).cloned().flatten())
                .collect(),
        }
    }

    /// Attach the storage dictionary backing string column `col`.
    ///
    /// The dictionary is advisory: key-path code in `join`/`agg` uses it to
    /// hash packed dictionary codes instead of string bytes, and falls back
    /// to raw values when it is absent.
    pub fn set_str_dict(&mut self, col: usize, dict: Arc<FreqDict<Arc<str>>>) {
        if self.dicts.len() < self.schema.len() {
            self.dicts.resize(self.schema.len(), None);
        }
        self.dicts[col] = Some(dict);
    }

    /// The storage dictionary backing string column `col`, if known.
    pub fn str_dict(&self, col: usize) -> Option<&Arc<FreqDict<Arc<str>>>> {
        self.dicts.get(col).and_then(|d| d.as_ref())
    }

    /// Concatenate batches of identical schemas.
    pub fn concat(schema: Schema, batches: &[Batch]) -> Result<Batch> {
        let rows: Vec<Row> = batches.iter().flat_map(|b| b.to_rows()).collect();
        Batch::from_rows(schema, &rows)
    }
}

fn take_column(c: &ColumnValues, positions: &[usize]) -> ColumnValues {
    match c {
        ColumnValues::Int(v) => {
            ColumnValues::Int(positions.iter().map(|&p| v[p]).collect())
        }
        ColumnValues::Float(v) => {
            ColumnValues::Float(positions.iter().map(|&p| v[p]).collect())
        }
        ColumnValues::Str(v) => {
            ColumnValues::Str(positions.iter().map(|&p| v[p].clone()).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_common::types::DataType;
    use dash_common::{row, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::not_null("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn rows_roundtrip() {
        let rows = vec![row![1i64, "a"], row![2i64, Datum::Null]];
        let b = Batch::from_rows(schema(), &rows).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.to_rows(), rows);
        assert_eq!(b.value(1, 1), Datum::Null);
    }

    #[test]
    fn take_and_project() {
        let rows = vec![row![1i64, "a"], row![2i64, "b"], row![3i64, "c"]];
        let b = Batch::from_rows(schema(), &rows).unwrap();
        let t = b.take(&[0, 2]);
        assert_eq!(t.to_rows(), vec![row![1i64, "a"], row![3i64, "c"]]);
        let p = t.project(&[1]);
        assert_eq!(p.schema().field(0).name, "NAME");
        assert_eq!(p.row(1), row!["c"]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let r = Batch::from_rows(schema(), &[row![1i64]]);
        assert!(r.is_err());
        let cols = vec![ColumnValues::Int(vec![Some(1)])];
        assert!(Batch::new(schema(), cols).is_err());
    }

    #[test]
    fn unequal_columns_rejected() {
        let cols = vec![
            ColumnValues::Int(vec![Some(1), Some(2)]),
            ColumnValues::Str(vec![None]),
        ];
        assert!(Batch::new(schema(), cols).is_err());
    }

    #[test]
    fn concat_batches() {
        let a = Batch::from_rows(schema(), &[row![1i64, "a"]]).unwrap();
        let b = Batch::from_rows(schema(), &[row![2i64, "b"]]).unwrap();
        let c = Batch::concat(schema(), &[a, b]).unwrap();
        assert_eq!(c.len(), 2);
    }
}

//! Sorting, LIMIT/OFFSET, and top-k — morselized on the shared worker
//! pool.
//!
//! The serial single stable sort is gone. `sort_batch` now runs three
//! parallel phases on `pool::run_morsels`, each byte-identical to the
//! serial stable sort it replaced:
//!
//! 1. **Key evaluation** — computed key expressions are evaluated once
//!    into per-morsel chunks; bare column references compare straight
//!    through the typed column accessors with no per-row `Datum` clones.
//! 2. **Run generation** — each morsel sorts one `run_rows`-sized run of
//!    row indices (stable within the run). Runs cover ascending disjoint
//!    row ranges, so per-run stability plus a lowest-run-wins merge
//!    tie-break reproduces global input-order stability exactly.
//! 3. **Merge / Top-K** — a loser-tree k-way merge emits only the first
//!    `LIMIT+OFFSET` positions (truncation happens before any column is
//!    materialized), checking the cancellation token as it goes. When
//!    `LIMIT+OFFSET` is small relative to the input
//!    (`end * TOPK_FACTOR <= rows`), bounded per-morsel heaps replace the
//!    full sort entirely.
//!
//! Sort state (evaluated keys, the index permutation) is budgeted through
//! a `BudgetLease`, so an over-budget sort is refused with a classified
//! `ResourceExhausted` and the runs are released by RAII on every exit
//! path.

use crate::batch::Batch;
use crate::expr::Expr;
use crate::functions::EvalContext;
use crate::pool;
use crate::stats::ExecStats;
use dash_common::statement::approx_datum_bytes;
use dash_common::{BudgetLease, DashError, Datum, Result, StatementContext};
use dash_encoding::column::ColumnValues;
use std::cmp::Ordering;

/// Default rows per parallel sort run (`DASH_SORT_RUN_ROWS` overrides via
/// `AutoConfig`). Each run is one morsel: small enough that a handful of
/// runs exist at moderate row counts (fan-out), large enough that the
/// per-run `sort_unstable`-style cost dominates scheduling overhead.
pub const DEFAULT_SORT_RUN_ROWS: usize = 64 * 1024;

/// Top-K fast-path threshold: the bounded-heap path is taken when
/// `LIMIT+OFFSET` rows are at most `1/TOPK_FACTOR` of the input, i.e. when
/// keeping per-morsel heaps of `LIMIT+OFFSET` entries is clearly cheaper
/// than sorting everything.
pub const TOPK_FACTOR: usize = 8;

/// Merged rows between cancellation checks inside the k-way merge, and
/// evaluated rows between checks in serial key paths.
const CHECK_ROWS: usize = 4096;

/// Row count under which a gather is done serially; below this the
/// morsel-scheduling overhead exceeds the copy itself.
const MIN_PARALLEL_TAKE: usize = 8192;

/// One ORDER BY key.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Key expression over the input schema.
    pub expr: Expr,
    /// Ascending?
    pub asc: bool,
    /// NULLs last? (default true, matching the engine's convention).
    pub nulls_last: bool,
}

impl SortKey {
    /// Ascending key on a column ordinal.
    pub fn asc(col: usize) -> SortKey {
        SortKey {
            expr: Expr::col(col),
            asc: true,
            nulls_last: true,
        }
    }

    /// Descending key on a column ordinal.
    pub fn desc(col: usize) -> SortKey {
        SortKey {
            expr: Expr::col(col),
            asc: false,
            nulls_last: true,
        }
    }
}

/// Execution knobs for one sort. `limit`/`offset` come from the query,
/// `parallelism`/`run_rows` from `AutoConfig` via the plan node.
#[derive(Debug, Clone)]
pub struct SortOptions {
    /// LIMIT row count, if any.
    pub limit: Option<usize>,
    /// OFFSET row count.
    pub offset: usize,
    /// Worker-pool width for key eval, run generation, Top-K, and
    /// output materialization.
    pub parallelism: usize,
    /// Rows per generated run (`DASH_SORT_RUN_ROWS`).
    pub run_rows: usize,
}

impl Default for SortOptions {
    fn default() -> SortOptions {
        SortOptions {
            limit: None,
            offset: 0,
            parallelism: 1,
            run_rows: DEFAULT_SORT_RUN_ROWS,
        }
    }
}

// ---------------------------------------------------------------------------
// Positional key comparison
// ---------------------------------------------------------------------------

/// Computed key values stored in the per-morsel chunks they were evaluated
/// in. All chunks but the last have identical width, so lookup is pure
/// index arithmetic — no concatenation pass over all rows.
struct ChunkedDatums {
    chunks: Vec<Vec<Datum>>,
    chunk_rows: usize,
}

impl ChunkedDatums {
    fn get(&self, i: usize) -> &Datum {
        &self.chunks[i / self.chunk_rows][i % self.chunk_rows]
    }
}

/// One evaluated sort key, compared positionally by row index.
enum KeyColumn<'a> {
    /// Bare column reference: compare through the batch's typed column —
    /// no per-row Datum is ever built. Raw `i64` order matches the
    /// decoded datum's `sql_cmp` order for every int-encoded type
    /// (Date/Timestamp/Bool decode monotonically).
    Col(&'a ColumnValues),
    /// Computed expression, evaluated once up front.
    Computed(ChunkedDatums),
}

/// NULL handling + direction shared by both representations: NULL
/// placement follows `nulls_last` only (DESC does not flip it, matching
/// the engine's convention), direction reverses non-NULL comparisons.
fn ordered<T>(
    x: Option<T>,
    y: Option<T>,
    asc: bool,
    nulls_last: bool,
    cmp: impl FnOnce(T, T) -> Ordering,
) -> Ordering {
    match (x, y) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => {
            if nulls_last {
                Ordering::Greater
            } else {
                Ordering::Less
            }
        }
        (Some(_), None) => {
            if nulls_last {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
        (Some(a), Some(b)) => {
            let o = cmp(a, b);
            if asc {
                o
            } else {
                o.reverse()
            }
        }
    }
}

impl KeyColumn<'_> {
    fn cmp_at(&self, a: usize, b: usize, asc: bool, nulls_last: bool) -> Ordering {
        match self {
            KeyColumn::Col(ColumnValues::Int(v)) => {
                ordered(v[a], v[b], asc, nulls_last, |x, y| x.cmp(&y))
            }
            KeyColumn::Col(ColumnValues::Float(v)) => ordered(v[a], v[b], asc, nulls_last, |x, y| {
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }),
            KeyColumn::Col(ColumnValues::Str(v)) => {
                ordered(v[a].as_deref(), v[b].as_deref(), asc, nulls_last, str::cmp)
            }
            KeyColumn::Computed(c) => {
                let (x, y) = (c.get(a), c.get(b));
                ordered(
                    (!x.is_null()).then_some(x),
                    (!y.is_null()).then_some(y),
                    asc,
                    nulls_last,
                    |x, y| x.sql_cmp(y),
                )
            }
        }
    }
}

/// All keys of one sort, comparable by row position.
struct RowComparator<'a> {
    cols: Vec<(KeyColumn<'a>, bool, bool)>,
}

impl RowComparator<'_> {
    fn cmp_rows(&self, a: usize, b: usize) -> Ordering {
        for (col, asc, nulls_last) in &self.cols {
            let ord = col.cmp_at(a, b, *asc, *nulls_last);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    /// Total order for Top-K heaps: key order, input position breaks
    /// ties. This is exactly the order a stable sort produces, so a
    /// sorted candidate set's prefix equals the stable sort's prefix.
    fn cmp_total(&self, a: usize, b: usize) -> Ordering {
        self.cmp_rows(a, b).then(a.cmp(&b))
    }
}

/// Evaluate the sort keys into positional form. Bare column references
/// borrow the input column; everything else is evaluated in row morsels
/// on the pool, with the evaluated chunks charged to `lease` (key state
/// lives until the permutation is materialized).
fn build_key_columns<'a>(
    input: &'a Batch,
    keys: &[SortKey],
    ctx: &EvalContext,
    parallelism: usize,
    lease: &mut BudgetLease,
    stats: &mut ExecStats,
) -> Result<RowComparator<'a>> {
    let n = input.len();
    let width = input.schema().len();
    let computed: Vec<usize> = keys
        .iter()
        .enumerate()
        .filter(|(_, k)| !matches!(&k.expr, Expr::Col(c) if *c < width))
        .map(|(i, _)| i)
        .collect();
    let mut evaluated: Vec<Option<ChunkedDatums>> = keys.iter().map(|_| None).collect();
    if !computed.is_empty() {
        let ranges = pool::row_morsels(n, parallelism, CHECK_ROWS);
        let chunk_rows = ranges.first().map_or(1, |r| r.1 - r.0);
        let run = pool::run_morsels(ranges.len(), parallelism, &ctx.statement, |mi| {
            let (lo, hi) = ranges[mi];
            let mut cols: Vec<Vec<Datum>> = computed
                .iter()
                .map(|_| Vec::with_capacity(hi - lo))
                .collect();
            let mut bytes = 0u64;
            for row in lo..hi {
                for (slot, &ki) in computed.iter().enumerate() {
                    let d = keys[ki].expr.eval(input, row, ctx)?;
                    bytes += approx_datum_bytes(&d);
                    cols[slot].push(d);
                }
            }
            Ok((cols, bytes))
        })?;
        stats.note_parallel_phase(run.morsels_dispatched, run.workers_used);
        let mut chunked: Vec<Vec<Vec<Datum>>> = computed
            .iter()
            .map(|_| Vec::with_capacity(run.results.len()))
            .collect();
        for (cols, bytes) in run.results {
            lease
                .charge(bytes)
                .inspect_err(|_| stats.budget_rejections += 1)?;
            for (slot, col) in cols.into_iter().enumerate() {
                chunked[slot].push(col);
            }
        }
        for (slot, &ki) in computed.iter().enumerate() {
            evaluated[ki] = Some(ChunkedDatums {
                chunks: std::mem::take(&mut chunked[slot]),
                chunk_rows,
            });
        }
    }
    let mut cols = Vec::with_capacity(keys.len());
    for (i, k) in keys.iter().enumerate() {
        let col = match evaluated[i].take() {
            Some(c) => KeyColumn::Computed(c),
            None => match &k.expr {
                Expr::Col(c) => KeyColumn::Col(input.column(*c)),
                other => {
                    return Err(DashError::internal(format!(
                        "sort key not evaluated: {other:?}"
                    )))
                }
            },
        };
        cols.push((col, k.asc, k.nulls_last));
    }
    Ok(RowComparator { cols })
}

// ---------------------------------------------------------------------------
// K-way merge
// ---------------------------------------------------------------------------

/// K-way merge of per-run sorted position lists via a loser tree: one
/// comparison per tree level per emitted row instead of the binary-heap
/// `sift` pair. `take` bounds the output — LIMIT+OFFSET truncation
/// happens here, before any column is materialized.
///
/// Ties between runs go to the lower run index. Because runs cover
/// ascending disjoint position ranges and each run is internally stable,
/// that tie-break *is* global input order: the merged prefix is
/// byte-identical to the first `take` entries of one serial stable sort.
///
/// The cancellation token is checked every `CHECK_ROWS` outputs, so a
/// deadline kill lands mid-merge, not after it.
pub fn merge_sorted_runs<F>(
    runs: &[Vec<usize>],
    take: usize,
    stmt: &StatementContext,
    cmp: &F,
) -> Result<Vec<usize>>
where
    F: Fn(usize, usize) -> Ordering,
{
    let k = runs.len();
    let total: usize = runs.iter().map(Vec::len).sum();
    let take = take.min(total);
    if take == 0 {
        return Ok(Vec::new());
    }
    stmt.check()?;
    if k == 1 {
        return Ok(runs[0][..take].to_vec());
    }
    let mut heads = vec![0usize; k];
    // Does run `a`'s head sort strictly before run `b`'s? Exhausted runs
    // always lose; equal keys go to the lower run index (tie stability).
    let prefer = |a: usize, b: usize, heads: &[usize]| -> bool {
        match (heads[a] < runs[a].len(), heads[b] < runs[b].len()) {
            (false, _) => false,
            (true, false) => true,
            (true, true) => match cmp(runs[a][heads[a]], runs[b][heads[b]]) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => a < b,
            },
        }
    };
    // Build a winner tournament first (correct by construction), then read
    // the loser tree off it: `losers[j]` is the child-winner at node `j`
    // that lost the match `winners[j]` won. Building the loser tree
    // incrementally with a sentinel is subtly wrong (a sentinel meeting a
    // real run at an upper node can swap the real run out of the tree);
    // the two-pass build avoids that class of bug entirely.
    let mut winners = vec![0usize; 2 * k];
    for (i, w) in winners.iter_mut().enumerate().skip(k) {
        *w = i - k;
    }
    for j in (1..k).rev() {
        let (l, r) = (winners[2 * j], winners[2 * j + 1]);
        winners[j] = if prefer(r, l, &heads) { r } else { l };
    }
    let mut losers = vec![0usize; k];
    for j in 1..k {
        let (l, r) = (winners[2 * j], winners[2 * j + 1]);
        losers[j] = if winners[j] == l { r } else { l };
    }
    let mut winner = winners[1];
    let mut out = Vec::with_capacity(take);
    while out.len() < take {
        if out.len() % CHECK_ROWS == 0 {
            stmt.check()?;
        }
        out.push(runs[winner][heads[winner]]);
        heads[winner] += 1;
        // Replay the winner's leaf-to-root path: the advanced head
        // re-fights each stored loser, one comparison per level.
        let mut s = winner;
        let mut node = (k + winner) / 2;
        while node >= 1 {
            if prefer(losers[node], s, &heads) {
                std::mem::swap(&mut s, &mut losers[node]);
            }
            node /= 2;
        }
        winner = s;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Top-K
// ---------------------------------------------------------------------------

/// Bounded worst-at-root heap of row positions: keeps the `cap` best rows
/// seen, evicting the worst kept row when a better one arrives.
struct BoundedHeap {
    cap: usize,
    items: Vec<usize>,
}

impl BoundedHeap {
    fn new(cap: usize) -> BoundedHeap {
        BoundedHeap {
            cap,
            items: Vec::with_capacity(cap),
        }
    }

    /// `total` orders rows best-first; the heap keeps its *worst* kept row
    /// at the root so one comparison rejects most of the stream.
    fn offer(&mut self, row: usize, total: &impl Fn(usize, usize) -> Ordering) {
        if self.cap == 0 {
            return;
        }
        if self.items.len() < self.cap {
            self.items.push(row);
            // Sift up.
            let mut i = self.items.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if total(self.items[i], self.items[parent]) == Ordering::Greater {
                    self.items.swap(i, parent);
                    i = parent;
                } else {
                    break;
                }
            }
            return;
        }
        if total(row, self.items[0]) != Ordering::Less {
            return;
        }
        self.items[0] = row;
        // Sift down.
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut worst = i;
            if l < self.items.len() && total(self.items[l], self.items[worst]) == Ordering::Greater
            {
                worst = l;
            }
            if r < self.items.len() && total(self.items[r], self.items[worst]) == Ordering::Greater
            {
                worst = r;
            }
            if worst == i {
                break;
            }
            self.items.swap(i, worst);
            i = worst;
        }
    }
}

/// Top-K path: each morsel keeps a bounded heap of its `k` best rows
/// under the total order (key, position); the union of the per-morsel
/// heaps contains every global top-k row, so one small final sort of
/// ≤ `morsels · k` candidates yields exactly the stable sort's prefix.
fn top_k(
    n: usize,
    k: usize,
    cmp: &RowComparator<'_>,
    parallelism: usize,
    ctx: &EvalContext,
    stats: &mut ExecStats,
) -> Result<Vec<usize>> {
    let ranges = pool::row_morsels(n, parallelism, CHECK_ROWS);
    let total = |a: usize, b: usize| cmp.cmp_total(a, b);
    let run = pool::run_morsels(ranges.len(), parallelism, &ctx.statement, |mi| {
        let (lo, hi) = ranges[mi];
        let mut heap = BoundedHeap::new(k);
        for row in lo..hi {
            heap.offer(row, &total);
        }
        Ok(heap.items)
    })?;
    stats.note_parallel_phase(run.morsels_dispatched, run.workers_used);
    let mut candidates: Vec<usize> = run.results.into_iter().flatten().collect();
    candidates.sort_by(|&a, &b| total(a, b));
    candidates.truncate(k);
    Ok(candidates)
}

// ---------------------------------------------------------------------------
// Output materialization
// ---------------------------------------------------------------------------

/// Gather `positions` into an output batch. Wide gathers fan out over the
/// pool in position-range morsels and are stitched back in morsel order
/// (`ColumnValues::extend_from`), the same recipe scan materialization
/// uses; small gathers stay serial.
fn take_rows(
    input: &Batch,
    positions: &[usize],
    parallelism: usize,
    ctx: &EvalContext,
    stats: &mut ExecStats,
) -> Result<Batch> {
    if parallelism <= 1 || positions.len() < MIN_PARALLEL_TAKE || input.schema().is_empty() {
        ctx.statement.check()?;
        return Ok(input.take(positions));
    }
    let ranges = pool::row_morsels(positions.len(), parallelism, CHECK_ROWS);
    let run = pool::run_morsels(ranges.len(), parallelism, &ctx.statement, |mi| {
        let (lo, hi) = ranges[mi];
        let mut cols: Vec<ColumnValues> = input
            .schema()
            .fields()
            .iter()
            .map(|f| ColumnValues::empty_for(f.data_type))
            .collect();
        for (c, col) in cols.iter_mut().enumerate() {
            col.append_selected(input.column(c), &positions[lo..hi]);
        }
        Ok(cols)
    })?;
    stats.note_parallel_phase(run.morsels_dispatched, run.workers_used);
    let mut out: Vec<ColumnValues> = input
        .schema()
        .fields()
        .iter()
        .map(|f| ColumnValues::empty_for(f.data_type))
        .collect();
    for cols in run.results {
        for (oi, cv) in cols.into_iter().enumerate() {
            out[oi].extend_from(cv);
        }
    }
    Batch::new(input.schema().clone(), out)
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Sort a batch by keys, then apply OFFSET/LIMIT. Parallel at every
/// phase, byte-identical to a serial stable sort at any worker count.
pub fn sort_batch(
    input: &Batch,
    keys: &[SortKey],
    opts: &SortOptions,
    ctx: &EvalContext,
    stats: &mut ExecStats,
) -> Result<Batch> {
    let n = input.len();
    let parallelism = opts.parallelism.max(1);
    let run_rows = opts.run_rows.max(1);
    let end = match opts.limit {
        Some(l) => opts.offset.saturating_add(l).min(n),
        None => n,
    };
    let start = opts.offset.min(end);
    if keys.is_empty() {
        // Pure LIMIT/OFFSET: keep input order; only the kept slice is
        // ever gathered.
        let positions: Vec<usize> = (start..end).collect();
        return take_rows(input, &positions, parallelism, ctx, stats);
    }
    if start >= end {
        ctx.statement.check()?;
        return Ok(input.take(&[]));
    }

    // Evaluated keys and the index permutation are the sort's working
    // state: budgeted, and released by RAII on every exit path.
    let mut lease = BudgetLease::new(&ctx.statement);
    let cmp = build_key_columns(input, keys, ctx, parallelism, &mut lease, stats)?;

    let word = std::mem::size_of::<usize>() as u64;
    if opts.limit.is_some() && end.saturating_mul(TOPK_FACTOR) <= n {
        // Candidate sets are bounded at morsels · end positions.
        let morsels = pool::row_morsels(n, parallelism, CHECK_ROWS).len() as u64;
        lease
            .charge(morsels * end as u64 * word)
            .inspect_err(|_| stats.budget_rejections += 1)?;
        let positions = top_k(n, end, &cmp, parallelism, ctx, stats)?;
        return take_rows(input, &positions[start..], parallelism, ctx, stats);
    }

    // Full sort: the permutation plus the merged prefix.
    lease
        .charge((n + end) as u64 * word)
        .inspect_err(|_| stats.budget_rejections += 1)?;
    let n_runs = n.div_ceil(run_rows);
    let run = pool::run_morsels(n_runs, parallelism, &ctx.statement, |r| {
        let lo = r * run_rows;
        let hi = (lo + run_rows).min(n);
        let mut idx: Vec<usize> = (lo..hi).collect();
        // Stable within the run; runs cover ascending disjoint ranges, so
        // the merge's lowest-run-wins tie-break restores global input
        // order for equal keys.
        idx.sort_by(|&a, &b| cmp.cmp_rows(a, b));
        Ok(idx)
    })?;
    stats.note_parallel_phase(run.morsels_dispatched, run.workers_used);
    stats.sort_runs_generated += run.results.len() as u64;
    stats.merge_fanin = stats.merge_fanin.max(run.results.len() as u64);
    let positions = merge_sorted_runs(&run.results, end, &ctx.statement, &|a, b| {
        cmp.cmp_rows(a, b)
    })?;
    take_rows(input, &positions[start..], parallelism, ctx, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_common::types::DataType;
    use dash_common::{row, Field, Schema};

    fn batch() -> Batch {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int64),
            Field::new("y", DataType::Utf8),
        ])
        .unwrap();
        Batch::from_rows(
            schema,
            &[
                row![3i64, "c"],
                row![1i64, "a"],
                row![Datum::Null, "n"],
                row![2i64, "b"],
            ],
        )
        .unwrap()
    }

    fn ctx() -> EvalContext {
        EvalContext::default()
    }

    fn opts(limit: Option<usize>, offset: usize) -> SortOptions {
        SortOptions {
            limit,
            offset,
            ..SortOptions::default()
        }
    }

    fn sorted(input: &Batch, keys: &[SortKey], o: &SortOptions) -> Batch {
        let mut stats = ExecStats::default();
        sort_batch(input, keys, o, &ctx(), &mut stats).unwrap()
    }

    #[test]
    fn ascending_nulls_last() {
        let out = sorted(&batch(), &[SortKey::asc(0)], &opts(None, 0));
        let xs: Vec<String> = out.to_rows().iter().map(|r| r.get(0).render()).collect();
        assert_eq!(xs, vec!["1", "2", "3", "NULL"]);
    }

    #[test]
    fn descending_keeps_nulls_last() {
        let out = sorted(&batch(), &[SortKey::desc(0)], &opts(None, 0));
        let xs: Vec<String> = out.to_rows().iter().map(|r| r.get(0).render()).collect();
        assert_eq!(xs, vec!["3", "2", "1", "NULL"]);
    }

    #[test]
    fn nulls_first_option() {
        let key = SortKey {
            expr: Expr::col(0),
            asc: true,
            nulls_last: false,
        };
        let out = sorted(&batch(), &[key], &opts(None, 0));
        assert!(out.row(0).get(0).is_null());
    }

    #[test]
    fn limit_offset() {
        let out = sorted(&batch(), &[SortKey::asc(0)], &opts(Some(2), 1));
        let xs: Vec<String> = out.to_rows().iter().map(|r| r.get(0).render()).collect();
        assert_eq!(xs, vec!["2", "3"]);
        // Offset past the end.
        let out = sorted(&batch(), &[SortKey::asc(0)], &opts(Some(2), 99));
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn limit_without_sort_preserves_order() {
        let out = sorted(&batch(), &[], &opts(Some(2), 0));
        assert_eq!(out.row(0).get(1).as_str(), Some("c"));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn multi_key_sort() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let b = Batch::from_rows(
            schema,
            &[row![1i64, 2i64], row![1i64, 1i64], row![0i64, 9i64]],
        )
        .unwrap();
        let out = sorted(&b, &[SortKey::asc(0), SortKey::desc(1)], &opts(None, 0));
        assert_eq!(
            out.to_rows(),
            vec![row![0i64, 9i64], row![1i64, 2i64], row![1i64, 1i64]]
        );
    }

    #[test]
    fn computed_key_expression_sorts() {
        // A non-column key goes through the chunked evaluated path.
        let key = SortKey {
            expr: Expr::Neg(Box::new(Expr::col(0))),
            asc: true,
            nulls_last: true,
        };
        let out = sorted(&batch(), &[key], &opts(None, 0));
        let xs: Vec<String> = out.to_rows().iter().map(|r| r.get(0).render()).collect();
        assert_eq!(xs, vec!["3", "2", "1", "NULL"]);
    }

    #[test]
    fn tiny_runs_force_a_real_merge() {
        // run_rows = 1 → one run per row: the loser tree merges 4 runs.
        let o = SortOptions {
            run_rows: 1,
            parallelism: 2,
            ..SortOptions::default()
        };
        let mut stats = ExecStats::default();
        let out = sort_batch(&batch(), &[SortKey::asc(0)], &o, &ctx(), &mut stats).unwrap();
        let xs: Vec<String> = out.to_rows().iter().map(|r| r.get(0).render()).collect();
        assert_eq!(xs, vec!["1", "2", "3", "NULL"]);
        assert_eq!(stats.sort_runs_generated, 4);
        assert_eq!(stats.merge_fanin, 4);
    }

    #[test]
    fn merge_is_stable_across_runs() {
        // Equal keys must come out in run (= input) order at any fan-in.
        let runs = vec![vec![0, 2, 4], vec![1, 3, 5], vec![6, 7]];
        let keys = [0i64, 0, 1, 0, 1, 1, 0, 1];
        let cmp = |a: usize, b: usize| keys[a].cmp(&keys[b]);
        let merged =
            merge_sorted_runs(&runs, usize::MAX, &StatementContext::unbounded(), &cmp).unwrap();
        assert_eq!(merged, vec![0, 1, 3, 6, 2, 4, 5, 7]);
    }

    #[test]
    fn merge_truncates_at_take() {
        let runs = vec![vec![0, 1], vec![2, 3], vec![4]];
        let cmp = |a: usize, b: usize| a.cmp(&b);
        let merged = merge_sorted_runs(&runs, 3, &StatementContext::unbounded(), &cmp).unwrap();
        assert_eq!(merged, vec![0, 1, 2]);
    }
}

//! The "naive columnar" comparator.
//!
//! Table 1 Test 4 pits dashDB against "another popular MPP shared-nothing
//! column store with a memory cache". That competitor has the column
//! layout but not the BLU machinery, so this engine stores one
//! uncompressed `Vec<Datum>` per column and evaluates predicates by
//! comparing datums one at a time: no frequency dictionaries, no
//! operate-on-compressed, no synopsis, no software-SIMD. The difference
//! between this engine and `dash-exec` on identical queries *is* the
//! paper's claimed advantage.

use dash_common::{DashError, Datum, Result, Row, Schema};
use std::collections::HashMap;

/// One uncompressed, column-organized table.
#[derive(Debug, Clone)]
pub struct NaiveColumnTable {
    schema: Schema,
    columns: Vec<Vec<Datum>>,
    rows: usize,
}

impl NaiveColumnTable {
    /// Empty table.
    pub fn new(schema: Schema) -> NaiveColumnTable {
        let columns = vec![Vec::new(); schema.len()];
        NaiveColumnTable {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Load rows (validated).
    pub fn load(&mut self, rows: Vec<Row>) -> Result<u64> {
        let mut n = 0;
        for row in rows {
            let row = row.coerce(&self.schema)?;
            for (i, d) in row.0.into_iter().enumerate() {
                self.columns[i].push(d);
            }
            self.rows += 1;
            n += 1;
        }
        Ok(n)
    }

    /// Uncompressed bytes (columnar but not compressed — the structural
    /// difference from the BLU engine).
    pub fn total_bytes(&self) -> usize {
        self.columns
            .iter()
            .flat_map(|c| c.iter())
            .map(|d| d.approx_size())
            .sum()
    }

    /// Scan with per-column range predicates (datum-at-a-time evaluation,
    /// no skipping) and materialize the projection.
    pub fn scan(
        &self,
        predicates: &[(usize, Option<Datum>, Option<Datum>)],
        projection: &[usize],
    ) -> (Vec<Row>, u64) {
        let mut values_compared = 0u64;
        let mut selected: Vec<usize> = Vec::new();
        'row: for i in 0..self.rows {
            for (col, lo, hi) in predicates {
                values_compared += 1;
                let v = &self.columns[*col][i];
                if v.is_null() {
                    continue 'row;
                }
                if let Some(lo) = lo {
                    if v.sql_cmp(lo) == std::cmp::Ordering::Less {
                        continue 'row;
                    }
                }
                if let Some(hi) = hi {
                    if v.sql_cmp(hi) == std::cmp::Ordering::Greater {
                        continue 'row;
                    }
                }
            }
            selected.push(i);
        }
        let out = selected
            .iter()
            .map(|&i| {
                Row::new(
                    projection
                        .iter()
                        .map(|&c| self.columns[c][i].clone())
                        .collect(),
                )
            })
            .collect();
        (out, values_compared)
    }

    /// Grouped (count, sum) aggregation, datum-at-a-time.
    pub fn group_aggregate(
        &self,
        predicates: &[(usize, Option<Datum>, Option<Datum>)],
        key_col: usize,
        value_col: usize,
    ) -> Vec<(Datum, u64, f64)> {
        let (rows, _) = self.scan(predicates, &[key_col, value_col]);
        let mut groups: HashMap<Datum, (u64, f64)> = HashMap::new();
        for r in rows {
            let e = groups.entry(r.get(0).clone()).or_insert((0, 0.0));
            e.0 += 1;
            if let Some(f) = r.get(1).as_float() {
                e.1 += f;
            }
        }
        groups.into_iter().map(|(k, (c, s))| (k, c, s)).collect()
    }
}

/// A catalog of naive column tables (the "competitor warehouse").
#[derive(Debug, Default)]
pub struct NaiveEngine {
    tables: HashMap<String, NaiveColumnTable>,
}

impl NaiveEngine {
    /// Empty engine.
    pub fn new() -> NaiveEngine {
        NaiveEngine::default()
    }

    /// Create a table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        let key = name.to_ascii_uppercase();
        if self.tables.contains_key(&key) {
            return Err(DashError::already_exists("table", &key));
        }
        self.tables.insert(key, NaiveColumnTable::new(schema));
        Ok(())
    }

    /// Access a table.
    pub fn table(&self, name: &str) -> Result<&NaiveColumnTable> {
        self.tables
            .get(&name.to_ascii_uppercase())
            .ok_or_else(|| DashError::not_found("table", name))
    }

    /// Mutable access.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut NaiveColumnTable> {
        self.tables
            .get_mut(&name.to_ascii_uppercase())
            .ok_or_else(|| DashError::not_found("table", name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_common::types::DataType;
    use dash_common::{row, Field};

    fn table(n: usize) -> NaiveColumnTable {
        let schema = Schema::new(vec![
            Field::not_null("id", DataType::Int64),
            Field::new("grp", DataType::Utf8),
            Field::new("amt", DataType::Float64),
        ])
        .unwrap();
        let mut t = NaiveColumnTable::new(schema);
        let rows: Vec<Row> = (0..n)
            .map(|i| row![i as i64, format!("g{}", i % 4), (i % 10) as f64])
            .collect();
        t.load(rows).unwrap();
        t
    }

    #[test]
    fn scan_filters_and_projects() {
        let t = table(1000);
        let (rows, compared) = t.scan(
            &[(0, Some(Datum::Int(100)), Some(Datum::Int(109)))],
            &[0, 1],
        );
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].len(), 2);
        // Naive engine compares every row — no skipping.
        assert_eq!(compared, 1000);
    }

    #[test]
    fn group_aggregate_works() {
        let t = table(400);
        let groups = t.group_aggregate(&[], 1, 2);
        assert_eq!(groups.len(), 4);
        let n: u64 = groups.iter().map(|(_, c, _)| c).sum();
        assert_eq!(n, 400);
    }

    #[test]
    fn engine_catalog() {
        let mut e = NaiveEngine::new();
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
        e.create_table("t", schema.clone()).unwrap();
        assert!(e.create_table("T", schema).is_err());
        e.table_mut("t").unwrap().load(vec![row![1i64]]).unwrap();
        assert_eq!(e.table("t").unwrap().len(), 1);
        assert!(e.table("missing").is_err());
    }

    #[test]
    fn uncompressed_bytes_scale_linearly() {
        let small = table(100).total_bytes();
        let big = table(1000).total_bytes();
        assert!(big > small * 8, "no compression: {small} -> {big}");
    }
}

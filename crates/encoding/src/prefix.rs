//! Prefix compression for string dictionaries.
//!
//! The paper: "*Prefix compression* methods are also used to eliminate
//! storage for commonly occurring string prefixes." The dictionary's
//! partition value lists are sorted, so adjacent entries share prefixes
//! heavily (URLs, account ids, city names...). We store them front-coded:
//! each entry records how many leading bytes it shares with its predecessor
//! plus the remaining suffix. Restart points every [`RESTART_INTERVAL`]
//! entries bound random-access cost, LevelDB-style.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Entries between full (restart) entries.
pub const RESTART_INTERVAL: usize = 16;

/// A front-coded list of sorted strings with O(RESTART_INTERVAL) access.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontCodedList {
    /// (shared_with_prev, suffix) pairs; shared == 0 at restart points.
    entries: Vec<(u16, Box<str>)>,
    len: usize,
}

impl FrontCodedList {
    /// Build from sorted strings.
    ///
    /// # Panics
    /// Debug-asserts the input is sorted (the dictionary builder guarantees
    /// it).
    pub fn from_sorted<S: AsRef<str>>(sorted: &[S]) -> FrontCodedList {
        debug_assert!(
            sorted.windows(2).all(|w| w[0].as_ref() <= w[1].as_ref()),
            "FrontCodedList input must be sorted"
        );
        let mut entries = Vec::with_capacity(sorted.len());
        let mut prev = "";
        for (i, s) in sorted.iter().enumerate() {
            let s = s.as_ref();
            let shared = if i % RESTART_INTERVAL == 0 {
                0
            } else {
                common_prefix_len(prev, s).min(u16::MAX as usize) as u16
            };
            entries.push((shared, s[shared as usize..].into()));
            prev = s;
        }
        FrontCodedList {
            len: sorted.len(),
            entries,
        }
    }

    /// Number of strings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reconstruct the string at `index`.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> String {
        assert!(index < self.len, "index {index} out of bounds");
        let restart = index - index % RESTART_INTERVAL;
        let mut out = String::new();
        for i in restart..=index {
            let (shared, suffix) = &self.entries[i];
            out.truncate(*shared as usize);
            out.push_str(suffix);
        }
        out
    }

    /// Iterate all strings in order (single sequential reconstruction).
    pub fn iter(&self) -> impl Iterator<Item = String> + '_ {
        let mut current = String::new();
        self.entries.iter().map(move |(shared, suffix)| {
            current.truncate(*shared as usize);
            current.push_str(suffix);
            current.clone()
        })
    }

    /// Stored bytes for compression accounting, modelling the on-page
    /// layout: a contiguous suffix byte area plus a 2-byte shared-length
    /// and 4-byte offset per entry.
    pub fn size_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(_, s)| 2 + s.len() + 4)
            .sum::<usize>()
    }

    /// Bytes the raw (uncompressed) strings would occupy.
    pub fn raw_bytes(&self) -> usize {
        // Reconstruct lengths: suffix + shared.
        self.entries
            .iter()
            .map(|(shared, s)| *shared as usize + s.len() + 16)
            .sum::<usize>()
    }
}

/// Extract the single longest common prefix of *all* strings in a column
/// (column-global prefix elimination, applied before dictionary building
/// when profitable, e.g. `"ORD-00001"`, `"ORD-00002"`, ...).
pub fn global_prefix<'a, S>(values: impl IntoIterator<Item = &'a S>) -> String
where
    S: AsRef<str> + 'a,
{
    let mut it = values.into_iter();
    let Some(first) = it.next() else {
        return String::new();
    };
    let mut prefix = first.as_ref().to_string();
    for v in it {
        let l = common_prefix_len(&prefix, v.as_ref());
        prefix.truncate(l);
        if prefix.is_empty() {
            break;
        }
    }
    prefix
}

/// Length of the common prefix of two strings, in bytes, on a char boundary.
pub fn common_prefix_len(a: &str, b: &str) -> usize {
    let mut l = a
        .as_bytes()
        .iter()
        .zip(b.as_bytes())
        .take_while(|(x, y)| x == y)
        .count();
    // Back off to a UTF-8 char boundary.
    while l > 0 && !a.is_char_boundary(l) {
        l -= 1;
    }
    l
}

/// Convert the first 8 bytes of a string to a big-endian u64 — an
/// order-preserving (though lossy) mapping used by the synopsis to prune
/// string predicates.
pub fn str_prefix_ordered(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_be_bytes(buf)
}

/// Sorted `Arc<str>` helper used by the string dictionary builder.
pub fn sort_arcs(mut v: Vec<Arc<str>>) -> Vec<Arc<str>> {
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip() {
        let data = vec![
            "alpha", "alphabet", "alphabetical", "beta", "betamax", "gamma",
        ];
        let fcl = FrontCodedList::from_sorted(&data);
        for (i, s) in data.iter().enumerate() {
            assert_eq!(fcl.get(i), *s);
        }
        let all: Vec<String> = fcl.iter().collect();
        assert_eq!(all, data);
    }

    #[test]
    fn compression_on_shared_prefixes() {
        let data: Vec<String> = (0..1000).map(|i| format!("customer-order-{i:08}")).collect();
        let fcl = FrontCodedList::from_sorted(&data);
        assert!(
            fcl.size_bytes() < fcl.raw_bytes() / 2,
            "front coding should halve storage: {} vs {}",
            fcl.size_bytes(),
            fcl.raw_bytes()
        );
    }

    #[test]
    fn restart_points_bound_reconstruction() {
        let data: Vec<String> = (0..100).map(|i| format!("k{i:04}")).collect();
        let fcl = FrontCodedList::from_sorted(&data);
        // Entry at a restart index must be stored in full.
        assert_eq!(fcl.entries[RESTART_INTERVAL].0, 0);
        assert_eq!(fcl.get(RESTART_INTERVAL), data[RESTART_INTERVAL]);
    }

    #[test]
    fn global_prefix_extraction() {
        let vals = ["ORD-001", "ORD-002", "ORD-9"];
        assert_eq!(global_prefix(vals.iter()), "ORD-");
        let vals2 = ["abc", "xyz"];
        assert_eq!(global_prefix(vals2.iter()), "");
        let empty: Vec<&str> = vec![];
        assert_eq!(global_prefix(empty.iter()), "");
    }

    #[test]
    fn utf8_boundary_safety() {
        let a = "caf\u{e9}X"; // café + X
        let b = "caf\u{e8}Y"; // cafè + Y — é and è share first UTF-8 byte
        let l = common_prefix_len(a, b);
        assert!(a.is_char_boundary(l));
        assert_eq!(&a[..l], "caf");
    }

    #[test]
    fn str_prefix_ordering() {
        assert!(str_prefix_ordered("apple") < str_prefix_ordered("banana"));
        assert!(str_prefix_ordered("a") < str_prefix_ordered("aa"));
        assert_eq!(str_prefix_ordered(""), 0);
        // Lossy beyond 8 bytes — equal prefixes map equal.
        assert_eq!(
            str_prefix_ordered("12345678abc"),
            str_prefix_ordered("12345678xyz")
        );
    }

    proptest! {
        #[test]
        fn prop_roundtrip(mut data in prop::collection::vec("[a-z]{0,20}", 1..200)) {
            data.sort();
            let fcl = FrontCodedList::from_sorted(&data);
            for (i, s) in data.iter().enumerate() {
                prop_assert_eq!(fcl.get(i), s.clone());
            }
        }

        #[test]
        fn prop_str_prefix_monotone(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            if str_prefix_ordered(&a) < str_prefix_ordered(&b) {
                prop_assert!(a < b);
            }
        }
    }
}

//! The database ↔ analytics data path (Figures 6 & 7).
//!
//! "Each Spark Worker fetches the data collocated to a local shard ...
//! Per default a socket communication is used between the database process
//! and the Spark process. ... To optimize the transfer an additional where
//! clause could be pushed to the database to transfer only the data really
//! needed."
//!
//! [`read_table`] is that JDBC-style interface: a worker reads a table
//! (optionally pushing a WHERE clause down to the engine) and receives a
//! [`Dataset`]. The simulated transfer cost model separates *collocated*
//! (local socket) from *remote* (cluster network) fetches so the
//! integration benchmark can show why collocation preserves the MPP
//! scalability curve.

use crate::dataset::Dataset;
use dash_common::{Result, Row};
use dash_core::Database;
use std::sync::Arc;

/// Where the worker sits relative to the shard it reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMode {
    /// Worker on the same host as the shard: loopback socket (~8 GB/s,
    /// negligible latency).
    Collocated,
    /// Worker on a different host: cluster network (~1.1 GB/s effective
    /// 10 GbE plus per-fetch round trips).
    Remote,
}

/// Measured (and simulated) transfer characteristics of one fetch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferStats {
    /// Rows shipped to the worker.
    pub rows: u64,
    /// Approximate bytes shipped.
    pub bytes: u64,
    /// Simulated transfer time, µs.
    pub simulated_us: f64,
    /// Whether a predicate was pushed down.
    pub pushdown: bool,
    /// Mode used.
    pub mode: TransferMode,
}

impl TransferMode {
    fn simulate_us(self, bytes: u64) -> f64 {
        match self {
            // ~8 GB/s loopback, 20 µs setup.
            TransferMode::Collocated => 20.0 + bytes as f64 / 8000.0,
            // ~1.1 GB/s effective, 500 µs of round trips.
            TransferMode::Remote => 500.0 + bytes as f64 / 1100.0,
        }
    }
}

/// Fetch `columns` of `table` from a shard engine into a `partitions`-way
/// dataset, optionally pushing a WHERE clause into the engine ("to
/// transfer only the data really needed").
pub fn read_table(
    db: &Arc<Database>,
    table: &str,
    columns: &[&str],
    where_clause: Option<&str>,
    mode: TransferMode,
    partitions: usize,
) -> Result<(Dataset, TransferStats)> {
    let mut session = db.connect();
    let cols = if columns.is_empty() {
        "*".to_string()
    } else {
        columns.join(", ")
    };
    let sql = match where_clause {
        Some(w) => format!("SELECT {cols} FROM {table} WHERE {w}"),
        None => format!("SELECT {cols} FROM {table}"),
    };
    let result = session.execute(&sql)?;
    let bytes: u64 = result
        .rows
        .iter()
        .map(|r| r.values().iter().map(|d| d.approx_size() as u64).sum::<u64>())
        .sum();
    let stats = TransferStats {
        rows: result.rows.len() as u64,
        bytes,
        simulated_us: mode.simulate_us(bytes),
        pushdown: where_clause.is_some(),
        mode,
    };
    Ok((
        Dataset::from_rows(result.schema, result.rows, partitions),
        stats,
    ))
}

/// Fetch without pushdown and filter worker-side — the anti-pattern the
/// pushdown exists to avoid; used by the ablation benchmark.
pub fn read_table_then_filter(
    db: &Arc<Database>,
    table: &str,
    columns: &[&str],
    worker_filter: impl Fn(&Row) -> bool + Sync,
    mode: TransferMode,
    partitions: usize,
) -> Result<(Dataset, TransferStats)> {
    let (full, stats) = read_table(db, table, columns, None, mode, partitions)?;
    Ok((full.filter(worker_filter), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_core::HardwareSpec;

    fn shard_with_data(rows: usize) -> Arc<Database> {
        let db = Database::with_hardware(HardwareSpec::laptop());
        let mut s = db.connect();
        s.execute("CREATE TABLE m (id BIGINT, grp INT, v DOUBLE)").unwrap();
        for chunk in (0..rows).collect::<Vec<_>>().chunks(500) {
            let values: Vec<String> = chunk
                .iter()
                .map(|i| format!("({}, {}, {})", i, i % 5, (i % 100) as f64 / 10.0))
                .collect();
            s.execute(&format!("INSERT INTO m VALUES {}", values.join(", ")))
                .unwrap();
        }
        db
    }

    #[test]
    fn pushdown_reduces_transfer() {
        let db = shard_with_data(2000);
        let (full, full_stats) =
            read_table(&db, "m", &["id", "v"], None, TransferMode::Collocated, 4).unwrap();
        let (sel, sel_stats) = read_table(
            &db,
            "m",
            &["id", "v"],
            Some("grp = 0"),
            TransferMode::Collocated,
            4,
        )
        .unwrap();
        assert_eq!(full.count(), 2000);
        assert_eq!(sel.count(), 400);
        assert!(sel_stats.pushdown);
        assert!(
            sel_stats.bytes * 4 < full_stats.bytes,
            "pushdown should cut bytes ~5x: {} vs {}",
            sel_stats.bytes,
            full_stats.bytes
        );
    }

    #[test]
    fn collocated_beats_remote() {
        let db = shard_with_data(1000);
        let (_, local) =
            read_table(&db, "m", &[], None, TransferMode::Collocated, 2).unwrap();
        let (_, remote) = read_table(&db, "m", &[], None, TransferMode::Remote, 2).unwrap();
        assert_eq!(local.rows, remote.rows);
        assert!(
            remote.simulated_us > local.simulated_us * 3.0,
            "remote {} vs local {}",
            remote.simulated_us,
            local.simulated_us
        );
    }

    #[test]
    fn worker_side_filter_matches_pushdown_results() {
        let db = shard_with_data(500);
        let (pushed, _) = read_table(
            &db,
            "m",
            &["id"],
            Some("grp = 1"),
            TransferMode::Collocated,
            2,
        )
        .unwrap();
        let (filtered, stats) = read_table_then_filter(
            &db,
            "m",
            &["id", "grp"],
            |r| r.get(1).as_int() == Some(1),
            TransferMode::Collocated,
            2,
        )
        .unwrap();
        assert_eq!(pushed.count(), filtered.count());
        // But the no-pushdown path paid for the full table.
        assert_eq!(stats.rows, 500);
    }
}

//! Reproduces **Table 1** — the paper's four workload performance tests.
//!
//! | | paper | what this binary measures |
//! |---|---|---|
//! | Test 1 | customer workload serial queries, avg 27.1× / median 6.3× vs appliance | long-tail analytic query set on dashDB vs the row-store appliance model |
//! | Test 2 | concurrent customer workload (up to 100 streams), 2.1× workload time | the full statement mix over N streams on both engines |
//! | Test 3 | TPC-DS queries, 2.1× avg speedup vs (FPGA) appliance | TPC-DS-like query set vs the FPGA-assisted appliance model |
//! | Test 4 | BD Insight 5 streams on AWS, 3.2× QpH vs cloud column store | 5 streams vs the naive-columnar comparator on identical (CPU) hardware |
//!
//! Absolute numbers differ from the paper (their testbed was physical
//! hardware at 25 TB); the *shape* — dashDB wins every test, Test 1's mean
//! far above its median, Tests 3/4 winning by small factors — is the
//! reproduction target. Run with `--test N` for one test, default all.

use dash_bench::*;
use dash_core::{Database, HardwareSpec};
use dash_rowstore::engine::RowEngine;
use dash_rowstore::naive::NaiveEngine;
use dash_workloads::{bdinsight, customer, tpcds};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let which: Option<u32> = std::env::args()
        .skip_while(|a| a != "--test")
        .nth(1)
        .and_then(|v| v.parse().ok());
    println!("Table 1 reproduction — dashdb-local-rs");
    if which.is_none() || which == Some(1) {
        test1();
    }
    if which.is_none() || which == Some(2) {
        test2();
    }
    if which.is_none() || which == Some(3) {
        test3();
    }
    if which.is_none() || which == Some(4) {
        test4();
    }
}

/// Test 1: serial long-tail analytic queries, dashDB vs appliance.
fn test1() {
    section("Test 1: customer workload, serial query performance");
    let scale = 200_000;
    let w = customer::generate(scale, 0);
    // Model the paper's data >> RAM regime: both engines get a pool that
    // holds ~10% of the (row-organized) table pages.
    let raw_bytes: usize = w.tables.iter().map(|t| t.rows.len() * 72).sum();
    let pool_pages = (raw_bytes / (32 * 1024) / 10).max(16);
    let db = Database::with_pool_pages(HardwareSpec::laptop(), pool_pages);
    let mut row = RowEngine::new(Some(pool_pages));
    for t in &w.tables {
        load_into_db(&db, t).expect("load db");
        load_into_row_engine(&mut row, t).expect("load row");
    }
    let mut session = db.connect();
    let mut speedups = Vec::new();
    // No warm-up: every query is distinct, as in the paper's 3,500-query
    // serial measurement.
    for q in &w.analytic_queries {
        let (a, _, t_db) = run_on_db(&mut session, q).expect("db query");
        let (b, _, t_row) = run_on_row(&row, q).expect("row query");
        assert_eq!(a, b, "engines disagree on {}", q.to_sql());
        speedups.push(t_row.total() / t_db.total().max(1e-9));
    }
    report("queries", speedups.len());
    report("avg query speedup (paper: 27.1x)", format!("{:.1}x", mean(&speedups)));
    report(
        "median query speedup (paper: 6.3x)",
        format!("{:.1}x", median(&speedups)),
    );
    report("geomean speedup", format!("{:.1}x", geomean(&speedups)));
    let shape_ok = mean(&speedups) > median(&speedups) && median(&speedups) > 1.0;
    report(
        "shape check (avg >> median > 1)",
        if shape_ok { "PASS" } else { "FAIL" },
    );
}

/// Test 2: the concurrent mixed workload.
fn test2() {
    section("Test 2: customer workload, concurrent throughput");
    let scale = 60_000;
    let streams = 8usize;
    let per_stream = 400usize;
    let w = customer::generate(scale, 0);
    let n_accts = w.tables[1].rows.len();
    // Table 1's Test 1/2 hardware: 4 nodes x 20 cores — model one fat
    // node so the WLM admits enough concurrent streams, and keep the
    // data >> RAM pool regime on both engines.
    let hw = HardwareSpec::new(32, 64 * 1024);
    let raw_bytes: usize = w.tables.iter().map(|t| t.rows.len() * 72).sum();
    let pool_pages = (raw_bytes / (32 * 1024) / 10).max(16);

    // dashDB: shared engine, one session per stream, WLM-gated.
    let db = Database::with_pool_pages(hw, pool_pages);
    for t in &w.tables {
        load_into_db(&db, t).expect("load db");
    }
    let started = Instant::now();
    crossbeam::thread::scope(|scope| {
        for s in 0..streams {
            let db: Arc<Database> = db.clone();
            let queries = w.analytic_queries.clone();
            scope.spawn(move |_| {
                let stmts = customer::statement_stream(
                    &format!("w{s}"),
                    scale,
                    n_accts,
                    per_stream,
                    &queries,
                );
                let mut session = db.connect();
                for st in &stmts {
                    if let Err(e) = session.execute(&st.sql) {
                        panic!("stream {s} failed on `{}`: {e}", st.sql);
                    }
                }
            });
        }
    })
    .expect("scope");
    let dash_s = started.elapsed().as_secs_f64();

    // Appliance: same streams, programmatic ops, one RowEngine per stream
    // (generous: no cross-stream locking), HDD-class I/O charged per
    // analytic query at the end via the serial-equivalent measure.
    let started = Instant::now();
    let io_s: f64 = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..streams)
            .map(|s| {
                let tables = w.tables.clone();
                let queries = w.analytic_queries.clone();
                scope.spawn(move |_| {
                    let mut engine = RowEngine::new(Some(pool_pages));
                    for t in &tables {
                        load_into_row_engine(&mut engine, t).expect("load");
                    }
                    let stmts = customer::statement_stream(
                        &format!("w{s}"),
                        scale,
                        n_accts,
                        per_stream,
                        &queries,
                    );
                    let mut io = 0.0;
                    for st in &stmts {
                        if let customer::MixedOp::Analytic(spec) = &st.op {
                            let (_, _, t) = run_on_row(&engine, spec).expect("row query");
                            io += t.sim_io_s;
                        } else {
                            run_mixed_on_row(&mut engine, &st.op).expect("row op");
                        }
                    }
                    io
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("join")).sum()
    })
    .expect("scope");
    // Streams overlap; charge the per-node I/O as parallel across streams.
    let appliance_s = started.elapsed().as_secs_f64() + io_s / streams as f64;
    report("streams", streams);
    report("statements per stream", per_stream);
    report("dashDB workload time", format!("{dash_s:.2} s"));
    report("appliance workload time", format!("{appliance_s:.2} s"));
    report(
        "workload time improvement (paper: 2.1x)",
        format!("{:.1}x", appliance_s / dash_s.max(1e-9)),
    );
}

/// Test 3: TPC-DS-like queries vs the FPGA-assisted appliance.
fn test3() {
    section("Test 3: TPC-DS benchmark vs appliance");
    let scale = 2_000_000;
    let w = tpcds::generate(scale);
    let raw_bytes: usize = w.tables.iter().map(|t| t.rows.len() * 90).sum();
    let pool_pages = (raw_bytes / (32 * 1024) / 10).max(16);
    let db = Database::with_pool_pages(HardwareSpec::laptop(), pool_pages);
    let mut row = RowEngine::new(Some(pool_pages));
    for t in &w.tables {
        load_into_db(&db, t).expect("load db");
        load_into_row_engine(&mut row, t).expect("load row");
    }
    let fact_bytes = row.total_bytes("store_sales").expect("bytes") as u64;
    let mut session = db.connect();
    let mut speedups = Vec::new();
    for q in &w.queries {
        let _ = run_on_db(&mut session, q); // warm
        let (a, stats, t_db) = run_on_db(&mut session, q).expect("db query");
        let (b, _, _) = run_on_row(&row, q).expect("row query");
        assert_eq!(a, b, "engines disagree on {}", q.to_sql());
        // FPGA appliance model: the FPGAs filter at wire speed (row-engine
        // CPU is not charged) and zone maps skip extents the way our
        // synopsis does, so the appliance streams only the candidate
        // fraction of the full-width rows from its disk array.
        let candidate_fraction = if stats.strides_total > 0 {
            (stats.strides_scanned as f64 / stats.strides_total as f64).max(0.01)
        } else {
            1.0
        };
        let t_appliance =
            appliance_fpga_time_s((fact_bytes as f64 * candidate_fraction) as u64);
        speedups.push(t_appliance / t_db.total().max(1e-9));
    }
    report("queries", speedups.len());
    report(
        "avg query speedup (paper: 2.1x)",
        format!("{:.1}x", mean(&speedups)),
    );
    report("geomean speedup", format!("{:.1}x", geomean(&speedups)));
    report(
        "shape check (dashDB wins, single-digit factor)",
        if mean(&speedups) > 1.0 { "PASS" } else { "FAIL" },
    );
}

/// Test 4: 5-stream throughput vs the naive columnar cloud warehouse.
fn test4() {
    section("Test 4: BD Insight 5-stream throughput on identical hardware");
    let scale = 150_000;
    let w = bdinsight::generate(scale);
    let db = Database::untracked();
    let mut naive = NaiveEngine::new();
    for t in &w.tables {
        load_into_db(&db, t).expect("load db");
        load_into_naive(&mut naive, t).expect("load naive");
    }
    let naive = Arc::new(naive);
    // Verify agreement on one stream first.
    {
        let mut session = db.connect();
        for q in &w.streams[0] {
            let (a, _, _) = run_on_db(&mut session, q).expect("db");
            let (b, _) = run_on_naive(&naive, q).expect("naive");
            assert_eq!(a, b, "engines disagree on {}", q.to_sql());
        }
    }
    let total_queries: usize = w.streams.iter().map(|s| s.len()).sum();

    let started = Instant::now();
    crossbeam::thread::scope(|scope| {
        for stream in &w.streams {
            let db = db.clone();
            scope.spawn(move |_| {
                let mut session = db.connect();
                for q in stream {
                    run_on_db(&mut session, q).expect("db query");
                }
            });
        }
    })
    .expect("scope");
    let dash_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    crossbeam::thread::scope(|scope| {
        for stream in &w.streams {
            let naive = naive.clone();
            scope.spawn(move |_| {
                for q in stream {
                    run_on_naive(&naive, q).expect("naive query");
                }
            });
        }
    })
    .expect("scope");
    let naive_s = started.elapsed().as_secs_f64();

    let dash_qph = bdinsight::qph(total_queries, dash_s);
    let naive_qph = bdinsight::qph(total_queries, naive_s);
    report("streams x queries", format!("{} x {}", w.streams.len(), total_queries / w.streams.len()));
    report("dashDB QpH", format!("{dash_qph:.0}"));
    report("competitor QpH", format!("{naive_qph:.0}"));
    report(
        "throughput increase (paper: 3.2x)",
        format!("{:.1}x", dash_qph / naive_qph.max(1e-9)),
    );
}

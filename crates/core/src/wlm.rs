//! Workload management.
//!
//! The auto-configuration sizes an admission limit for concurrent
//! heavyweight queries (§II.A lists "workload management infrastructure"
//! among the automatically configured subsystems). Queries above the limit
//! queue; the concurrent-workload benchmark (Table 1, Test 2) runs its 100
//! streams through this gate.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Default)]
struct WlmState {
    running: u32,
    queued: u32,
    peak_running: u32,
    peak_queued: u32,
    admitted_total: u64,
}

/// Admission-control gate.
#[derive(Clone)]
pub struct WorkloadManager {
    limit: u32,
    state: Arc<(Mutex<WlmState>, Condvar)>,
}

/// RAII admission ticket; releases the slot on drop.
pub struct Admission {
    wlm: WorkloadManager,
}

impl WorkloadManager {
    /// Gate admitting up to `limit` concurrent queries.
    pub fn new(limit: u32) -> WorkloadManager {
        WorkloadManager {
            limit: limit.max(1),
            state: Arc::new((Mutex::new(WlmState::default()), Condvar::new())),
        }
    }

    /// The admission limit.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Block until a slot is free, then occupy it.
    pub fn admit(&self) -> Admission {
        let (lock, cv) = &*self.state;
        let mut st = lock.lock();
        st.queued += 1;
        st.peak_queued = st.peak_queued.max(st.queued);
        while st.running >= self.limit {
            cv.wait(&mut st);
        }
        st.queued -= 1;
        st.running += 1;
        st.peak_running = st.peak_running.max(st.running);
        st.admitted_total += 1;
        Admission { wlm: self.clone() }
    }

    /// Try to occupy a slot without blocking.
    pub fn try_admit(&self) -> Option<Admission> {
        let (lock, _) = &*self.state;
        let mut st = lock.lock();
        if st.running >= self.limit {
            return None;
        }
        st.running += 1;
        st.peak_running = st.peak_running.max(st.running);
        st.admitted_total += 1;
        Some(Admission { wlm: self.clone() })
    }

    /// Block with a timeout; `None` if the slot never freed.
    pub fn admit_timeout(&self, timeout: Duration) -> Option<Admission> {
        let (lock, cv) = &*self.state;
        let mut st = lock.lock();
        st.queued += 1;
        st.peak_queued = st.peak_queued.max(st.queued);
        let deadline = std::time::Instant::now() + timeout;
        while st.running >= self.limit {
            if cv.wait_until(&mut st, deadline).timed_out() {
                st.queued -= 1;
                return None;
            }
        }
        st.queued -= 1;
        st.running += 1;
        st.peak_running = st.peak_running.max(st.running);
        st.admitted_total += 1;
        Some(Admission { wlm: self.clone() })
    }

    /// (running, queued, peak_running, peak_queued, admitted_total).
    pub fn snapshot(&self) -> (u32, u32, u32, u32, u64) {
        let st = self.state.0.lock();
        (
            st.running,
            st.queued,
            st.peak_running,
            st.peak_queued,
            st.admitted_total,
        )
    }
}

impl Drop for Admission {
    fn drop(&mut self) {
        let (lock, cv) = &*self.wlm.state;
        let mut st = lock.lock();
        st.running -= 1;
        cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn respects_limit_under_contention() {
        let wlm = WorkloadManager::new(4);
        let mut handles = Vec::new();
        for _ in 0..32 {
            let w = wlm.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    let _ticket = w.admit();
                    std::hint::black_box(());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (running, queued, peak_running, _, admitted) = wlm.snapshot();
        assert_eq!(running, 0);
        assert_eq!(queued, 0);
        assert!(peak_running <= 4, "peak {peak_running} exceeded the limit");
        assert_eq!(admitted, 32 * 50);
    }

    #[test]
    fn try_admit_fails_when_full() {
        let wlm = WorkloadManager::new(1);
        let t1 = wlm.try_admit().expect("first slot");
        assert!(wlm.try_admit().is_none());
        drop(t1);
        assert!(wlm.try_admit().is_some());
    }

    #[test]
    fn admit_timeout_times_out() {
        let wlm = WorkloadManager::new(1);
        let _hold = wlm.admit();
        let r = wlm.admit_timeout(Duration::from_millis(20));
        assert!(r.is_none());
        let (_, queued, ..) = wlm.snapshot();
        assert_eq!(queued, 0, "timed-out waiter must leave the queue");
    }
}

//! SQL dialect identifiers (§II.C of the paper).
//!
//! dashDB Local "began with an ANSI standard compliant SQL compiler, and
//! added extensions for Oracle, PostgreSQL, Netezza, and DB2". A session
//! variable selects the active dialect; objects (views) remember the
//! dialect they were created under.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The SQL language variants the engine understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Dialect {
    /// ANSI-standard baseline (always available).
    #[default]
    Ansi,
    /// Oracle extensions: `NVL`, `DECODE`, `ROWNUM`, `DUAL`, `(+)` joins...
    Oracle,
    /// Netezza extensions (largely PostgreSQL-flavoured).
    Netezza,
    /// PostgreSQL extensions: `::` casts, `LIMIT/OFFSET`, `ISNULL`...
    PostgreSql,
    /// DB2 extensions: `VALUES` statements, `DECFLOAT` helpers...
    Db2,
}

impl Dialect {
    /// Parse a dialect name as used in `SET SQL_DIALECT = ...`.
    pub fn parse(s: &str) -> Option<Dialect> {
        Some(match s.to_ascii_uppercase().as_str() {
            "ANSI" | "STANDARD" => Dialect::Ansi,
            "ORACLE" => Dialect::Oracle,
            "NETEZZA" | "NPS" => Dialect::Netezza,
            "POSTGRES" | "POSTGRESQL" | "PG" => Dialect::PostgreSql,
            "DB2" => Dialect::Db2,
            _ => return None,
        })
    }

    /// All dialects, for iteration in tests and docs.
    pub const ALL: [Dialect; 5] = [
        Dialect::Ansi,
        Dialect::Oracle,
        Dialect::Netezza,
        Dialect::PostgreSql,
        Dialect::Db2,
    ];
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dialect::Ansi => "ANSI",
            Dialect::Oracle => "ORACLE",
            Dialect::Netezza => "NETEZZA",
            Dialect::PostgreSql => "POSTGRESQL",
            Dialect::Db2 => "DB2",
        };
        write!(f, "{s}")
    }
}

/// A set of dialects a feature is available in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DialectSet(u8);

impl DialectSet {
    /// Available in every dialect.
    pub const ALL: DialectSet = DialectSet(0b11111);

    /// Available nowhere (useful as a builder seed).
    pub const NONE: DialectSet = DialectSet(0);

    fn bit(d: Dialect) -> u8 {
        match d {
            Dialect::Ansi => 1,
            Dialect::Oracle => 2,
            Dialect::Netezza => 4,
            Dialect::PostgreSql => 8,
            Dialect::Db2 => 16,
        }
    }

    /// A set with exactly these dialects.
    pub fn of(dialects: &[Dialect]) -> DialectSet {
        DialectSet(dialects.iter().fold(0, |acc, &d| acc | Self::bit(d)))
    }

    /// Add a dialect.
    pub fn with(self, d: Dialect) -> DialectSet {
        DialectSet(self.0 | Self::bit(d))
    }

    /// Membership test.
    pub fn contains(self, d: Dialect) -> bool {
        self.0 & Self::bit(d) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(Dialect::parse("oracle"), Some(Dialect::Oracle));
        assert_eq!(Dialect::parse("NPS"), Some(Dialect::Netezza));
        assert_eq!(Dialect::parse("pg"), Some(Dialect::PostgreSql));
        assert_eq!(Dialect::parse("klingon"), None);
    }

    #[test]
    fn sets() {
        let s = DialectSet::of(&[Dialect::Oracle, Dialect::Db2]);
        assert!(s.contains(Dialect::Oracle));
        assert!(s.contains(Dialect::Db2));
        assert!(!s.contains(Dialect::Ansi));
        assert!(DialectSet::ALL.contains(Dialect::Netezza));
        assert!(!DialectSet::NONE.contains(Dialect::Ansi));
        assert!(DialectSet::NONE.with(Dialect::Ansi).contains(Dialect::Ansi));
    }
}

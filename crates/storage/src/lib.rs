//! Columnar storage for dashdb-local-rs.
//!
//! Implements the storage half of the BLU reproduction:
//!
//! * [`table`] — column-organized tables. Rows are appended into an open
//!   *stride* (1 K tuples, §II.B.4); sealed strides are encoded per column
//!   with the codecs from `dash-encoding`, and deletes are tracked in a
//!   per-stride visibility bitmap (column stores update via delete+append).
//! * [`synopsis`] — the data-skipping metadata: per-stride min/max per
//!   column, itself stored compressed. "The metadata is generally three
//!   orders of magnitude smaller than the user data."
//! * [`bufferpool`] — page cache policy simulation: LRU/MRU baselines, the
//!   randomized-page-weight algorithm of US patent 9,037,803 (§II.B.5),
//!   and a Belady-optimal replay oracle for the "within a few percentiles
//!   of optimal" claim.
//! * [`iodevice`] — simulated storage devices (HDD appliance disks vs the
//!   SSDs in Table 1's dashDB rows) so benchmarks can convert page misses
//!   into simulated time.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bufferpool;
pub mod iodevice;
pub mod stats;
pub mod synopsis;
pub mod table;
pub mod wal;

pub use bufferpool::{BufferPool, PageKey, Policy};
pub use iodevice::DeviceModel;
pub use synopsis::Synopsis;
pub use table::{ColumnTable, STRIDE};
pub use wal::{SyncPolicy, Wal, WalRecord};

//! The Database and Session objects — the embedded equivalent of
//! connecting to dashDB Local.

use crate::autoconf::{AutoConfig, HardwareSpec};
use crate::catalog::Catalog;
use crate::monitor::Monitor;
use crate::result::{QueryResult, StatementKind};
use crate::wlm::WorkloadManager;
use dash_common::dialect::Dialect;
use dash_common::ids::SessionId;
use dash_common::{DashError, DataType, Datum, Field, Result, Row, Schema, StatementContext};
use dash_exec::batch::Batch;
use dash_exec::functions::EvalContext;
use dash_exec::plan::PhysicalPlan;
use dash_exec::scan::ScanConfig;
use dash_sql::ast::{InsertSource, Statement};
use dash_sql::parser::{parse_statement, split_statements};
use dash_sql::planner::{lower_standalone_expr, lower_table_expr, plan_select, pushdown};
use dash_storage::bufferpool::{BufferPool, Policy};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One single-node dashDB Local engine instance.
///
/// In MPP deployments (`dash-mpp`), each shard runs one `Database`.
pub struct Database {
    catalog: Arc<Catalog>,
    config: AutoConfig,
    wlm: WorkloadManager,
    monitor: Monitor,
    next_session: AtomicU32,
}

impl Database {
    /// Create an engine auto-configured for the detected hardware.
    pub fn new() -> Arc<Database> {
        Database::with_hardware(HardwareSpec::detect())
    }

    /// Create an engine auto-configured for the given hardware (used by
    /// the deployment simulator and tests).
    pub fn with_hardware(hw: HardwareSpec) -> Arc<Database> {
        let config = AutoConfig::derive(&hw);
        // Simulation pools are capped so tests stay fast; the page budget
        // ratio is preserved.
        Database::with_pool_pages(hw, (config.bufferpool_pages as usize).min(1 << 20))
    }

    /// Create an engine with an explicit buffer-pool page budget — used by
    /// benchmarks that model the paper's data ≫ RAM regime by shrinking
    /// the pool below the data size.
    pub fn with_pool_pages(hw: HardwareSpec, pages: usize) -> Arc<Database> {
        let config = AutoConfig::derive(&hw);
        let pool = Arc::new(Mutex::new(BufferPool::new(
            pages.max(1),
            Policy::RandomizedWeight,
        )));
        let catalog = Arc::new(Catalog::new(Some(pool)));
        catalog.set_parallelism(config.effective_parallelism());
        catalog.set_sort_run_rows(config.effective_sort_run_rows());
        Arc::new(Database {
            catalog,
            config,
            wlm: WorkloadManager::new(config.wlm_concurrency),
            monitor: Monitor::new(),
            next_session: AtomicU32::new(0),
        })
    }

    /// An engine without buffer-pool tracking (micro-benchmarks that want
    /// pure CPU measurements).
    pub fn untracked() -> Arc<Database> {
        let config = AutoConfig::derive(&HardwareSpec::detect());
        let catalog = Arc::new(Catalog::new(None));
        catalog.set_parallelism(config.effective_parallelism());
        catalog.set_sort_run_rows(config.effective_sort_run_rows());
        Arc::new(Database {
            catalog,
            config,
            wlm: WorkloadManager::new(config.wlm_concurrency),
            monitor: Monitor::new(),
            next_session: AtomicU32::new(0),
        })
    }

    /// Route this engine's buffer-pool page reads through `reg`'s
    /// failpoints (no-op for untracked engines). Used by the MPP layer so
    /// one cluster-wide registry reaches every shard's storage.
    pub fn set_fault_registry(&self, reg: dash_common::faults::FaultRegistry) {
        if let Some(pool) = &self.catalog.pool {
            pool.lock().set_fault_registry(reg);
        }
    }

    /// Open a session (default ANSI dialect). Statement limits default
    /// from the environment: `DASH_STATEMENT_TIMEOUT_MS` arms a deadline,
    /// `DASH_MEM_BUDGET_BYTES` a memory budget; unset means unlimited.
    pub fn connect(self: &Arc<Self>) -> Session {
        Session {
            db: self.clone(),
            id: SessionId(self.next_session.fetch_add(1, Ordering::Relaxed)),
            dialect: Dialect::Ansi,
            statement_timeout: crate::autoconf::default_statement_timeout(),
            mem_budget: crate::autoconf::default_mem_budget(),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The derived configuration.
    pub fn config(&self) -> &AutoConfig {
        &self.config
    }

    /// The workload manager.
    pub fn wlm(&self) -> &WorkloadManager {
        &self.wlm
    }

    /// Monitoring counters.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }
}

/// A user session: holds the SQL dialect and owns temporary tables.
pub struct Session {
    db: Arc<Database>,
    id: SessionId,
    dialect: Dialect,
    /// Per-statement deadline applied to queries (`None` = no deadline).
    statement_timeout: Option<Duration>,
    /// Per-statement memory budget in bytes (`None` = unlimited).
    mem_budget: Option<u64>,
}

impl Session {
    /// The session id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The active SQL dialect.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Switch dialect (same as `SET SQL_DIALECT = ...`).
    pub fn set_dialect(&mut self, d: Dialect) {
        self.dialect = d;
    }

    /// Arm (or clear) a per-statement deadline for this session's queries.
    pub fn set_statement_timeout(&mut self, timeout: Option<Duration>) {
        self.statement_timeout = timeout;
    }

    /// Arm (or clear) a per-statement memory budget for this session's
    /// queries.
    pub fn set_mem_budget(&mut self, bytes: Option<u64>) {
        self.mem_budget = bytes;
    }

    /// The owning database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    fn provider(&self) -> SessionCatalog<'_> {
        SessionCatalog {
            catalog: self.db.catalog.as_ref(),
            session: self.id,
        }
    }

    fn eval_context(&self) -> EvalContext {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as i64)
            .unwrap_or(0);
        EvalContext {
            now_micros: now,
            sequences: Some(self.db.catalog.clone()),
            statement: StatementContext::unbounded(),
        }
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let start = Instant::now();
        let stmt = parse_statement(sql, self.dialect)?;
        let kind = kind_name(&stmt);
        let result = self.execute_statement(stmt);
        self.db
            .monitor
            .record(kind, start.elapsed(), result.is_ok());
        result
    }

    /// Execute a `;`-separated script, stopping at the first error.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryResult>> {
        let mut out = Vec::new();
        for stmt in split_statements(sql) {
            out.push(self.execute(&stmt)?);
        }
        Ok(out)
    }

    /// Execute a query and return its rows (convenience).
    pub fn query(&mut self, sql: &str) -> Result<Vec<Row>> {
        Ok(self.execute(sql)?.rows)
    }

    /// Close the session, dropping its temporary tables.
    pub fn close(self) {
        self.db.catalog.drop_session_objects(self.id);
    }

    fn execute_statement(&mut self, stmt: Statement) -> Result<QueryResult> {
        match stmt {
            Statement::Select(select) => {
                let stmt_ctx =
                    StatementContext::with_limits(self.statement_timeout, self.mem_budget);
                // WLM queue wait counts against the statement's deadline: a
                // statement that cannot be admitted before it expires dies
                // in the queue with a classified error. The timed-out path
                // never occupies a slot, so there is nothing to leak; the
                // admitted path holds an RAII ticket released on every exit.
                let _ticket = match stmt_ctx.remaining() {
                    Some(remaining) => match self.db.wlm.admit_timeout(remaining) {
                        Some(ticket) => ticket,
                        None => {
                            stmt_ctx.cancel();
                            self.db.monitor.record_deadline_kill();
                            self.db.monitor.record_statement_cancelled();
                            return Err(DashError::Cancelled);
                        }
                    },
                    None => self.db.wlm.admit(),
                };
                let mut ctx = self.eval_context();
                ctx.statement = stmt_ctx.clone();
                let plan =
                    plan_select(&select, &self.provider(), self.dialect, &ctx)?;
                let result = dash_exec::plan::execute(&plan, &ctx);
                // Fold the statement's lifecycle counters into the monitor
                // on success and failure alike.
                let mon = &self.db.monitor;
                if stmt_ctx.budget_rejections() > 0 {
                    mon.record_budget_rejections(stmt_ctx.budget_rejections());
                }
                mon.note_cancel_latency(stmt_ctx.cancel_latency_max_morsels());
                let (batch, mut stats) = match result {
                    Ok(ok) => ok,
                    Err(e) => {
                        if stmt_ctx.is_cancelled() {
                            mon.record_statement_cancelled();
                            if stmt_ctx
                                .deadline()
                                .is_some_and(|dl| Instant::now() >= dl)
                            {
                                mon.record_deadline_kill();
                            }
                        }
                        return Err(e);
                    }
                };
                stats.budget_rejections = stmt_ctx.budget_rejections();
                stats.cancel_latency_max_morsels = stats
                    .cancel_latency_max_morsels
                    .max(stmt_ctx.cancel_latency_max_morsels());
                Ok(QueryResult {
                    kind: StatementKind::Query,
                    schema: batch.schema().clone(),
                    rows: batch.to_rows(),
                    affected: 0,
                    stats,
                })
            }
            Statement::Explain(inner) => self.explain(*inner),
            Statement::Values(rows) => self.standalone_values(rows),
            Statement::Insert {
                table,
                columns,
                source,
            } => self.insert(&table, &columns, source),
            Statement::Update {
                table,
                assignments,
                selection,
            } => self.update(&table, &assignments, selection.as_ref()),
            Statement::Delete { table, selection } => self.delete(&table, selection.as_ref()),
            Statement::CreateTable {
                name,
                columns,
                temporary,
                if_not_exists,
                as_select,
            } => {
                if if_not_exists && self.db.catalog.has_table(&name) {
                    return Ok(QueryResult::ddl());
                }
                let owner = if temporary { Some(self.id) } else { None };
                match as_select {
                    Some(select) => {
                        let ctx = self.eval_context();
                        let plan = plan_select(
                            &select,
                            &self.provider(),
                            self.dialect,
                            &ctx,
                        )?;
                        let (batch, _) = dash_exec::plan::execute(&plan, &ctx)?;
                        let handle =
                            self.db
                                .catalog
                                .create_table(&name, batch.schema().clone(), owner)?;
                        handle.write().load_rows(batch.to_rows())?;
                        Ok(QueryResult::ddl())
                    }
                    None => {
                        let mut fields = Vec::with_capacity(columns.len());
                        for c in &columns {
                            let dt = DataType::from_sql_name(&c.type_name, &c.type_args)
                                .ok_or_else(|| {
                                    DashError::analysis(format!(
                                        "unknown type {} for column {}",
                                        c.type_name, c.name
                                    ))
                                })?;
                            fields.push(Field {
                                name: c.name.clone(),
                                data_type: dt,
                                nullable: !c.not_null,
                            });
                        }
                        self.db
                            .catalog
                            .create_table(&name, Schema::new(fields)?, owner)?;
                        Ok(QueryResult::ddl())
                    }
                }
            }
            Statement::DropTable { name, if_exists } => {
                self.db.catalog.drop_table_for(&name, if_exists, Some(self.id))?;
                Ok(QueryResult::ddl())
            }
            Statement::Truncate { name } => {
                let handle = self.db.catalog.table_handle_for(&name, Some(self.id))?;
                let mut t = handle.table.write();
                let schema = t.schema().clone();
                let tname = t.name().to_string();
                *t = dash_storage::table::ColumnTable::new(tname, schema);
                Ok(QueryResult::ddl())
            }
            Statement::CreateView { name, text, .. } => {
                // Views remember the dialect they were created under
                // (§II.C.2): later sessions parse them with it.
                self.db.catalog.create_view(&name, text, self.dialect)?;
                Ok(QueryResult::ddl())
            }
            Statement::DropView { name, if_exists } => {
                self.db.catalog.drop_view(&name, if_exists)?;
                Ok(QueryResult::ddl())
            }
            Statement::CreateSequence {
                name,
                start,
                increment,
            } => {
                self.db.catalog.create_sequence(&name, start, increment)?;
                Ok(QueryResult::ddl())
            }
            Statement::DropSequence { name } => {
                self.db.catalog.drop_sequence(&name)?;
                Ok(QueryResult::ddl())
            }
            Statement::CreateAlias { name, target } => {
                self.db.catalog.create_alias(&name, &target)?;
                Ok(QueryResult::ddl())
            }
            Statement::SetDialect(d) => {
                self.dialect = d;
                Ok(QueryResult::ddl())
            }
            Statement::Block(stmts) => {
                // Compound SQL: run sequentially, return the last statement's
                // result (DB2 inlined-compound semantics; no atomicity at
                // reproduction scope).
                let mut last = QueryResult::ddl();
                for stmt in stmts {
                    last = self.execute_statement(stmt)?;
                }
                Ok(last)
            }
        }
    }

    fn explain(&mut self, stmt: Statement) -> Result<QueryResult> {
        let text = match stmt {
            Statement::Select(select) => {
                let ctx = self.eval_context();
                let plan =
                    plan_select(&select, &self.provider(), self.dialect, &ctx)?;
                plan.explain()
            }
            other => format!("{} statement\n", kind_name(&other)),
        };
        let schema = Schema::new_unchecked(vec![Field::new("PLAN", DataType::Utf8)]);
        let rows: Vec<Row> = text
            .lines()
            .map(|l| Row::new(vec![Datum::str(l)]))
            .collect();
        Ok(QueryResult {
            kind: StatementKind::Query,
            schema,
            rows,
            affected: 0,
            stats: Default::default(),
        })
    }

    fn standalone_values(&mut self, rows: Vec<Vec<dash_sql::ast::AstExpr>>) -> Result<QueryResult> {
        let ctx = self.eval_context();
        let mut out_rows: Vec<Row> = Vec::with_capacity(rows.len());
        for row in &rows {
            let mut vals = Vec::with_capacity(row.len());
            for e in row {
                let lowered =
                    lower_standalone_expr(e, &self.provider(), self.dialect, &ctx)?;
                vals.push(eval_standalone(&lowered, &ctx)?);
            }
            out_rows.push(Row::new(vals));
        }
        let width = out_rows.first().map_or(0, |r| r.len());
        if out_rows.iter().any(|r| r.len() != width) {
            return Err(DashError::analysis("VALUES rows have unequal arity"));
        }
        let fields: Vec<Field> = (0..width)
            .map(|i| {
                let dt = out_rows
                    .iter()
                    .find_map(|r| r.get(i).data_type())
                    .unwrap_or(DataType::Utf8);
                Field::new(format!("COL{}", i + 1), dt)
            })
            .collect();
        Ok(QueryResult {
            kind: StatementKind::Query,
            schema: Schema::new_unchecked(fields),
            rows: out_rows,
            affected: 0,
            stats: Default::default(),
        })
    }

    fn insert(
        &mut self,
        table: &str,
        columns: &[String],
        source: InsertSource,
    ) -> Result<QueryResult> {
        let handle = self.db.catalog.table_handle_for(table, Some(self.id))?;
        let schema = handle.table.read().schema().clone();
        // Map the written columns to table ordinals.
        let targets: Vec<usize> = if columns.is_empty() {
            (0..schema.len()).collect()
        } else {
            let mut v = Vec::with_capacity(columns.len());
            for c in columns {
                v.push(schema.resolve(c)?);
            }
            v
        };
        let ctx = self.eval_context();
        let source_rows: Vec<Row> = match source {
            InsertSource::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in &rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        let lowered = lower_standalone_expr(
                            e,
                            &self.provider(),
                            self.dialect,
                            &ctx,
                        )?;
                        vals.push(eval_standalone(&lowered, &ctx)?);
                    }
                    out.push(Row::new(vals));
                }
                out
            }
            InsertSource::Select(select) => {
                let plan =
                    plan_select(&select, &self.provider(), self.dialect, &ctx)?;
                let (batch, _) = dash_exec::plan::execute(&plan, &ctx)?;
                batch.to_rows()
            }
        };
        let mut count = 0u64;
        let mut t = handle.table.write();
        for src in source_rows {
            if src.len() != targets.len() {
                return Err(DashError::analysis(format!(
                    "INSERT provides {} values for {} columns",
                    src.len(),
                    targets.len()
                )));
            }
            let mut full = vec![Datum::Null; schema.len()];
            for (v, &ti) in src.0.into_iter().zip(&targets) {
                full[ti] = v;
            }
            t.insert(Row::new(full))?;
            count += 1;
        }
        Ok(QueryResult::dml(StatementKind::Insert, count))
    }

    /// Scan matching rows of a table, returning (full row, tsn) pairs.
    fn matching_rows(
        &mut self,
        table: &str,
        selection: Option<&dash_sql::ast::AstExpr>,
        ctx: &EvalContext,
    ) -> Result<(Vec<Row>, Vec<u64>)> {
        let handle = self.db.catalog.table_handle_for(table, Some(self.id))?;
        let schema = handle.table.read().schema().clone();
        let mut config = ScanConfig::full(handle.id, (0..schema.len()).collect());
        config.include_tsn = true;
        config.pool = self.db.catalog.pool.clone();
        let mut plan = PhysicalPlan::ColumnScan {
            table: handle.table.clone(),
            config,
        };
        if let Some(sel) = selection {
            let predicate =
                lower_table_expr(sel, &schema, &self.provider(), self.dialect, ctx)?;
            plan = PhysicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }
        let plan = pushdown(plan);
        let (batch, _) = dash_exec::plan::execute(&plan, ctx)?;
        let ncols = schema.len();
        let mut rows = Vec::with_capacity(batch.len());
        let mut tsns = Vec::with_capacity(batch.len());
        for mut r in batch.to_rows() {
            let tsn = r.0.remove(ncols);
            tsns.push(tsn.as_int().expect("tsn is an integer") as u64);
            rows.push(r);
        }
        Ok((rows, tsns))
    }

    fn update(
        &mut self,
        table: &str,
        assignments: &[(String, dash_sql::ast::AstExpr)],
        selection: Option<&dash_sql::ast::AstExpr>,
    ) -> Result<QueryResult> {
        let ctx = self.eval_context();
        let handle = self.db.catalog.table_handle_for(table, Some(self.id))?;
        let schema = handle.table.read().schema().clone();
        let mut lowered = Vec::with_capacity(assignments.len());
        for (col, e) in assignments {
            let ordinal = schema.resolve(col)?;
            let expr =
                lower_table_expr(e, &schema, &self.provider(), self.dialect, &ctx)?;
            lowered.push((ordinal, expr));
        }
        let (rows, tsns) = self.matching_rows(table, selection, &ctx)?;
        let batch = Batch::from_rows(schema.clone(), &rows)?;
        let mut t = handle.table.write();
        let mut applied = 0u64;
        for (i, &tsn) in tsns.iter().enumerate() {
            // A concurrent statement may have deleted/updated the row
            // between our scan and this write; skip it (last-writer-wins
            // row visibility, no MVCC at reproduction scope).
            if t.is_deleted(dash_common::ids::Tsn(tsn)) {
                continue;
            }
            let mut changes = Vec::with_capacity(lowered.len());
            for (ordinal, expr) in &lowered {
                changes.push((*ordinal, expr.eval(&batch, i, &ctx)?));
            }
            t.update(dash_common::ids::Tsn(tsn), &changes)?;
            applied += 1;
        }
        Ok(QueryResult::dml(StatementKind::Update, applied))
    }

    fn delete(
        &mut self,
        table: &str,
        selection: Option<&dash_sql::ast::AstExpr>,
    ) -> Result<QueryResult> {
        let ctx = self.eval_context();
        let handle = self.db.catalog.table_handle_for(table, Some(self.id))?;
        let (_, tsns) = self.matching_rows(table, selection, &ctx)?;
        let mut t = handle.table.write();
        let mut count = 0u64;
        for &tsn in &tsns {
            if t.delete(dash_common::ids::Tsn(tsn)) {
                count += 1;
            }
        }
        Ok(QueryResult::dml(StatementKind::Delete, count))
    }
}

/// A session-scoped view of the catalog: the session's temporary tables
/// resolve ahead of permanent ones; everything else delegates.
struct SessionCatalog<'a> {
    catalog: &'a Catalog,
    session: SessionId,
}

impl dash_sql::planner::SchemaProvider for SessionCatalog<'_> {
    fn table(&self, name: &str) -> Result<dash_sql::planner::TableHandle> {
        self.catalog.table_handle_for(name, Some(self.session))
    }

    fn view(&self, name: &str) -> Option<(String, Dialect)> {
        dash_sql::planner::SchemaProvider::view(self.catalog, name)
    }

    fn pool(
        &self,
    ) -> Option<Arc<Mutex<BufferPool>>> {
        dash_sql::planner::SchemaProvider::pool(self.catalog)
    }

    fn udx(
        &self,
        name: &str,
    ) -> Option<Arc<dash_exec::functions::ScalarFunction>> {
        dash_sql::planner::SchemaProvider::udx(self.catalog, name)
    }

    fn parallelism(&self) -> usize {
        dash_sql::planner::SchemaProvider::parallelism(self.catalog)
    }

    fn sort_run_rows(&self) -> usize {
        dash_sql::planner::SchemaProvider::sort_run_rows(self.catalog)
    }
}

fn eval_standalone(expr: &dash_exec::expr::Expr, ctx: &EvalContext) -> Result<Datum> {
    // One empty row gives constant expressions something to evaluate over.
    let batch = Batch::from_rows(Schema::empty(), &[Row::new(vec![])])?;
    expr.eval(&batch, 0, ctx)
}

fn kind_name(stmt: &Statement) -> &'static str {
    match stmt {
        Statement::Select(_) => "SELECT",
        Statement::Insert { .. } => "INSERT",
        Statement::Update { .. } => "UPDATE",
        Statement::Delete { .. } => "DELETE",
        Statement::CreateTable { .. }
        | Statement::CreateView { .. }
        | Statement::CreateSequence { .. }
        | Statement::CreateAlias { .. } => "CREATE",
        Statement::DropTable { .. }
        | Statement::DropView { .. }
        | Statement::DropSequence { .. } => "DROP",
        Statement::Truncate { .. } => "TRUNCATE",
        Statement::Explain(_) => "EXPLAIN",
        Statement::SetDialect(_) => "SET",
        Statement::Values(_) => "VALUES",
        Statement::Block(_) => "BLOCK",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Database::with_hardware(HardwareSpec::laptop()).connect()
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut s = session();
        s.execute("CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR(20), amt DOUBLE)")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1, 'a', 1.5), (2, 'b', 2.5), (3, NULL, 3.5)")
            .unwrap();
        let rows = s.query("SELECT id, name FROM t WHERE amt > 2.0 ORDER BY id").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0), &Datum::Int(2));
        assert!(rows[1].get(1).is_null());
    }

    #[test]
    fn update_and_delete() {
        let mut s = session();
        s.execute("CREATE TABLE t (id INT, v INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
            .unwrap();
        let r = s.execute("UPDATE t SET v = v + 1 WHERE id >= 2").unwrap();
        assert_eq!(r.affected, 2);
        let rows = s.query("SELECT v FROM t ORDER BY id").unwrap();
        assert_eq!(
            rows.iter().map(|r| r.get(0).as_int().unwrap()).collect::<Vec<_>>(),
            vec![10, 21, 31]
        );
        let r = s.execute("DELETE FROM t WHERE v = 21").unwrap();
        assert_eq!(r.affected, 1);
        assert_eq!(s.query("SELECT COUNT(*) FROM t").unwrap()[0].get(0), &Datum::Int(2));
    }

    #[test]
    fn group_by_join_pipeline() {
        let mut s = session();
        s.execute("CREATE TABLE f (k INT, amt DOUBLE)").unwrap();
        s.execute("CREATE TABLE d (k INT, label VARCHAR(10))").unwrap();
        s.execute("INSERT INTO d VALUES (1, 'one'), (2, 'two')").unwrap();
        s.execute("INSERT INTO f VALUES (1, 5.0), (1, 7.0), (2, 1.0)").unwrap();
        let rows = s
            .query(
                "SELECT d.label, SUM(f.amt), COUNT(*) FROM f JOIN d ON f.k = d.k \
                 GROUP BY d.label ORDER BY d.label",
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0).as_str(), Some("one"));
        assert_eq!(rows[0].get(1), &Datum::Float(12.0));
        assert_eq!(rows[1].get(2), &Datum::Int(1));
    }

    #[test]
    fn dialect_stickiness_of_views() {
        let mut s = session();
        s.set_dialect(Dialect::Oracle);
        s.execute("CREATE VIEW v AS SELECT 1 + 1 total FROM DUAL").unwrap();
        // An ANSI session can still use the Oracle view.
        let mut s2 = s.database().clone().connect();
        let rows = s2.query("SELECT total FROM v").unwrap();
        assert_eq!(rows[0].get(0), &Datum::Int(2));
    }

    #[test]
    fn oracle_rownum_and_sequences() {
        let mut s = session();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        s.execute("INSERT INTO t VALUES (5), (6), (7), (8)").unwrap();
        s.execute("CREATE SEQUENCE sq START WITH 100").unwrap();
        s.set_dialect(Dialect::Oracle);
        let rows = s.query("SELECT x FROM t WHERE ROWNUM <= 2").unwrap();
        assert_eq!(rows.len(), 2);
        let rows = s.query("SELECT sq.NEXTVAL FROM DUAL").unwrap();
        assert_eq!(rows[0].get(0), &Datum::Int(100));
        let rows = s.query("SELECT sq.CURRVAL FROM DUAL").unwrap();
        assert_eq!(rows[0].get(0), &Datum::Int(100));
    }

    #[test]
    fn db2_values_and_alias() {
        let mut s = session();
        s.set_dialect(Dialect::Db2);
        let r = s.execute("VALUES (1, 'x'), (2, 'y')").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.schema.field(0).name, "COL1");
        s.execute("CREATE TABLE base (a INT)").unwrap();
        s.execute("CREATE ALIAS b FOR base").unwrap();
        s.execute("INSERT INTO b VALUES (9)").unwrap();
        assert_eq!(s.query("SELECT a FROM b").unwrap().len(), 1);
    }

    #[test]
    fn temp_tables_per_session() {
        let db = Database::with_hardware(HardwareSpec::laptop());
        let mut s1 = db.connect();
        s1.set_dialect(Dialect::Netezza);
        s1.execute("CREATE TEMP TABLE scratch (x INT)").unwrap();
        s1.execute("INSERT INTO scratch VALUES (1)").unwrap();
        // Visible within the session.
        assert_eq!(s1.query("SELECT * FROM scratch").unwrap().len(), 1);
        s1.close();
        let mut s2 = db.connect();
        assert!(s2.query("SELECT * FROM scratch").is_err());
    }

    #[test]
    fn ctas_and_truncate() {
        let mut s = session();
        s.execute("CREATE TABLE src (a INT, b VARCHAR(5))").unwrap();
        s.execute("INSERT INTO src VALUES (1, 'x'), (2, 'y')").unwrap();
        s.execute("CREATE TABLE copy AS SELECT a, UPPER(b) AS b FROM src")
            .unwrap();
        let rows = s.query("SELECT b FROM copy ORDER BY a").unwrap();
        assert_eq!(rows[0].get(0).as_str(), Some("X"));
        s.execute("TRUNCATE TABLE copy").unwrap();
        assert_eq!(s.query("SELECT * FROM copy").unwrap().len(), 0);
    }

    #[test]
    fn explain_output() {
        let mut s = session();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        let r = s.execute("EXPLAIN SELECT x FROM t WHERE x > 1").unwrap();
        let text: String = r.rows.iter().map(|r| r.get(0).render() + "\n").collect();
        assert!(text.contains("ColumnScan T"), "{text}");
        assert!(text.contains("preds=1"), "pushdown should apply: {text}");
    }

    #[test]
    fn insert_select_and_column_lists() {
        let mut s = session();
        s.execute("CREATE TABLE a (x INT, y VARCHAR(5))").unwrap();
        s.execute("CREATE TABLE b (y VARCHAR(5), x INT)").unwrap();
        s.execute("INSERT INTO a VALUES (1, 'p'), (2, 'q')").unwrap();
        s.execute("INSERT INTO b (x, y) SELECT x, y FROM a").unwrap();
        let rows = s.query("SELECT y FROM b ORDER BY x").unwrap();
        assert_eq!(rows[0].get(0).as_str(), Some("p"));
        // Unspecified columns become NULL.
        s.execute("INSERT INTO b (x) VALUES (3)").unwrap();
        let rows = s.query("SELECT y FROM b WHERE x = 3").unwrap();
        assert!(rows[0].get(0).is_null());
    }

    #[test]
    fn monitor_counts_statements() {
        let mut s = session();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        let _ = s.execute("SELECT * FROM missing_table");
        let m = s.database().monitor();
        assert_eq!(m.stats("CREATE").count, 1);
        assert_eq!(m.stats("INSERT").count, 1);
        assert_eq!(m.stats("SELECT").errors, 1);
    }

    #[test]
    fn connect_by_hierarchy() {
        let mut s = session();
        s.execute("CREATE TABLE org (emp VARCHAR(10), mgr VARCHAR(10))")
            .unwrap();
        s.execute(
            "INSERT INTO org VALUES ('ceo', NULL), ('vp1', 'ceo'), ('vp2', 'ceo'), \
             ('eng1', 'vp1'), ('eng2', 'vp1')",
        )
        .unwrap();
        s.set_dialect(Dialect::Oracle);
        let rows = s
            .query(
                "SELECT emp, LEVEL FROM org START WITH mgr IS NULL \
                 CONNECT BY PRIOR emp = mgr ORDER BY LEVEL, emp",
            )
            .unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].get(0).as_str(), Some("ceo"));
        assert_eq!(rows[0].get(1), &Datum::Int(1));
        assert_eq!(rows[4].get(1), &Datum::Int(3));
    }

    #[test]
    fn netezza_dialect_features() {
        let mut s = session();
        s.execute("CREATE TABLE t (a INT, b VARCHAR(10))").unwrap();
        s.execute("INSERT INTO t VALUES (1, 'aa'), (2, NULL), (3, 'cc')")
            .unwrap();
        s.set_dialect(Dialect::Netezza);
        let rows = s
            .query("SELECT a, b FROM t WHERE b NOTNULL ORDER BY a LIMIT 1 OFFSET 1")
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Datum::Int(3));
        let rows = s.query("SELECT a::FLOAT8 FROM t ORDER BY 1 LIMIT 1").unwrap();
        assert_eq!(rows[0].get(0), &Datum::Float(1.0));
    }

    #[test]
    fn decode_nvl_in_oracle_queries() {
        let mut s = session();
        s.execute("CREATE TABLE t (status INT, note VARCHAR(10))").unwrap();
        s.execute("INSERT INTO t VALUES (1, NULL), (2, 'hi')").unwrap();
        s.set_dialect(Dialect::Oracle);
        let rows = s
            .query(
                "SELECT DECODE(status, 1, 'on', 2, 'off', 'other'), NVL(note, '-') \
                 FROM t ORDER BY status",
            )
            .unwrap();
        assert_eq!(rows[0].get(0).as_str(), Some("on"));
        assert_eq!(rows[0].get(1).as_str(), Some("-"));
        assert_eq!(rows[1].get(0).as_str(), Some("off"));
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let mut s = session();
        s.execute("CREATE TABLE l (a INT)").unwrap();
        s.execute("CREATE TABLE r (b INT)").unwrap();
        s.execute("INSERT INTO l VALUES (1)").unwrap();
        s.execute("INSERT INTO r VALUES (2)").unwrap();
        let rows = s.query("SELECT * FROM l CROSS JOIN r").unwrap();
        assert_eq!(rows[0].len(), 2);
        let rows = s.query("SELECT r.* FROM l CROSS JOIN r").unwrap();
        assert_eq!(rows[0].len(), 1);
        assert_eq!(rows[0].get(0), &Datum::Int(2));
    }
}

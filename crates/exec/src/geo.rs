//! Geospatial types and functions (§II.C.5).
//!
//! "dashDB provides complete coverage of location data types such as
//! points, line strings and polygons along with the full set of geospatial
//! computation and analytic functions as defined by the SQL/MM standard."
//!
//! Geometries are carried as WKT (well-known text) in VARCHAR columns —
//! the standard interchange form — and the `ST_*` function family parses,
//! constructs, measures and tests them. The subset implemented covers the
//! SQL/MM core: constructors (`ST_POINT`, `ST_LINESTRING`, `ST_POLYGON`
//! via WKT), accessors (`ST_X`, `ST_Y`, `ST_NUMPOINTS`,
//! `ST_GEOMETRYTYPE`), metrics (`ST_DISTANCE`, `ST_LENGTH`, `ST_AREA`,
//! `ST_PERIMETER`), and predicates (`ST_CONTAINS`, `ST_WITHIN`,
//! `ST_INTERSECTS` over bounding boxes plus exact point-in-polygon).

use dash_common::{DashError, Result};

/// A parsed geometry.
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    /// A single point.
    Point(f64, f64),
    /// An open polyline with ≥ 2 vertices.
    LineString(Vec<(f64, f64)>),
    /// A simple polygon ring (first ring only; closed implicitly).
    Polygon(Vec<(f64, f64)>),
}

impl Geometry {
    /// Parse WKT: `POINT(x y)`, `LINESTRING(x y, x y, ...)`,
    /// `POLYGON((x y, x y, ...))`. Case-insensitive, whitespace-tolerant.
    pub fn parse_wkt(s: &str) -> Result<Geometry> {
        let t = s.trim();
        let upper = t.to_ascii_uppercase();
        let coords_of = |body: &str| -> Result<Vec<(f64, f64)>> {
            body.split(',')
                .map(|pair| {
                    let mut it = pair.split_whitespace();
                    let x: f64 = it
                        .next()
                        .ok_or_else(|| DashError::exec(format!("bad WKT coordinate '{pair}'")))?
                        .parse()
                        .map_err(|_| DashError::exec(format!("bad WKT number in '{pair}'")))?;
                    let y: f64 = it
                        .next()
                        .ok_or_else(|| DashError::exec(format!("bad WKT coordinate '{pair}'")))?
                        .parse()
                        .map_err(|_| DashError::exec(format!("bad WKT number in '{pair}'")))?;
                    Ok((x, y))
                })
                .collect()
        };
        if let Some(rest) = upper.strip_prefix("POINT") {
            let body = unwrap_parens(rest.trim())?;
            let pts = coords_of(body)?;
            if pts.len() != 1 {
                return Err(DashError::exec("POINT takes exactly one coordinate"));
            }
            return Ok(Geometry::Point(pts[0].0, pts[0].1));
        }
        if let Some(rest) = upper.strip_prefix("LINESTRING") {
            let body = unwrap_parens(rest.trim())?;
            let pts = coords_of(body)?;
            if pts.len() < 2 {
                return Err(DashError::exec("LINESTRING needs at least two points"));
            }
            return Ok(Geometry::LineString(pts));
        }
        if let Some(rest) = upper.strip_prefix("POLYGON") {
            let outer = unwrap_parens(rest.trim())?;
            let ring = unwrap_parens(outer.trim())?;
            let mut pts = coords_of(ring)?;
            // Drop an explicit closing vertex.
            if pts.len() >= 2 && pts.first() == pts.last() {
                pts.pop();
            }
            if pts.len() < 3 {
                return Err(DashError::exec("POLYGON needs at least three points"));
            }
            return Ok(Geometry::Polygon(pts));
        }
        Err(DashError::exec(format!("unrecognized WKT '{t}'")))
    }

    /// Render back to canonical WKT.
    pub fn to_wkt(&self) -> String {
        fn fmt_pts(pts: &[(f64, f64)]) -> String {
            pts.iter()
                .map(|(x, y)| format!("{} {}", fmt_num(*x), fmt_num(*y)))
                .collect::<Vec<_>>()
                .join(", ")
        }
        fn fmt_num(v: f64) -> String {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.0}")
            } else {
                format!("{v}")
            }
        }
        match self {
            Geometry::Point(x, y) => format!("POINT({} {})", fmt_num(*x), fmt_num(*y)),
            Geometry::LineString(pts) => format!("LINESTRING({})", fmt_pts(pts)),
            Geometry::Polygon(pts) => {
                let mut closed = pts.clone();
                closed.push(pts[0]);
                format!("POLYGON(({}))", fmt_pts(&closed))
            }
        }
    }

    /// The SQL/MM geometry type name.
    pub fn type_name(&self) -> &'static str {
        match self {
            Geometry::Point(..) => "ST_POINT",
            Geometry::LineString(..) => "ST_LINESTRING",
            Geometry::Polygon(..) => "ST_POLYGON",
        }
    }

    /// Number of defining vertices.
    pub fn num_points(&self) -> usize {
        match self {
            Geometry::Point(..) => 1,
            Geometry::LineString(p) | Geometry::Polygon(p) => p.len(),
        }
    }

    /// Axis-aligned bounding box `(min_x, min_y, max_x, max_y)`.
    pub fn bbox(&self) -> (f64, f64, f64, f64) {
        let pts: Vec<(f64, f64)> = match self {
            Geometry::Point(x, y) => vec![(*x, *y)],
            Geometry::LineString(p) | Geometry::Polygon(p) => p.clone(),
        };
        let mut bb = (f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for (x, y) in pts {
            bb.0 = bb.0.min(x);
            bb.1 = bb.1.min(y);
            bb.2 = bb.2.max(x);
            bb.3 = bb.3.max(y);
        }
        bb
    }

    /// Polyline length (0 for points; perimeter for polygons lives in
    /// [`Geometry::perimeter`]).
    pub fn length(&self) -> f64 {
        match self {
            Geometry::Point(..) => 0.0,
            Geometry::LineString(p) => path_length(p, false),
            Geometry::Polygon(p) => path_length(p, true),
        }
    }

    /// Polygon perimeter (closed-ring length); 0 otherwise.
    pub fn perimeter(&self) -> f64 {
        match self {
            Geometry::Polygon(p) => path_length(p, true),
            _ => 0.0,
        }
    }

    /// Polygon area via the shoelace formula; 0 for points/lines.
    pub fn area(&self) -> f64 {
        match self {
            Geometry::Polygon(p) => {
                let n = p.len();
                let mut acc = 0.0;
                for i in 0..n {
                    let (x1, y1) = p[i];
                    let (x2, y2) = p[(i + 1) % n];
                    acc += x1 * y2 - x2 * y1;
                }
                acc.abs() / 2.0
            }
            _ => 0.0,
        }
    }

    /// Minimum distance between two geometries (point-point exact,
    /// point-line/line-line via segment distance, polygon treated as its
    /// boundary unless the point is inside, in which case 0).
    pub fn distance(&self, other: &Geometry) -> f64 {
        use Geometry::*;
        match (self, other) {
            (Point(x1, y1), Point(x2, y2)) => ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt(),
            (Point(x, y), LineString(p)) | (LineString(p), Point(x, y)) => {
                segments(p, false)
                    .map(|(a, b)| point_segment_distance((*x, *y), a, b))
                    .fold(f64::INFINITY, f64::min)
            }
            (Point(x, y), Polygon(p)) | (Polygon(p), Point(x, y)) => {
                if point_in_ring((*x, *y), p) {
                    0.0
                } else {
                    segments(p, true)
                        .map(|(a, b)| point_segment_distance((*x, *y), a, b))
                        .fold(f64::INFINITY, f64::min)
                }
            }
            (LineString(a), LineString(b)) => min_segset_distance(a, false, b, false),
            (LineString(l), Polygon(p)) | (Polygon(p), LineString(l)) => {
                if l.iter().any(|pt| point_in_ring(*pt, p)) {
                    0.0
                } else {
                    min_segset_distance(l, false, p, true)
                }
            }
            (Polygon(a), Polygon(b)) => {
                if a.iter().any(|pt| point_in_ring(*pt, b))
                    || b.iter().any(|pt| point_in_ring(*pt, a))
                {
                    0.0
                } else {
                    min_segset_distance(a, true, b, true)
                }
            }
        }
    }

    /// SQL/MM `ST_Contains`: does `self` contain `other`?
    /// Exact for polygon⊇point; polygon⊇line/polygon tests all vertices
    /// (sufficient for convex containers; documented approximation).
    pub fn contains(&self, other: &Geometry) -> bool {
        match self {
            Geometry::Polygon(ring) => match other {
                Geometry::Point(x, y) => point_in_ring((*x, *y), ring),
                Geometry::LineString(pts) | Geometry::Polygon(pts) => {
                    pts.iter().all(|p| point_in_ring(*p, ring))
                }
            },
            _ => false,
        }
    }

    /// Bounding boxes overlap (the standard cheap `ST_Intersects` filter,
    /// refined with exact tests for point operands).
    pub fn intersects(&self, other: &Geometry) -> bool {
        match (self, other) {
            (Geometry::Point(x, y), Geometry::Polygon(r))
            | (Geometry::Polygon(r), Geometry::Point(x, y)) => point_in_ring((*x, *y), r),
            (Geometry::Point(x1, y1), Geometry::Point(x2, y2)) => x1 == x2 && y1 == y2,
            _ => {
                let a = self.bbox();
                let b = other.bbox();
                a.0 <= b.2 && b.0 <= a.2 && a.1 <= b.3 && b.1 <= a.3
            }
        }
    }

    /// Centroid (vertex average for lines/polygons — the SQL/MM-adjacent
    /// simple form).
    pub fn centroid(&self) -> (f64, f64) {
        match self {
            Geometry::Point(x, y) => (*x, *y),
            Geometry::LineString(p) | Geometry::Polygon(p) => {
                let n = p.len() as f64;
                (
                    p.iter().map(|(x, _)| x).sum::<f64>() / n,
                    p.iter().map(|(_, y)| y).sum::<f64>() / n,
                )
            }
        }
    }
}

fn unwrap_parens(s: &str) -> Result<&str> {
    let s = s.trim();
    if s.starts_with('(') && s.ends_with(')') {
        Ok(&s[1..s.len() - 1])
    } else {
        Err(DashError::exec(format!("expected parenthesized WKT body, got '{s}'")))
    }
}

fn path_length(pts: &[(f64, f64)], closed: bool) -> f64 {
    segments(pts, closed)
        .map(|((x1, y1), (x2, y2))| ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt())
        .sum()
}

fn segments(
    pts: &[(f64, f64)],
    closed: bool,
) -> impl Iterator<Item = ((f64, f64), (f64, f64))> + '_ {
    let n = pts.len();
    let count = if closed { n } else { n.saturating_sub(1) };
    (0..count).map(move |i| (pts[i], pts[(i + 1) % n]))
}

fn min_segset_distance(a: &[(f64, f64)], ac: bool, b: &[(f64, f64)], bc: bool) -> f64 {
    let mut best = f64::INFINITY;
    for (a1, a2) in segments(a, ac) {
        for (b1, b2) in segments(b, bc) {
            best = best.min(segment_segment_distance(a1, a2, b1, b2));
        }
    }
    best
}

fn point_segment_distance(p: (f64, f64), a: (f64, f64), b: (f64, f64)) -> f64 {
    let (px, py) = p;
    let (ax, ay) = a;
    let (bx, by) = b;
    let (dx, dy) = (bx - ax, by - ay);
    let len2 = dx * dx + dy * dy;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

fn segment_segment_distance(a1: (f64, f64), a2: (f64, f64), b1: (f64, f64), b2: (f64, f64)) -> f64 {
    if segments_intersect(a1, a2, b1, b2) {
        return 0.0;
    }
    point_segment_distance(a1, b1, b2)
        .min(point_segment_distance(a2, b1, b2))
        .min(point_segment_distance(b1, a1, a2))
        .min(point_segment_distance(b2, a1, a2))
}

fn segments_intersect(p1: (f64, f64), p2: (f64, f64), p3: (f64, f64), p4: (f64, f64)) -> bool {
    fn orient(a: (f64, f64), b: (f64, f64), c: (f64, f64)) -> f64 {
        (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0)
    }
    let d1 = orient(p3, p4, p1);
    let d2 = orient(p3, p4, p2);
    let d3 = orient(p1, p2, p3);
    let d4 = orient(p1, p2, p4);
    ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
}

/// Ray-casting point-in-polygon (boundary counts as inside).
fn point_in_ring(p: (f64, f64), ring: &[(f64, f64)]) -> bool {
    let (x, y) = p;
    let n = ring.len();
    // Boundary check first.
    for (a, b) in segments(ring, true) {
        if point_segment_distance(p, a, b) < 1e-12 {
            return true;
        }
    }
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let (xi, yi) = ring[i];
        let (xj, yj) = ring[j];
        if ((yi > y) != (yj > y)) && (x < (xj - xi) * (y - yi) / (yj - yi) + xi) {
            inside = !inside;
        }
        j = i;
    }
    inside
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(s: &str) -> Geometry {
        Geometry::parse_wkt(s).unwrap()
    }

    #[test]
    fn wkt_roundtrip() {
        for wkt in [
            "POINT(1 2)",
            "LINESTRING(0 0, 3 4, 6 0)",
            "POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))",
        ] {
            let g = geom(wkt);
            assert_eq!(Geometry::parse_wkt(&g.to_wkt()).unwrap(), g, "{wkt}");
        }
        assert!(Geometry::parse_wkt("CIRCLE(0 0, 5)").is_err());
        assert!(Geometry::parse_wkt("POINT(1)").is_err());
        assert!(Geometry::parse_wkt("LINESTRING(0 0)").is_err());
    }

    #[test]
    fn measures() {
        let line = geom("LINESTRING(0 0, 3 4)");
        assert!((line.length() - 5.0).abs() < 1e-12);
        let square = geom("POLYGON((0 0, 10 0, 10 10, 0 10))");
        assert!((square.area() - 100.0).abs() < 1e-12);
        assert!((square.perimeter() - 40.0).abs() < 1e-12);
        assert_eq!(geom("POINT(5 5)").area(), 0.0);
    }

    #[test]
    fn distances() {
        let a = geom("POINT(0 0)");
        let b = geom("POINT(3 4)");
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        let line = geom("LINESTRING(0 10, 10 10)");
        assert!((a.distance(&line) - 10.0).abs() < 1e-12);
        let poly = geom("POLYGON((2 2, 8 2, 8 8, 2 8))");
        assert!((a.distance(&poly) - (8.0f64).sqrt()).abs() < 1e-9);
        // Point inside a polygon: distance 0.
        assert_eq!(geom("POINT(5 5)").distance(&poly), 0.0);
        // Crossing lines: distance 0.
        let l1 = geom("LINESTRING(0 0, 10 10)");
        let l2 = geom("LINESTRING(0 10, 10 0)");
        assert_eq!(l1.distance(&l2), 0.0);
    }

    #[test]
    fn containment() {
        let poly = geom("POLYGON((0 0, 10 0, 10 10, 0 10))");
        assert!(poly.contains(&geom("POINT(5 5)")));
        assert!(poly.contains(&geom("POINT(0 0)")), "boundary counts");
        assert!(!poly.contains(&geom("POINT(15 5)")));
        assert!(poly.contains(&geom("LINESTRING(1 1, 9 9)")));
        assert!(!poly.contains(&geom("LINESTRING(1 1, 19 9)")));
        assert!(!geom("POINT(1 1)").contains(&geom("POINT(1 1)")));
        // Concave polygon: the notch is outside.
        let concave = geom("POLYGON((0 0, 10 0, 10 10, 5 5, 0 10))");
        assert!(!concave.contains(&geom("POINT(5 8)")));
        assert!(concave.contains(&geom("POINT(5 3)")));
    }

    #[test]
    fn intersects_and_bbox() {
        let a = geom("POLYGON((0 0, 5 0, 5 5, 0 5))");
        let b = geom("POLYGON((4 4, 9 4, 9 9, 4 9))");
        let c = geom("POLYGON((6 6, 9 6, 9 9, 6 9))");
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.bbox(), (0.0, 0.0, 5.0, 5.0));
        assert!(a.intersects(&geom("POINT(1 1)")));
        assert!(!a.intersects(&geom("POINT(6 6)")));
    }

    #[test]
    fn centroid_and_accessors() {
        let sq = geom("POLYGON((0 0, 10 0, 10 10, 0 10))");
        assert_eq!(sq.centroid(), (5.0, 5.0));
        assert_eq!(sq.num_points(), 4);
        assert_eq!(sq.type_name(), "ST_POLYGON");
        assert_eq!(geom("POINT(3 4)").num_points(), 1);
    }
}

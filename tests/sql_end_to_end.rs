//! Cross-crate integration: the full SQL surface through the facade.

use dashdb_local::common::dialect::Dialect;
use dashdb_local::common::Datum;
use dashdb_local::core::{Database, HardwareSpec, Session};

fn session() -> Session {
    Database::with_hardware(HardwareSpec::laptop()).connect()
}

#[test]
fn full_lifecycle_script() {
    let mut s = session();
    s.execute_script(
        "CREATE TABLE dept (id INT PRIMARY KEY, name VARCHAR(20));
         CREATE TABLE emp (id INT, dept_id INT, salary DOUBLE, hired DATE);
         INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty');
         INSERT INTO emp VALUES
           (1, 1, 100.0, '2015-01-01'),
           (2, 1, 120.0, '2016-06-15'),
           (3, 2, 90.0, '2014-03-20'),
           (4, 2, 95.0, '2016-11-30'),
           (5, 1, 130.0, '2016-12-01');",
    )
    .unwrap();
    let rows = s
        .query(
            "SELECT d.name, COUNT(*), AVG(e.salary) FROM emp e JOIN dept d ON e.dept_id = d.id \
             WHERE e.hired >= DATE '2015-01-01' GROUP BY d.name ORDER BY d.name",
        )
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get(0).as_str(), Some("eng"));
    assert_eq!(rows[0].get(1), &Datum::Int(3));
    assert!((rows[0].get(2).as_float().unwrap() - 116.666).abs() < 0.01);
    assert_eq!(rows[1].get(1), &Datum::Int(1));
}

#[test]
fn left_join_and_having() {
    let mut s = session();
    s.execute_script(
        "CREATE TABLE a (k INT, v INT);
         CREATE TABLE b (k INT, w INT);
         INSERT INTO a VALUES (1, 10), (2, 20), (3, 30);
         INSERT INTO b VALUES (1, 100), (1, 101);",
    )
    .unwrap();
    let rows = s
        .query("SELECT a.k, b.w FROM a LEFT JOIN b ON a.k = b.k ORDER BY a.k, b.w")
        .unwrap();
    assert_eq!(rows.len(), 4);
    assert!(rows[2].get(1).is_null() && rows[3].get(1).is_null());
    let rows = s
        .query(
            "SELECT k, SUM(v) FROM a GROUP BY k HAVING SUM(v) > 15 ORDER BY 1",
        )
        .unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn subqueries_union_distinct() {
    let mut s = session();
    s.execute_script(
        "CREATE TABLE t (x INT, tag VARCHAR(5));
         INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'a'), (4, 'c');",
    )
    .unwrap();
    // IN subquery.
    let rows = s
        .query("SELECT x FROM t WHERE x IN (SELECT x FROM t WHERE tag = 'a') ORDER BY x")
        .unwrap();
    assert_eq!(rows.len(), 2);
    // Scalar subquery.
    let rows = s
        .query("SELECT x FROM t WHERE x = (SELECT MAX(x) FROM t)")
        .unwrap();
    assert_eq!(rows[0].get(0), &Datum::Int(4));
    // EXISTS.
    let rows = s
        .query("SELECT COUNT(*) FROM t WHERE EXISTS (SELECT 1 FROM t WHERE tag = 'zzz')")
        .unwrap();
    assert_eq!(rows[0].get(0), &Datum::Int(0));
    // UNION and UNION ALL.
    let rows = s
        .query("SELECT tag FROM t UNION SELECT tag FROM t")
        .unwrap();
    assert_eq!(rows.len(), 3);
    let rows = s
        .query("SELECT tag FROM t UNION ALL SELECT tag FROM t")
        .unwrap();
    assert_eq!(rows.len(), 8);
    // DISTINCT.
    let rows = s.query("SELECT DISTINCT tag FROM t ORDER BY tag").unwrap();
    assert_eq!(rows.len(), 3);
}

#[test]
fn ctes_and_derived_tables() {
    let mut s = session();
    s.execute_script(
        "CREATE TABLE sales (region VARCHAR(10), amt DOUBLE);
         INSERT INTO sales VALUES ('east', 10), ('east', 20), ('west', 5);",
    )
    .unwrap();
    let rows = s
        .query(
            "WITH totals AS (SELECT region, SUM(amt) AS total FROM sales GROUP BY region) \
             SELECT region FROM totals WHERE total > 10",
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(0).as_str(), Some("east"));
    let rows = s
        .query(
            "SELECT t.region, t.total FROM \
             (SELECT region, SUM(amt) AS total FROM sales GROUP BY region) t \
             ORDER BY t.total DESC",
        )
        .unwrap();
    assert_eq!(rows[0].get(0).as_str(), Some("east"));
}

#[test]
fn aggregate_function_breadth() {
    let mut s = session();
    s.execute("CREATE TABLE n (x DOUBLE, y DOUBLE)").unwrap();
    s.execute(
        "INSERT INTO n VALUES (2, 4), (4, 8), (4, 8), (4, 8), (5, 10), (5, 10), (7, 14), (9, 18)",
    )
    .unwrap();
    let rows = s
        .query(
            "SELECT COUNT(*), COUNT(DISTINCT x), MEDIAN(x), VAR_POP(x), STDDEV(x), \
             COVARIANCE(x, y) FROM n",
        )
        .unwrap();
    let r = &rows[0];
    assert_eq!(r.get(0), &Datum::Int(8));
    assert_eq!(r.get(1), &Datum::Int(5));
    assert_eq!(r.get(2).as_float(), Some(4.5));
    assert!((r.get(3).as_float().unwrap() - 4.0).abs() < 1e-9);
    assert!((r.get(4).as_float().unwrap() - 2.0).abs() < 1e-9);
    assert!((r.get(5).as_float().unwrap() - 8.0).abs() < 1e-9);
}

#[test]
fn expressions_and_functions_in_queries() {
    let mut s = session();
    s.execute("CREATE TABLE t (s VARCHAR(20), n INT)").unwrap();
    s.execute("INSERT INTO t VALUES ('hello world', -5), (NULL, 12)")
        .unwrap();
    let rows = s
        .query(
            "SELECT UPPER(s), ABS(n), COALESCE(s, 'missing'), \
             CASE WHEN n < 0 THEN 'neg' ELSE 'pos' END FROM t ORDER BY n",
        )
        .unwrap();
    assert_eq!(rows[0].get(0).as_str(), Some("HELLO WORLD"));
    assert_eq!(rows[0].get(1), &Datum::Int(5));
    assert_eq!(rows[1].get(2).as_str(), Some("missing"));
    assert_eq!(rows[0].get(3).as_str(), Some("neg"));
    // LIKE, BETWEEN, IN.
    let rows = s
        .query(
            "SELECT COUNT(*) FROM t WHERE s LIKE 'hello%' OR n BETWEEN 10 AND 20 OR n IN (1, 2)",
        )
        .unwrap();
    assert_eq!(rows[0].get(0), &Datum::Int(2));
}

#[test]
fn sequences_views_aliases_across_dialects() {
    let db = Database::with_hardware(HardwareSpec::laptop());
    let mut ora = db.connect();
    ora.set_dialect(Dialect::Oracle);
    ora.execute("CREATE SEQUENCE ids START WITH 1000").unwrap();
    ora.execute("CREATE TABLE log (id INT, msg VARCHAR(30))").unwrap();
    ora.execute("INSERT INTO log VALUES (ids.NEXTVAL, 'first'), (ids.NEXTVAL, 'second')")
        .unwrap();
    let rows = ora.query("SELECT id FROM log ORDER BY id").unwrap();
    assert_eq!(rows[0].get(0), &Datum::Int(1000));
    assert_eq!(rows[1].get(0), &Datum::Int(1001));
    // A view created under Oracle is usable from a DB2 session.
    ora.execute("CREATE VIEW latest AS SELECT MAX(id) m FROM log")
        .unwrap();
    let mut db2 = db.connect();
    db2.set_dialect(Dialect::Db2);
    db2.execute("CREATE ALIAS l FOR log").unwrap();
    assert_eq!(
        db2.query("SELECT m FROM latest").unwrap()[0].get(0),
        &Datum::Int(1001)
    );
    db2.execute("INSERT INTO l VALUES (NEXT VALUE FOR ids, 'third')")
        .unwrap();
    assert_eq!(
        db2.query("SELECT m FROM latest").unwrap()[0].get(0),
        &Datum::Int(1002)
    );
}

#[test]
fn large_table_scan_correctness() {
    // Crosses many strides; exercises pushdown + skipping + late
    // materialization through plain SQL.
    let mut s = session();
    s.execute("CREATE TABLE big (id BIGINT, grp INT, v DOUBLE)").unwrap();
    let mut values = Vec::new();
    for i in 0..30_000 {
        values.push(format!("({}, {}, {})", i, i % 7, (i % 1000) as f64 / 10.0));
        if values.len() == 1000 {
            s.execute(&format!("INSERT INTO big VALUES {}", values.join(",")))
                .unwrap();
            values.clear();
        }
    }
    let rows = s
        .query("SELECT COUNT(*), SUM(v) FROM big WHERE id >= 29000")
        .unwrap();
    assert_eq!(rows[0].get(0), &Datum::Int(1000));
    let rows = s
        .query("SELECT grp, COUNT(*) FROM big GROUP BY grp ORDER BY grp")
        .unwrap();
    assert_eq!(rows.len(), 7);
    let total: i64 = rows.iter().map(|r| r.get(1).as_int().unwrap()).sum();
    assert_eq!(total, 30_000);
    // Deletes + update visibility at scale.
    let affected = s.execute("DELETE FROM big WHERE grp = 3").unwrap().affected;
    assert!(affected > 4000);
    let rows = s.query("SELECT COUNT(*) FROM big").unwrap();
    assert_eq!(rows[0].get(0), &Datum::Int(30_000 - affected as i64));
}

#[test]
fn order_by_variants() {
    let mut s = session();
    s.execute("CREATE TABLE t (a INT, b VARCHAR(5))").unwrap();
    s.execute("INSERT INTO t VALUES (3, 'c'), (1, 'a'), (2, 'b'), (NULL, 'n')")
        .unwrap();
    // Ordinal, alias, hidden column, NULLS FIRST.
    let rows = s.query("SELECT b FROM t ORDER BY a").unwrap();
    assert_eq!(rows[0].get(0).as_str(), Some("a"));
    assert_eq!(rows[3].get(0).as_str(), Some("n"), "NULLs last by default");
    let rows = s
        .query("SELECT a AS sort_me FROM t ORDER BY sort_me DESC NULLS FIRST")
        .unwrap();
    assert!(rows[0].get(0).is_null());
    let rows = s.query("SELECT b FROM t ORDER BY 1 DESC").unwrap();
    assert_eq!(rows[0].get(0).as_str(), Some("n"));
}

#[test]
fn errors_are_structured() {
    let mut s = session();
    let e = s.execute("SELECT * FROM nope").unwrap_err();
    assert_eq!(e.class(), "42704");
    let e = s.execute("SELEC 1").unwrap_err();
    assert_eq!(e.class(), "42601");
    s.execute("CREATE TABLE t (x INT NOT NULL)").unwrap();
    let e = s.execute("INSERT INTO t VALUES (NULL)").unwrap_err();
    assert_eq!(e.class(), "23505");
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    let e = s.execute("SELECT x + 'abc' FROM t").unwrap_err();
    assert_eq!(e.class(), "22000");
}

//! Automatic configuration (§II.A).
//!
//! "dashDB Local includes an automatic configuration component that detects
//! several characteristics of the hardware environment, and adapts its
//! configuration to optimize for the resources available. This includes
//! automatic detection of CPU and core counts, and automatic detection of
//! RAM."
//!
//! [`HardwareSpec::detect`] reads the actual machine; [`AutoConfig::derive`]
//! is the pure sizing function (tested against the paper's envelope: from
//! the 8 GB / 2-core laptop minimum up to 72-core / 6 TB servers).

use serde::{Deserialize, Serialize};

/// Detected (or simulated) hardware characteristics of one host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Logical CPU cores.
    pub cores: u32,
    /// Physical RAM in megabytes.
    pub ram_mb: u64,
}

impl HardwareSpec {
    /// A spec from explicit values (used by the deployment simulator).
    pub fn new(cores: u32, ram_mb: u64) -> HardwareSpec {
        HardwareSpec { cores, ram_mb }
    }

    /// The paper's entry-level target: "8GB RAM and 20GB of storage ...
    /// suitable for a development / test environment ... on your laptop".
    pub fn laptop() -> HardwareSpec {
        HardwareSpec::new(4, 8 * 1024)
    }

    /// The paper's high-end example: "Xeon e7 4 x 18 core 72 way machines
    /// with 6 TB RAM".
    pub fn xeon_e7() -> HardwareSpec {
        HardwareSpec::new(72, 6 * 1024 * 1024)
    }

    /// Detect the current machine (Linux: `/proc`; elsewhere falls back to
    /// `std::thread::available_parallelism` and a conservative RAM guess).
    pub fn detect() -> HardwareSpec {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1);
        let ram_mb = read_meminfo_mb().unwrap_or(8 * 1024);
        HardwareSpec { cores, ram_mb }
    }
}

fn read_meminfo_mb() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/meminfo").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("MemTotal:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb / 1024);
        }
    }
    None
}

/// The derived engine configuration — the knobs a DBA would otherwise have
/// to set for "the allocation of memory to functional purposes (caching,
/// sorting, hashing, locking, logging, etc.), query parallelism degree,
/// workload management infrastructure".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoConfig {
    /// Buffer pool size in 32 KB pages (~40% of RAM).
    pub bufferpool_pages: u64,
    /// Sort/hash working memory per query, in MB (~15% of RAM / concurrency).
    pub sort_heap_mb: u64,
    /// Intra-query parallelism degree (== cores, the scan fan-out).
    pub query_parallelism: u32,
    /// Workload-manager admission limit (concurrent heavyweight queries).
    pub wlm_concurrency: u32,
    /// Hash shards this host should carry (several per host so shards can
    /// be re-associated on failover; bounded by core count, §II.E).
    pub shards: u32,
    /// Memory reserved for the integrated analytics runtime, in MB (~20%).
    pub analytics_mb: u64,
}

impl AutoConfig {
    /// The parallelism degree queries actually run with: the derived
    /// `query_parallelism` (uncapped — one knob governs the whole morsel
    /// pipeline), unless the `DASH_PARALLELISM` environment variable
    /// overrides it. The override exists for tests, benchmarks, and CI
    /// matrices that pin the worker count regardless of host hardware.
    pub fn effective_parallelism(&self) -> usize {
        parallelism_override(std::env::var("DASH_PARALLELISM").ok().as_deref())
            .unwrap_or((self.query_parallelism as usize).max(1))
    }

    /// Rows per parallel sort run: the engine default unless
    /// `DASH_SORT_RUN_ROWS` overrides it. Smaller runs mean more morsels
    /// (useful to force fan-out in tests and benchmarks); larger runs
    /// amortize merge fan-in on huge inputs.
    pub fn effective_sort_run_rows(&self) -> usize {
        sort_run_rows_override(std::env::var("DASH_SORT_RUN_ROWS").ok().as_deref())
            .unwrap_or(dash_exec::sort::DEFAULT_SORT_RUN_ROWS)
    }

    /// Whether SELECTs run through the query-wide pipeline scheduler: on
    /// by default, disabled when `DASH_PIPELINE` is `0`, `off`, or
    /// `false` (the escape hatch back to operator-at-a-time execution).
    pub fn effective_pipeline_enabled(&self) -> bool {
        pipeline_override(std::env::var("DASH_PIPELINE").ok().as_deref())
    }

    /// Pipeline in-flight morsel window from `DASH_PIPELINE_INFLIGHT`;
    /// 0 (or unset) means auto — the scheduler derives parallelism × 4.
    pub fn effective_pipeline_inflight(&self) -> usize {
        inflight_override(std::env::var("DASH_PIPELINE_INFLIGHT").ok().as_deref()).unwrap_or(0)
    }
}

/// Parse a `DASH_PIPELINE` value: only an explicit `0` / `off` / `false`
/// (case-insensitive) disables the pipeline scheduler; anything else —
/// including unset or unparsable — leaves it on.
fn pipeline_override(raw: Option<&str>) -> bool {
    !matches!(
        raw.map(|v| v.trim().to_ascii_lowercase()).as_deref(),
        Some("0") | Some("off") | Some("false")
    )
}

/// Parse a `DASH_PIPELINE_INFLIGHT` value; `None` when unset or
/// unparsable (zero is a valid explicit "auto").
fn inflight_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
}

/// Parse a `DASH_SORT_RUN_ROWS` value; `None` when unset, unparsable, or
/// zero (zero would be a degenerate run size and means "use the default").
fn sort_run_rows_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Parse a `DASH_PARALLELISM` value; `None` when unset, unparsable, or
/// zero (zero would deadlock nothing but means "derive it", like unset).
fn parallelism_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Default statement deadline from `DASH_STATEMENT_TIMEOUT_MS`. `None`
/// (unset / unparsable / zero) means statements run without a deadline;
/// sessions can still arm one per-statement.
pub fn default_statement_timeout() -> Option<std::time::Duration> {
    timeout_override(std::env::var("DASH_STATEMENT_TIMEOUT_MS").ok().as_deref())
}

fn timeout_override(raw: Option<&str>) -> Option<std::time::Duration> {
    raw.and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms >= 1)
        .map(std::time::Duration::from_millis)
}

/// Default per-statement memory budget from `DASH_MEM_BUDGET_BYTES`.
/// `None` (unset / unparsable / zero) means unlimited.
pub fn default_mem_budget() -> Option<u64> {
    budget_override(std::env::var("DASH_MEM_BUDGET_BYTES").ok().as_deref())
}

fn budget_override(raw: Option<&str>) -> Option<u64> {
    raw.and_then(|v| v.trim().parse::<u64>().ok()).filter(|&b| b >= 1)
}

/// Group-commit batching window from `DASH_GROUP_COMMIT_US` (default
/// 100µs). The leader of a commit batch waits at most this long for
/// concurrent committers to pile in before flushing; `0` disables the
/// wait entirely (each commit still batches opportunistically with
/// whatever is already queued).
pub fn default_group_commit_window() -> std::time::Duration {
    group_commit_override(std::env::var("DASH_GROUP_COMMIT_US").ok().as_deref())
        .unwrap_or(std::time::Duration::from_micros(100))
}

fn group_commit_override(raw: Option<&str>) -> Option<std::time::Duration> {
    raw.and_then(|v| v.trim().parse::<u64>().ok())
        .map(std::time::Duration::from_micros)
}

impl AutoConfig {
    /// Derive the configuration from hardware — the whole point is that
    /// this is a *function*: same hardware in, same tuned system out,
    /// no human in the loop.
    pub fn derive(hw: &HardwareSpec) -> AutoConfig {
        let ram = hw.ram_mb.max(1024);
        let cores = hw.cores.max(1);
        // 40% of RAM to the buffer pool, in 32 KB pages.
        let bufferpool_pages = ram * 2 / 5 * 1024 / 32;
        // WLM admits roughly one heavy query per 4 cores, at least 2.
        let wlm_concurrency = (cores / 4).max(2);
        // 15% of RAM split across admitted queries for sort/hash heaps.
        let sort_heap_mb = (ram * 3 / 20 / wlm_concurrency as u64).max(32);
        // Several shards per host, at most one per core, at least 4
        // (so a small cluster can still rebalance in increments).
        let shards = cores.clamp(4, 24.min(cores.max(4)));
        AutoConfig {
            bufferpool_pages,
            sort_heap_mb,
            query_parallelism: cores,
            wlm_concurrency,
            shards,
            analytics_mb: ram / 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laptop_configuration() {
        let c = AutoConfig::derive(&HardwareSpec::laptop());
        // 8 GB machine: ~3.2 GB buffer pool.
        assert_eq!(c.bufferpool_pages, 8 * 1024 * 2 / 5 * 1024 / 32);
        assert_eq!(c.query_parallelism, 4);
        assert_eq!(c.wlm_concurrency, 2);
        assert!(c.sort_heap_mb >= 32);
        assert_eq!(c.shards, 4);
    }

    #[test]
    fn xeon_configuration_scales() {
        let small = AutoConfig::derive(&HardwareSpec::laptop());
        let big = AutoConfig::derive(&HardwareSpec::xeon_e7());
        assert!(big.bufferpool_pages > small.bufferpool_pages * 100);
        assert_eq!(big.query_parallelism, 72);
        assert_eq!(big.wlm_concurrency, 18);
        assert_eq!(big.shards, 24, "shards bounded so rebalancing stays granular");
    }

    #[test]
    fn derivation_is_deterministic() {
        let hw = HardwareSpec::new(16, 128 * 1024);
        assert_eq!(AutoConfig::derive(&hw), AutoConfig::derive(&hw));
    }

    #[test]
    fn degenerate_hardware_clamped() {
        let c = AutoConfig::derive(&HardwareSpec::new(0, 0));
        assert!(c.query_parallelism >= 1);
        assert!(c.wlm_concurrency >= 2);
        assert!(c.bufferpool_pages > 0);
        assert!(c.shards >= 4);
    }

    #[test]
    fn parallelism_override_parsing() {
        assert_eq!(parallelism_override(None), None);
        assert_eq!(parallelism_override(Some("")), None);
        assert_eq!(parallelism_override(Some("abc")), None);
        assert_eq!(parallelism_override(Some("0")), None, "0 means derive");
        assert_eq!(parallelism_override(Some("4")), Some(4));
        assert_eq!(parallelism_override(Some(" 16 ")), Some(16));
    }

    #[test]
    fn sort_run_rows_override_parsing() {
        assert_eq!(sort_run_rows_override(None), None);
        assert_eq!(sort_run_rows_override(Some("junk")), None);
        assert_eq!(sort_run_rows_override(Some("0")), None, "0 means default");
        assert_eq!(sort_run_rows_override(Some(" 4096 ")), Some(4096));
        if std::env::var("DASH_SORT_RUN_ROWS").is_err() {
            assert_eq!(
                AutoConfig::derive(&HardwareSpec::laptop()).effective_sort_run_rows(),
                dash_exec::sort::DEFAULT_SORT_RUN_ROWS
            );
        }
    }

    #[test]
    fn pipeline_override_parsing() {
        assert!(pipeline_override(None), "unset means on");
        assert!(pipeline_override(Some("1")));
        assert!(pipeline_override(Some("on")));
        assert!(pipeline_override(Some("junk")), "unparsable means on");
        assert!(!pipeline_override(Some("0")));
        assert!(!pipeline_override(Some(" off ")));
        assert!(!pipeline_override(Some("FALSE")));
        assert_eq!(inflight_override(None), None);
        assert_eq!(inflight_override(Some("junk")), None);
        assert_eq!(inflight_override(Some("0")), Some(0), "explicit auto");
        assert_eq!(inflight_override(Some(" 64 ")), Some(64));
    }

    #[test]
    fn statement_limit_override_parsing() {
        assert_eq!(timeout_override(None), None);
        assert_eq!(timeout_override(Some("0")), None, "0 means no deadline");
        assert_eq!(timeout_override(Some("junk")), None);
        assert_eq!(
            timeout_override(Some(" 250 ")),
            Some(std::time::Duration::from_millis(250))
        );
        assert_eq!(budget_override(None), None);
        assert_eq!(budget_override(Some("0")), None, "0 means unlimited");
        assert_eq!(budget_override(Some("1048576")), Some(1 << 20));
    }

    #[test]
    fn xeon_parallelism_uncapped() {
        // The silent .min(8) cap is gone: a 72-core box runs 72-wide
        // (unless DASH_PARALLELISM overrides, which this test avoids
        // asserting to stay env-independent).
        let big = AutoConfig::derive(&HardwareSpec::xeon_e7());
        if std::env::var("DASH_PARALLELISM").is_err() {
            assert_eq!(big.effective_parallelism(), 72);
        }
    }

    #[test]
    fn detect_runs() {
        let hw = HardwareSpec::detect();
        assert!(hw.cores >= 1);
        assert!(hw.ram_mb >= 256);
    }
}

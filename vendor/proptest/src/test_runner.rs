//! Config, RNG, and case-outcome types for the proptest stand-in.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Result type each generated case evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// SplitMix64 generator; deterministic from a name-derived seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (module path + fn name) via FNV-1a.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // One mixing round so short names don't yield low-entropy states.
        let mut rng = TestRng { state: h };
        rng.next_u64();
        rng
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`. `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.below_u128(n as u128)) as usize
    }

    /// Uniform value in `0..n` over 128 bits. `n` must be nonzero.
    ///
    /// Plain modulo; the bias is < 2^-64 for every span this crate's
    /// strategies produce, which is irrelevant for test-case generation.
    pub fn below_u128(&mut self, n: u128) -> u128 {
        assert!(n > 0, "below_u128(0)");
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % n
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        self.below(den as usize) < num as usize
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::z");
        assert_ne!(
            (a.next_u64(), a.next_u64()),
            (b.next_u64(), b.next_u64())
        );
    }

    #[test]
    fn below_in_range() {
        let mut rng = TestRng::deterministic("below");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}

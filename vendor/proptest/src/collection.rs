//! Collection strategies: `prop::collection::vec`.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive length bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy: each element drawn independently from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::deterministic("vec");
        let s = vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() >= 2 && v.len() <= 4);
            assert!(v.iter().all(|x| *x < 10));
        }
        let fixed = vec(0u32..10, 3);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }
}

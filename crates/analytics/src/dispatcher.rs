//! The Spark Dispatcher (Figure 6).
//!
//! "The main controller for each request to Spark is the Spark Dispatcher.
//! The Dispatcher takes care that for each user a different Spark Cluster
//! Manager gets created and that Spark only gets the memory configured."
//!
//! Per-user isolation means: each user gets their own cluster manager
//! (with its own job table — users cannot see or cancel other users'
//! jobs), and the total analytics memory the auto-configuration reserved
//! is budgeted across user clusters. The submit/cancel/monitor surface
//! corresponds to the paper's REST API / stored procedures /
//! `spark_submit` client.

use dash_common::ids::JobId;
use dash_common::{DashError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker slot.
    Queued,
    /// Running.
    Running,
    /// Completed; carries a result summary string.
    Done(String),
    /// Failed with an error message.
    Failed(String),
    /// Cancelled by the owner.
    Cancelled,
}

#[derive(Debug, Clone)]
struct JobRecord {
    name: String,
    status: JobStatus,
    submitted: Instant,
}

/// One user's cluster manager: an isolated job table + memory slice.
struct UserCluster {
    memory_mb: u64,
    jobs: HashMap<JobId, JobRecord>,
    next_job: u32,
}

/// The per-database analytics dispatcher.
pub struct Dispatcher {
    total_memory_mb: u64,
    clusters: Mutex<HashMap<String, Arc<Mutex<UserCluster>>>>,
}

impl Dispatcher {
    /// Dispatcher with the analytics memory budget derived by the
    /// auto-configuration (`AutoConfig::analytics_mb`).
    pub fn new(total_memory_mb: u64) -> Dispatcher {
        Dispatcher {
            total_memory_mb,
            clusters: Mutex::new(HashMap::new()),
        }
    }

    /// Total memory the analytics runtime may use.
    pub fn total_memory_mb(&self) -> u64 {
        self.total_memory_mb
    }

    fn user_cluster(&self, user: &str) -> Arc<Mutex<UserCluster>> {
        let mut clusters = self.clusters.lock();
        let n = (clusters.len() as u64 + u64::from(!clusters.contains_key(user))).max(1);
        let share = self.total_memory_mb / n;
        let entry = clusters
            .entry(user.to_string())
            .or_insert_with(|| {
                Arc::new(Mutex::new(UserCluster {
                    memory_mb: share,
                    jobs: HashMap::new(),
                    next_job: 0,
                }))
            })
            .clone();
        // Rebalance shares across all user clusters (equal split).
        for c in clusters.values() {
            c.lock().memory_mb = share;
        }
        entry
    }

    /// The memory share currently granted to a user's cluster manager.
    pub fn user_memory_mb(&self, user: &str) -> u64 {
        self.user_cluster(user).lock().memory_mb
    }

    /// Submit a job: runs `body` synchronously under the user's cluster
    /// (the paper's batch path; interactive/streaming submit the same way)
    /// and records the outcome. Returns the job id.
    pub fn submit<F>(&self, user: &str, name: &str, body: F) -> JobId
    where
        F: FnOnce() -> Result<String>,
    {
        let cluster = self.user_cluster(user);
        let id = {
            let mut c = cluster.lock();
            let id = JobId(c.next_job);
            c.next_job += 1;
            c.jobs.insert(
                id,
                JobRecord {
                    name: name.to_string(),
                    status: JobStatus::Running,
                    submitted: Instant::now(),
                },
            );
            id
        };
        let outcome = body();
        let mut c = cluster.lock();
        let rec = c.jobs.get_mut(&id).expect("just inserted");
        // A cancel that raced the execution wins (best-effort semantics).
        if rec.status == JobStatus::Running {
            rec.status = match outcome {
                Ok(summary) => JobStatus::Done(summary),
                Err(e) => JobStatus::Failed(e.to_string()),
            };
        }
        id
    }

    /// Cancel a job (owner only — other users cannot see it).
    pub fn cancel(&self, user: &str, job: JobId) -> Result<()> {
        let cluster = self.user_cluster(user);
        let mut c = cluster.lock();
        match c.jobs.get_mut(&job) {
            Some(rec) => {
                if matches!(rec.status, JobStatus::Queued | JobStatus::Running) {
                    rec.status = JobStatus::Cancelled;
                }
                Ok(())
            }
            None => Err(DashError::not_found("job", job.to_string())),
        }
    }

    /// Job status (owner only).
    pub fn status(&self, user: &str, job: JobId) -> Result<JobStatus> {
        let cluster = self.user_cluster(user);
        let c = cluster.lock();
        c.jobs
            .get(&job)
            .map(|r| r.status.clone())
            .ok_or_else(|| DashError::not_found("job", job.to_string()))
    }

    /// List a user's jobs as `(id, name, status)`, newest first.
    pub fn list(&self, user: &str) -> Vec<(JobId, String, JobStatus)> {
        let cluster = self.user_cluster(user);
        let c = cluster.lock();
        let mut v: Vec<(JobId, String, JobStatus, Instant)> = c
            .jobs
            .iter()
            .map(|(id, r)| (*id, r.name.clone(), r.status.clone(), r.submitted))
            .collect();
        v.sort_by(|a, b| b.3.cmp(&a.3).then(b.0.cmp(&a.0)));
        v.into_iter().map(|(i, n, s, _)| (i, n, s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_run_and_record() {
        let d = Dispatcher::new(4096);
        let id = d.submit("alice", "glm", || Ok("fit ok".into()));
        assert_eq!(d.status("alice", id).unwrap(), JobStatus::Done("fit ok".into()));
        let id2 = d.submit("alice", "bad", || Err(DashError::exec("boom")));
        assert!(matches!(d.status("alice", id2).unwrap(), JobStatus::Failed(_)));
        assert_eq!(d.list("alice").len(), 2);
    }

    #[test]
    fn per_user_isolation() {
        let d = Dispatcher::new(4096);
        let id = d.submit("alice", "secret", || Ok("done".into()));
        // Bob cannot see Alice's job: same id under bob is unknown.
        assert!(d.status("bob", id).is_err());
        assert!(d.cancel("bob", id).is_err());
        assert!(d.list("bob").is_empty());
    }

    #[test]
    fn memory_shares_rebalance() {
        let d = Dispatcher::new(4000);
        assert_eq!(d.user_memory_mb("alice"), 4000);
        let _ = d.user_memory_mb("bob");
        assert_eq!(d.user_memory_mb("alice"), 2000);
        assert_eq!(d.user_memory_mb("bob"), 2000);
    }

    #[test]
    fn cancel_semantics() {
        let d = Dispatcher::new(1024);
        let id = d.submit("u", "j", || Ok("x".into()));
        // Already done: cancel is a no-op.
        d.cancel("u", id).unwrap();
        assert_eq!(d.status("u", id).unwrap(), JobStatus::Done("x".into()));
        assert!(d.cancel("u", JobId(99)).is_err());
    }
}

//! The [`Strategy`] trait and combinators: map, boxing, ranges, tuples,
//! and uniform choice ([`OneOf`], backing `prop_oneof!`).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-typed strategies; built by `prop_oneof!`.
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Build from a non-empty list of arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let x = (5i64..9).generate(&mut rng);
            assert!((5..9).contains(&x));
            let y = (0u8..=255).generate(&mut rng);
            let _ = y; // full domain; just must not panic
            let z = (-3i32..=3).generate(&mut rng);
            assert!((-3..=3).contains(&z));
            let f = (1.0f64..2.0).generate(&mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::deterministic("map");
        let s = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) <= 18);
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let mut rng = TestRng::deterministic("oneof");
        let s = OneOf::new(vec![(0u32..1).boxed(), (100u32..101).boxed()]);
        let mut seen = [false, false];
        for _ in 0..64 {
            match s.generate(&mut rng) {
                0 => seen[0] = true,
                100 => seen[1] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }
}

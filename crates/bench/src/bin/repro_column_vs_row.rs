//! Reproduces the column-vs-row claim (§II.B.7):
//!
//! > "Entire workloads run on column-organized tables in dashDB are
//! > typically 10 to 50 times faster than the same workloads run on
//! > row-organized tables with secondary indexing."
//!
//! Same data, same queries, both engines on the *same* (SSD-class)
//! simulated device — so unlike Table 1 Test 1 the device does not differ,
//! only the storage organization and execution architecture do.

use dash_bench::*;
use dash_core::{Database, HardwareSpec};
use dash_rowstore::engine::RowEngine;
use dash_storage::iodevice::DeviceModel;
use dash_workloads::customer;

fn main() {
    println!("Column-organized vs row-organized reproduction — dashdb-local-rs");
    let scale = 300_000;
    let w = customer::generate(scale, 0);
    let raw_bytes: usize = w.tables.iter().map(|t| t.rows.len() * 72).sum();
    let pool_pages = (raw_bytes / (32 * 1024) / 10).max(16);
    let db = Database::with_pool_pages(HardwareSpec::laptop(), pool_pages);
    let mut row = RowEngine::new(Some(pool_pages));
    for t in &w.tables {
        load_into_db(&db, t).expect("load db");
        load_into_row_engine(&mut row, t).expect("load row");
    }
    let mut session = db.connect();
    let ssd = DeviceModel::ssd();
    let mut speedups = Vec::new();
    section("per-query speedups (column vs row, identical SSD device)");
    for (i, q) in w.analytic_queries.iter().enumerate() {
        let (a, _, t_db) = run_on_db(&mut session, q).expect("db");
        let start = std::time::Instant::now();
        let (b, stats) = q.run_row(&row).expect("row");
        let row_cpu = start.elapsed().as_secs_f64();
        assert_eq!(a, b, "engines disagree on {}", q.to_sql());
        // Same SSD for the row engine (this experiment isolates layout).
        let row_io = ssd.read_time_us(stats.pool_misses, !stats.random_io) / 1e6;
        let s = (row_cpu + row_io) / t_db.total().max(1e-9);
        speedups.push(s);
        if i < 8 {
            report(&format!("query {i}"), format!("{s:.1}x"));
        }
    }
    section("summary");
    report("queries", speedups.len());
    report("min speedup", format!("{:.1}x", speedups.iter().cloned().fold(f64::INFINITY, f64::min)));
    report("median speedup", format!("{:.1}x", median(&speedups)));
    report("avg speedup", format!("{:.1}x", mean(&speedups)));
    report("max speedup", format!("{:.1}x", speedups.iter().cloned().fold(0.0, f64::max)));
    // Our row baseline is an idealized Rust loop with no tuple
    // interpreter, so the absolute factors land below the paper's 10-50x
    // (see EXPERIMENTS.md); the reproduction target is the direction and
    // the selective-query tail.
    let all_win = speedups.iter().all(|&s| s >= 1.0);
    report(
        "shape check (column wins every query; tail approaches 10x)",
        if all_win && speedups.iter().any(|&s| s >= 8.0) {
            "PASS"
        } else {
            "FAIL"
        },
    );
}

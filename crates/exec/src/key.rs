//! Operate-on-compressed key machinery for joins and grouping.
//!
//! The BLU design point (paper §II.B) is that joins and grouping run on
//! *encoded* data: every key column is reduced to a fixed-width `u64` word
//! and the hot loops hash, compare, and bucket those words with no [`Datum`]
//! in sight. This module decides when that is sound and provides the word
//! computation:
//!
//! - Integer-family keys (ints, bools, dates, timestamps, same-scale
//!   decimals) become [`dash_encoding::order::i64_to_ordered`] words.
//! - Float keys become [`dash_encoding::order::f64_to_ordered`] words with
//!   NaN canonicalized first, so key identity matches SQL equality
//!   (`-0.0 = 0.0`, NaN groups with NaN).
//! - String keys backed by a frequency-partitioned dictionary become packed
//!   dictionary codes ([`dash_encoding::dict::pack_code`]); strings absent
//!   from the chosen dictionary get the [`STR_MISS`] sentinel and are
//!   interned per partition (see [`StrInterner`]).
//!
//! When the two join sides carry *different* dictionaries, the smaller side
//! is re-encoded into the larger side's code domain
//! ([`dash_encoding::dict::FreqDict::translate_code`]) rather than decoding
//! the larger side — the re-encode rule.
//!
//! [`KeyMode`] is the planner-visible switch: `Encoded` when every key
//! column's static type permits the compressed path, `Datum` when any key
//! needs cross-type numeric equality (`Int 2` joins `Float 2.0`), is a
//! computed expression, or mixes key domains.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use dash_common::fxhash::{FxHashMap, FxHasher};
use dash_common::types::DataType;
use dash_common::Schema;
use dash_encoding::column::ColumnValues;
use dash_encoding::dict::{pack_code, FreqDict};
use dash_encoding::order::{f64_to_ordered, i64_to_ordered};

use crate::batch::Batch;
use crate::expr::Expr;

/// Sentinel key word for a string value absent from the shared dictionary.
///
/// Packed dictionary codes always have their top bit clear, and local intern
/// codes live in `[LOCAL_STR_BASE, u64::MAX)`, so the sentinel collides with
/// neither. Rows carrying it are routed by hashing the raw string bytes and
/// resolved through a per-partition [`StrInterner`].
pub(crate) const STR_MISS: u64 = u64::MAX;

/// Base for per-partition local string codes handed out by [`StrInterner`].
///
/// Packed dictionary codes occupy at most `(MAX_PARTITIONS + 1) << 56`
/// (< 2^59), so codes at or above `1 << 63` can never collide with them.
pub(crate) const LOCAL_STR_BASE: u64 = 1 << 63;

/// How a join or aggregate evaluates its keys.
///
/// Chosen statically by the planner from the key columns' types; the
/// executor re-verifies at runtime against the actual batches and may still
/// fall back to `Datum` (e.g. key count too large, non-column expressions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyMode {
    /// Keys flow as fixed-width `u64` code words; payloads materialize late.
    Encoded,
    /// Keys materialize to `Datum` values per row (the fallback path).
    Datum,
}

/// The value domain a key column occupies once encoded to a word.
///
/// Two key columns may share the encoded path only when their domains are
/// *equal*: word-level equality must coincide with SQL equality. `Bool` and
/// `Int` stay distinct because `Datum::Bool(true) != Datum::Int(1)`; every
/// decimal scale is its own domain because words carry scaled integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyDomain {
    Int,
    Bool,
    Date,
    Timestamp,
    Decimal(u8),
    Float,
    Str,
}

fn key_domain(dt: DataType) -> KeyDomain {
    match dt {
        DataType::Int16 | DataType::Int32 | DataType::Int64 => KeyDomain::Int,
        DataType::Bool => KeyDomain::Bool,
        DataType::Date => KeyDomain::Date,
        DataType::Timestamp => KeyDomain::Timestamp,
        DataType::Decimal(_, s) => KeyDomain::Decimal(s),
        DataType::Float32 | DataType::Float64 => KeyDomain::Float,
        DataType::Utf8 => KeyDomain::Str,
    }
}

/// Maximum number of group-by key columns the encoded aggregate supports
/// (one bit per column in the null-mask word).
pub(crate) const MAX_ENCODED_GROUP_KEYS: usize = 63;

impl KeyMode {
    /// Static key-mode decision for a hash join on `on` column pairs.
    ///
    /// `Encoded` iff every pair's two columns occupy the same [`KeyDomain`];
    /// any cross-domain pair (e.g. `Int64` vs `Float64`, which needs
    /// cross-numeric SQL equality) forces the `Datum` path.
    pub fn for_join(left: &Schema, right: &Schema, on: &[(usize, usize)]) -> KeyMode {
        let ok = !on.is_empty()
            && on.iter().all(|&(l, r)| {
                key_domain(left.field(l).data_type) == key_domain(right.field(r).data_type)
            });
        if ok {
            KeyMode::Encoded
        } else {
            KeyMode::Datum
        }
    }

    /// Static key-mode decision for a grouped aggregate.
    ///
    /// `Encoded` iff there is at least one group key, every key is a bare
    /// column reference, and the key count fits the null-mask word.
    pub fn for_group(_input: &Schema, group: &[Expr]) -> KeyMode {
        let ok = !group.is_empty()
            && group.len() <= MAX_ENCODED_GROUP_KEYS
            && group.iter().all(|g| matches!(g, Expr::Col(_)));
        if ok {
            KeyMode::Encoded
        } else {
            KeyMode::Datum
        }
    }
}

/// One key column viewed through the encoded path.
///
/// Borrows the batch's column storage; `dict` (strings only) is the *shared*
/// dictionary both sides agreed on, which may differ from the dictionary the
/// batch itself carries (the re-encode rule picks the larger side's).
pub(crate) enum KeyCol<'a> {
    /// Integer-family values: word = `i64_to_ordered(v)`.
    Int(&'a [Option<i64>]),
    /// Float values: word = `f64_to_ordered` of the canonicalized value.
    Float(&'a [Option<f64>]),
    /// String values: word = packed dictionary code or [`STR_MISS`].
    Str {
        vals: &'a [Option<Arc<str>>],
        dict: Option<Arc<FreqDict<Arc<str>>>>,
    },
}

/// Canonical `u64` key word for a float key.
///
/// All NaN payloads fold onto one word and `-0.0` folds onto `+0.0`
/// (`f64_to_ordered` already normalizes zero), matching
/// [`dash_common::canonical_f64_bits`] on the `Datum` hash path.
#[inline]
pub(crate) fn f64_key_word(v: f64) -> u64 {
    if v.is_nan() {
        f64_to_ordered(f64::NAN)
    } else {
        f64_to_ordered(v)
    }
}

impl<'a> KeyCol<'a> {
    /// Build a key column view over `batch` column `col`, with `dict`
    /// overriding the batch's own dictionary for strings.
    pub(crate) fn from_column(
        batch: &'a Batch,
        col: usize,
        dict: Option<Arc<FreqDict<Arc<str>>>>,
    ) -> Option<KeyCol<'a>> {
        match batch.column(col) {
            ColumnValues::Int(v) => Some(KeyCol::Int(v)),
            ColumnValues::Float(v) => Some(KeyCol::Float(v)),
            ColumnValues::Str(v) => Some(KeyCol::Str { vals: v, dict }),
        }
    }

    /// The key word for `row`, or `None` when the value is NULL.
    #[inline]
    pub fn word(&self, row: usize) -> Option<u64> {
        match self {
            KeyCol::Int(v) => v[row].map(i64_to_ordered),
            KeyCol::Float(v) => v[row].map(f64_key_word),
            KeyCol::Str { vals, dict } => vals[row].as_ref().map(|s| match dict {
                Some(d) => d.encode(s).map(pack_code).unwrap_or(STR_MISS),
                None => STR_MISS,
            }),
        }
    }

    /// Whether this key column is a string column — the only kind whose
    /// words can carry the [`STR_MISS`] sentinel. Int keys legitimately
    /// produce the word `u64::MAX` (`i64::MAX` ordered), so every sentinel
    /// check must be gated on the column kind, not the word alone.
    #[inline]
    pub fn is_str(&self) -> bool {
        matches!(self, KeyCol::Str { .. })
    }

    /// The raw string at `row`; only valid for `Str` columns on non-NULL rows.
    #[inline]
    pub fn str_at(&self, row: usize) -> &Arc<str> {
        match self {
            KeyCol::Str { vals, .. } => vals[row].as_ref().expect("str_at on NULL key"),
            _ => unreachable!("str_at on non-string key column"),
        }
    }
}

/// Deterministic partition-routing hash over one row's key words.
///
/// [`STR_MISS`] words hash the raw string bytes instead of the sentinel so
/// equal out-of-dictionary strings still land in the same partition
/// regardless of which side (or worker) sees them.
#[inline]
pub(crate) fn route_hash(cols: &[KeyCol<'_>], words: &[u64], row: usize) -> u64 {
    let mut h = FxHasher::default();
    for (c, &w) in cols.iter().zip(words) {
        if w == STR_MISS && c.is_str() {
            c.str_at(row).as_bytes().hash(&mut h);
        } else {
            w.hash(&mut h);
        }
    }
    h.finish()
}

/// Per-partition interner resolving [`STR_MISS`] words to local codes.
///
/// Built from **build-side rows in row order only**, so the code assignment
/// is deterministic and independent of thread timing. A probe-side string
/// missing from the interner provably has no build match (it is neither in
/// the shared dictionary nor among the build side's out-of-dictionary
/// strings).
#[derive(Default)]
pub(crate) struct StrInterner {
    map: FxHashMap<Arc<str>, u64>,
}

impl StrInterner {
    /// Code for `s`, allocating the next local code on first sight.
    #[inline]
    pub fn intern(&mut self, s: &Arc<str>) -> u64 {
        let next = LOCAL_STR_BASE + self.map.len() as u64;
        *self.map.entry(s.clone()).or_insert(next)
    }

    /// Code for `s` if it was interned; `None` means provably unmatched.
    #[inline]
    pub fn lookup(&self, s: &Arc<str>) -> Option<u64> {
        self.map.get(s.as_ref() as &str).copied()
    }
}

/// Runtime key plan for an encoded hash join: per-side key column views
/// sharing one code domain per string pair.
pub(crate) struct JoinKeyPlan<'a> {
    /// Build (left) side key columns.
    pub left: Vec<KeyCol<'a>>,
    /// Probe (right) side key columns.
    pub right: Vec<KeyCol<'a>>,
    /// Rows whose side lost the dictionary vote and will re-encode through
    /// [`FreqDict::translate_code`]-equivalent lookups (for `ExecStats`).
    pub reencoded_rows: u64,
}

/// Build the runtime key plan for an encoded join, or `None` when the
/// batches cannot take the encoded path (mismatched column kinds).
///
/// For each string key pair the two sides must agree on one dictionary: if
/// both carry one, the side with more rows wins and the smaller side
/// re-encodes (the re-encode rule); if only one carries one, it is shared;
/// if neither does, both sides intern per partition.
pub(crate) fn join_key_cols<'a>(
    left: &'a Batch,
    right: &'a Batch,
    on: &[(usize, usize)],
) -> Option<JoinKeyPlan<'a>> {
    let mut plan = JoinKeyPlan {
        left: Vec::with_capacity(on.len()),
        right: Vec::with_capacity(on.len()),
        reencoded_rows: 0,
    };
    for &(l, r) in on {
        let (lk, rk) = (left.column(l), right.column(r));
        let dict = match (lk, rk) {
            (ColumnValues::Int(_), ColumnValues::Int(_))
            | (ColumnValues::Float(_), ColumnValues::Float(_)) => None,
            (ColumnValues::Str(_), ColumnValues::Str(_)) => {
                let (ld, rd) = (left.str_dict(l), right.str_dict(r));
                match (ld, rd) {
                    (Some(a), Some(b)) => {
                        if Arc::ptr_eq(a, b) {
                            Some(a.clone())
                        } else if left.len() >= right.len() {
                            plan.reencoded_rows += right.len() as u64;
                            Some(a.clone())
                        } else {
                            plan.reencoded_rows += left.len() as u64;
                            Some(b.clone())
                        }
                    }
                    (Some(a), None) => Some(a.clone()),
                    (None, Some(b)) => Some(b.clone()),
                    (None, None) => None,
                }
            }
            _ => return None,
        };
        plan.left.push(KeyCol::from_column(left, l, dict.clone())?);
        plan.right.push(KeyCol::from_column(right, r, dict)?);
    }
    Some(plan)
}

/// Build encoded key column views for a grouped aggregate, or `None` when
/// any group expression is not a bare column.
pub(crate) fn group_key_cols<'a>(input: &'a Batch, group: &[Expr]) -> Option<Vec<KeyCol<'a>>> {
    if group.is_empty() || group.len() > MAX_ENCODED_GROUP_KEYS {
        return None;
    }
    group
        .iter()
        .map(|g| match g {
            Expr::Col(c) => {
                let dict = input.str_dict(*c).cloned();
                KeyCol::from_column(input, *c, dict)
            }
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_common::{row, Field};

    fn batch(rows: &[dash_common::Row]) -> Batch {
        let schema = Schema::new(vec![
            Field::not_null("k", DataType::Int64),
            Field::new("f", DataType::Float64),
            Field::new("s", DataType::Utf8),
        ])
        .unwrap();
        Batch::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn float_words_canonicalize_zero_and_nan() {
        assert_eq!(f64_key_word(0.0), f64_key_word(-0.0));
        assert_eq!(f64_key_word(f64::NAN), f64_key_word(-f64::NAN));
        assert_ne!(f64_key_word(1.0), f64_key_word(2.0));
    }

    #[test]
    fn int_words_preserve_equality() {
        let b = batch(&[row![1i64, 1.0f64, "a"], row![2i64, 1.0f64, "a"]]);
        let cols = group_key_cols(&b, &[Expr::col(0)]).unwrap();
        assert_ne!(cols[0].word(0), cols[0].word(1));
        assert_eq!(cols[0].word(0), Some(i64_to_ordered(1)));
    }

    #[test]
    fn str_without_dict_is_miss_and_interner_resolves() {
        let b = batch(&[row![1i64, 1.0f64, "a"], row![2i64, 1.0f64, "b"]]);
        let cols = group_key_cols(&b, &[Expr::col(2)]).unwrap();
        assert_eq!(cols[0].word(0), Some(STR_MISS));
        let mut it = StrInterner::default();
        let a = it.intern(cols[0].str_at(0));
        let b2 = it.intern(cols[0].str_at(1));
        assert_ne!(a, b2);
        assert!(a >= LOCAL_STR_BASE && b2 >= LOCAL_STR_BASE);
        assert_eq!(it.intern(cols[0].str_at(0)), a);
        assert_eq!(it.lookup(cols[0].str_at(1)), Some(b2));
    }

    #[test]
    fn route_hash_ignores_miss_sentinel_value() {
        let b1 = batch(&[row![1i64, 1.0f64, "zed"]]);
        let b2 = batch(&[row![9i64, 9.0f64, "zed"]]);
        let c1 = group_key_cols(&b1, &[Expr::col(2)]).unwrap();
        let c2 = group_key_cols(&b2, &[Expr::col(2)]).unwrap();
        let w1 = [c1[0].word(0).unwrap()];
        let w2 = [c2[0].word(0).unwrap()];
        assert_eq!(route_hash(&c1, &w1, 0), route_hash(&c2, &w2, 0));
    }

    #[test]
    fn key_mode_static_decisions() {
        let s = Schema::new(vec![
            Field::not_null("i", DataType::Int64),
            Field::new("f", DataType::Float64),
            Field::new("s", DataType::Utf8),
        ])
        .unwrap();
        assert_eq!(KeyMode::for_join(&s, &s, &[(0, 0)]), KeyMode::Encoded);
        assert_eq!(KeyMode::for_join(&s, &s, &[(2, 2)]), KeyMode::Encoded);
        // Cross-domain Int vs Float needs SQL numeric equality -> Datum.
        assert_eq!(KeyMode::for_join(&s, &s, &[(0, 1)]), KeyMode::Datum);
        assert_eq!(KeyMode::for_group(&s, &[Expr::col(0)]), KeyMode::Encoded);
        assert_eq!(KeyMode::for_group(&s, &[]), KeyMode::Datum);
    }
}

//! Criterion: predicate evaluation on compressed codes.
//!
//! Backs `repro_simd` with statistically sound measurements: the
//! word-parallel SWAR kernel vs the code-at-a-time scalar loop vs
//! decompress-then-compare, across code widths; plus end-to-end table
//! scans with and without data skipping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dash_encoding::bitpack::BitPackedVec;
use dash_exec::simd::{eval_range, eval_range_scalar};

fn bench_predicate_eval(c: &mut Criterion) {
    let n = 64 * 1024;
    let mut group = c.benchmark_group("predicate_eval");
    group.throughput(Throughput::Elements(n as u64));
    for width in [2u8, 4, 8, 13, 17] {
        let max = (1u64 << width) - 1;
        let codes: Vec<u64> = (0..n).map(|i| (i as u64 * 2654435761) & max).collect();
        let packed = BitPackedVec::from_codes(width, &codes);
        let (lo, hi) = (max / 4, max / 2);
        group.bench_with_input(BenchmarkId::new("simd", width), &packed, |b, p| {
            b.iter(|| eval_range(p, lo, hi).count_ones())
        });
        group.bench_with_input(BenchmarkId::new("scalar", width), &packed, |b, p| {
            b.iter(|| eval_range_scalar(p, lo, hi).count_ones())
        });
        group.bench_with_input(
            BenchmarkId::new("decode_then_compare", width),
            &packed,
            |b, p| {
                b.iter(|| {
                    let decoded = p.to_vec();
                    decoded.iter().filter(|&&v| v >= lo && v <= hi).count()
                })
            },
        );
    }
    group.finish();
}

fn bench_table_scan(c: &mut Criterion) {
    use dash_common::{row, Datum, Field, Schema};
    use dash_exec::functions::EvalContext;
    use dash_exec::scan::{scan, ColumnPredicate, ScanConfig};
    use dash_storage::table::ColumnTable;

    let n = 100_000usize;
    let schema = Schema::new(vec![
        Field::not_null("id", dash_common::DataType::Int64),
        Field::new("d", dash_common::DataType::Date),
        Field::new("v", dash_common::DataType::Float64),
    ])
    .expect("schema");
    let mut t = ColumnTable::new("T", schema);
    let rows: Vec<dash_common::Row> = (0..n)
        .map(|i| row![i as i64, Datum::Date((i / 64) as i32), (i % 97) as f64])
        .collect();
    t.load_rows(rows).expect("load");
    let ctx = EvalContext::default();
    let mut group = c.benchmark_group("table_scan");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("full_scan_project2", |b| {
        b.iter(|| scan(&t, &ScanConfig::full(0, vec![0, 2]), &ctx).expect("scan"))
    });
    group.bench_function("selective_with_skipping", |b| {
        let cfg = ScanConfig {
            predicates: vec![ColumnPredicate::Range {
                col: 1,
                lo: Some(Datum::Date(1500)),
                hi: None,
            }],
            ..ScanConfig::full(0, vec![0, 2])
        };
        b.iter(|| scan(&t, &cfg, &ctx).expect("scan"))
    });
    group.finish();
}

criterion_group!(benches, bench_predicate_eval, bench_table_scan);
criterion_main!(benches);

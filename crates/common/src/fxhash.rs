//! A fast, non-cryptographic hasher (FxHash-style multiply-rotate).
//!
//! Hash joins, group-by and the shard partitioner hash billions of keys;
//! SipHash's HashDoS protection is wasted cost there. This is the classic
//! Firefox/rustc Fx algorithm, implemented locally so we stay within the
//! sanctioned dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (64-bit golden-ratio-ish, as used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the fast hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hash a single u64 key directly (used by the partitioner and bloom-ish
/// structures where constructing a `Hasher` per key would be overhead).
#[inline]
pub fn hash_u64(v: u64) -> u64 {
    // One multiply-rotate round plus a finalizer for avalanche.
    let mut h = v.wrapping_mul(SEED);
    h ^= h >> 32;
    h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
    h ^= h >> 32;
    h
}

/// Hash a byte slice directly.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hellp"));
    }

    #[test]
    fn avalanche_on_sequential_keys() {
        // Sequential integers must spread across buckets — this is the exact
        // pattern hash partitioning of surrogate keys produces.
        let buckets = 64u64;
        let mut counts = vec![0u32; buckets as usize];
        for i in 0..64_000u64 {
            counts[(hash_u64(i) % buckets) as usize] += 1;
        }
        let expected = 1000.0;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "bucket {b} has {c} items (>{:.0}% off)", dev * 100.0);
        }
    }

    #[test]
    fn fxmap_works() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
    }

    #[test]
    fn tail_bytes_disambiguated() {
        // Same prefix, different short tails must hash differently.
        assert_ne!(hash_bytes(b"12345678a"), hash_bytes(b"12345678b"));
        assert_ne!(hash_bytes(b"1234"), hash_bytes(b"12340"));
    }
}

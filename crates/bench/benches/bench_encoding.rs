//! Criterion: codec encode/decode throughput per encoding family, plus the
//! classic row-compression baseline for context.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dash_encoding::baseline::RowCompressor;
use dash_encoding::column::{ColumnCompressor, ColumnValues};
use std::sync::Arc;

fn bench_encode_decode(c: &mut Criterion) {
    let n = 64 * 1024usize;
    let comp = ColumnCompressor::new();
    let cases: Vec<(&str, ColumnValues)> = vec![
        (
            "int_low_cardinality(dict)",
            ColumnValues::Int((0..n).map(|i| Some((i % 16) as i64)).collect()),
        ),
        (
            "int_high_cardinality(minus)",
            ColumnValues::Int((0..n).map(|i| Some(1_000_000 + i as i64 * 3)).collect()),
        ),
        (
            "float(minus)",
            ColumnValues::Float((0..n).map(|i| Some(i as f64 * 0.37)).collect()),
        ),
        (
            "string(prefix+dict)",
            ColumnValues::Str(
                (0..n)
                    .map(|i| Some(Arc::from(format!("region-{:02}", i % 40).as_str())))
                    .collect(),
            ),
        ),
    ];
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(n as u64));
    for (name, values) in &cases {
        let enc = comp.analyze(values);
        group.bench_function(format!("encode/{name}"), |b| {
            b.iter(|| comp.encode_block(&enc, values, 0..values.len()))
        });
        let block = comp.encode_block(&enc, values, 0..values.len());
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| comp.decode_block(&enc, &block))
        });
    }
    group.finish();
}

fn bench_row_compression_baseline(c: &mut Criterion) {
    use dash_common::row;
    let rows: Vec<dash_common::Row> = (0..8192)
        .map(|i| row![(i % 100) as i64, "STATUS-ACTIVE", (i % 7) as f64])
        .collect();
    let trained = RowCompressor::train(&rows);
    let mut group = c.benchmark_group("classic_row_compression");
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function("compressed_size", |b| {
        b.iter(|| trained.total_compressed(&rows))
    });
    group.finish();
}

criterion_group!(benches, bench_encode_decode, bench_row_compression_baseline);
criterion_main!(benches);

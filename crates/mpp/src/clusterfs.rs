//! The simulated clustered filesystem.
//!
//! "Although all files associated with the shard reside on a shared file
//! system, each shard has its own file set that is not shared. ... it is
//! similarly possible to re-associate shards from one host to another."
//!
//! Each shard's "file set" is an engine instance stored in this shared
//! map. Nodes *mount* file sets by shard id; because the map is shared,
//! any node can mount any shard — exactly the property that makes
//! failover, elasticity, and whole-cluster portability (copy the
//! filesystem, `docker run` elsewhere) work.
//!
//! The filesystem tracks which node currently holds each shard's mount
//! ([`ClusterFs::mount_for`]), so decommissioning a node can release its
//! file sets ([`ClusterFs::release_node`]) and a later mount by another
//! node is an explicit re-association, not an accident. Mount operations
//! pass through the [`dash_common::faults::CLUSTERFS_MOUNT`] failpoint.

use dash_common::faults::{FaultAction, FaultRegistry, CLUSTERFS_MOUNT};
use dash_common::ids::{NodeId, ShardId};
use dash_common::{DashError, Result};
use dash_core::Database;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One shard's persistent file set.
#[derive(Clone)]
pub struct ShardFileSet {
    /// The shard's engine (catalog + data).
    pub db: Arc<Database>,
}

impl std::fmt::Debug for ShardFileSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardFileSet").finish_non_exhaustive()
    }
}

/// One shard's mount record: the holding node plus the assignment epoch
/// under which the mount was (re-)associated. Epoch tags order competing
/// re-associations: a mount request carrying an older epoch than the
/// current record reads the file set without stealing the mount, so a
/// statement pinned to a pre-rebalance snapshot can never claw a shard
/// back from its new owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MountRecord {
    /// The node holding the mount.
    pub node: NodeId,
    /// The assignment epoch the mount was taken under.
    pub epoch: u64,
}

#[derive(Default)]
struct FsState {
    sets: BTreeMap<ShardId, ShardFileSet>,
    /// Which node currently holds each shard's mount (advisory — a mount
    /// by another node at the same or newer epoch re-associates the
    /// shard, mirroring the paper's clustered-FS semantics).
    mounts: BTreeMap<ShardId, MountRecord>,
}

/// The shared clustered filesystem: shard id → file set.
#[derive(Clone, Default)]
pub struct ClusterFs {
    state: Arc<RwLock<FsState>>,
    faults: FaultRegistry,
}

impl ClusterFs {
    /// An empty filesystem with a disarmed fault registry.
    pub fn new() -> ClusterFs {
        ClusterFs::default()
    }

    /// An empty filesystem whose mounts evaluate `faults`.
    pub fn with_faults(faults: FaultRegistry) -> ClusterFs {
        ClusterFs {
            state: Arc::default(),
            faults,
        }
    }

    /// Create a shard's file set. Errors if it already exists.
    pub fn create(&self, shard: ShardId, db: Arc<Database>) -> Result<()> {
        let mut st = self.state.write();
        if st.sets.contains_key(&shard) {
            return Err(DashError::already_exists("shard file set", shard.to_string()));
        }
        st.sets.insert(shard, ShardFileSet { db });
        Ok(())
    }

    fn check_mount_fault(&self, shard: ShardId) -> Result<()> {
        match self.faults.evaluate_scoped(CLUSTERFS_MOUNT, shard.0) {
            Some(FaultAction::Error(msg)) => Err(DashError::Storage(format!(
                "mount of {shard} failed: {msg}"
            ))),
            Some(FaultAction::Stall(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Mount a shard's file set anonymously (console tools, snapshots).
    pub fn mount(&self, shard: ShardId) -> Result<ShardFileSet> {
        self.check_mount_fault(shard)?;
        self.state
            .read()
            .sets
            .get(&shard)
            .cloned()
            .ok_or_else(|| DashError::not_found("shard file set", shard.to_string()))
    }

    /// Mount a shard's file set on behalf of `node`, recording (or
    /// re-associating) the mount at the shard's current epoch tag.
    pub fn mount_for(&self, shard: ShardId, node: NodeId) -> Result<ShardFileSet> {
        let epoch = self
            .state
            .read()
            .mounts
            .get(&shard)
            .map_or(0, |rec| rec.epoch);
        self.mount_for_epoch(shard, node, epoch)
    }

    /// Mount a shard's file set on behalf of `node` under assignment
    /// `epoch`. When the shard's current mount record carries a *newer*
    /// epoch, the caller is a statement still pinned to an old snapshot:
    /// it gets the file set (shared storage — reads stay valid) but the
    /// mount record is left with the newer owner.
    pub fn mount_for_epoch(&self, shard: ShardId, node: NodeId, epoch: u64) -> Result<ShardFileSet> {
        self.check_mount_fault(shard)?;
        let mut st = self.state.write();
        let set = st
            .sets
            .get(&shard)
            .cloned()
            .ok_or_else(|| DashError::not_found("shard file set", shard.to_string()))?;
        match st.mounts.get(&shard) {
            Some(rec) if rec.epoch > epoch => {}
            _ => {
                st.mounts.insert(shard, MountRecord { node, epoch });
            }
        }
        Ok(set)
    }

    /// The node currently holding `shard`'s mount, if any.
    pub fn mounted_by(&self, shard: ShardId) -> Option<NodeId> {
        self.state.read().mounts.get(&shard).map(|rec| rec.node)
    }

    /// The assignment epoch `shard`'s mount was last re-associated under.
    pub fn mount_epoch(&self, shard: ShardId) -> Option<u64> {
        self.state.read().mounts.get(&shard).map(|rec| rec.epoch)
    }

    /// Release every mount held by `node` (decommission). Returns how many
    /// file sets were released. The file sets themselves stay on the
    /// filesystem — that is the whole point of shared storage.
    pub fn release_node(&self, node: NodeId) -> usize {
        let mut st = self.state.write();
        let before = st.mounts.len();
        st.mounts.retain(|_, rec| rec.node != node);
        before - st.mounts.len()
    }

    /// All shard ids present on the filesystem.
    pub fn shards(&self) -> Vec<ShardId> {
        self.state.read().sets.keys().copied().collect()
    }

    /// Number of file sets.
    pub fn len(&self) -> usize {
        self.state.read().sets.len()
    }

    /// True when no shards exist.
    pub fn is_empty(&self) -> bool {
        self.state.read().sets.is_empty()
    }

    /// Snapshot the filesystem (cheap Arc clones — models the paper's
    /// "Cloud snapshot/availability zones" portability: the snapshot can
    /// seed a brand-new cluster with a different topology). Mount records
    /// are not copied — the new cluster mounts from scratch — and the
    /// snapshot's failpoints are disarmed.
    pub fn snapshot(&self) -> ClusterFs {
        ClusterFs {
            state: Arc::new(RwLock::new(FsState {
                sets: self.state.read().sets.clone(),
                mounts: BTreeMap::new(),
            })),
            faults: FaultRegistry::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_common::faults::FaultPolicy;
    use dash_core::HardwareSpec;

    #[test]
    fn create_mount_cycle() {
        let fs = ClusterFs::new();
        let db = Database::with_hardware(HardwareSpec::laptop());
        fs.create(ShardId(0), db).unwrap();
        assert!(fs.create(ShardId(0), Database::with_hardware(HardwareSpec::laptop())).is_err());
        assert!(fs.mount(ShardId(0)).is_ok());
        assert!(fs.mount(ShardId(1)).is_err());
        assert_eq!(fs.shards(), vec![ShardId(0)]);
    }

    #[test]
    fn mount_tracking_and_release() {
        let fs = ClusterFs::new();
        for s in 0..4 {
            fs.create(ShardId(s), Database::with_hardware(HardwareSpec::laptop()))
                .unwrap();
        }
        assert_eq!(fs.mounted_by(ShardId(0)), None, "anonymous until mounted");
        fs.mount_for(ShardId(0), NodeId(1)).unwrap();
        fs.mount_for(ShardId(1), NodeId(1)).unwrap();
        fs.mount_for(ShardId(2), NodeId(2)).unwrap();
        assert_eq!(fs.mounted_by(ShardId(0)), Some(NodeId(1)));
        // Re-association steals the mount.
        fs.mount_for(ShardId(0), NodeId(2)).unwrap();
        assert_eq!(fs.mounted_by(ShardId(0)), Some(NodeId(2)));
        // Decommission node 1: only its remaining mount is released.
        assert_eq!(fs.release_node(NodeId(1)), 1);
        assert_eq!(fs.mounted_by(ShardId(1)), None);
        assert_eq!(fs.mounted_by(ShardId(2)), Some(NodeId(2)));
    }

    #[test]
    fn stale_epoch_mount_reads_without_stealing() {
        let fs = ClusterFs::new();
        fs.create(ShardId(0), Database::with_hardware(HardwareSpec::laptop()))
            .unwrap();
        // Epoch 3: node 1 owns the mount (a committed rebalance).
        fs.mount_for_epoch(ShardId(0), NodeId(1), 3).unwrap();
        assert_eq!(fs.mount_epoch(ShardId(0)), Some(3));
        // A statement pinned to epoch 1 still reads the file set...
        assert!(fs.mount_for_epoch(ShardId(0), NodeId(0), 1).is_ok());
        // ...but cannot claw the mount back from the epoch-3 owner.
        assert_eq!(fs.mounted_by(ShardId(0)), Some(NodeId(1)));
        assert_eq!(fs.mount_epoch(ShardId(0)), Some(3));
        // Same-or-newer epochs re-associate as before.
        fs.mount_for_epoch(ShardId(0), NodeId(2), 3).unwrap();
        assert_eq!(fs.mounted_by(ShardId(0)), Some(NodeId(2)));
        fs.mount_for_epoch(ShardId(0), NodeId(0), 4).unwrap();
        assert_eq!(fs.mounted_by(ShardId(0)), Some(NodeId(0)));
        // Untagged mount_for re-associates at the current tag.
        fs.mount_for(ShardId(0), NodeId(1)).unwrap();
        assert_eq!(fs.mounted_by(ShardId(0)), Some(NodeId(1)));
        assert_eq!(fs.mount_epoch(ShardId(0)), Some(4));
    }

    #[test]
    fn injected_mount_fault_is_a_storage_error() {
        let reg = FaultRegistry::new();
        let fs = ClusterFs::with_faults(reg.clone());
        fs.create(ShardId(0), Database::with_hardware(HardwareSpec::laptop()))
            .unwrap();
        reg.arm(
            CLUSTERFS_MOUNT,
            FaultPolicy::OneShot,
            FaultAction::Error("stale NFS handle".into()),
        );
        let err = fs.mount_for(ShardId(0), NodeId(0)).unwrap_err();
        assert_eq!(err.class(), "58030", "{err}");
        assert_eq!(fs.mounted_by(ShardId(0)), None, "failed mount not recorded");
        // One-shot: the retry succeeds.
        assert!(fs.mount_for(ShardId(0), NodeId(0)).is_ok());
    }

    #[test]
    fn snapshot_shares_data_but_not_structure() {
        let fs = ClusterFs::new();
        let db = Database::with_hardware(HardwareSpec::laptop());
        let mut s = db.connect();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        s.execute("INSERT INTO t VALUES (42)").unwrap();
        fs.create(ShardId(0), db).unwrap();
        fs.mount_for(ShardId(0), NodeId(3)).unwrap();
        let snap = fs.snapshot();
        // New file sets on the original don't appear in the snapshot.
        fs.create(ShardId(1), Database::with_hardware(HardwareSpec::laptop()))
            .unwrap();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.mounted_by(ShardId(0)), None, "mounts are not copied");
        // But the snapshot sees the shard's data.
        let mounted = snap.mount(ShardId(0)).unwrap();
        let mut s2 = mounted.db.connect();
        assert_eq!(s2.query("SELECT x FROM t").unwrap().len(), 1);
    }
}

//! TPC-DS-like star schema and query set (Table 1, Test 3).
//!
//! A scaled-down rendition of the decision-support benchmark's core star:
//! a `store_sales` fact with the usual surrogate keys and measures, and
//! the `date_dim` / `item` / `store` dimensions. The query set covers the
//! benchmark's dominant shapes: date-windowed rollups, star joins with
//! dimension filters, and selective reporting slices.

use crate::gen::{history_start, rng, Zipf, CATEGORIES, HISTORY_DAYS};
use crate::spec::{Pred, QuerySpec, TableDef};
use dash_common::types::DataType;
use dash_common::{row, Datum, Field, Row, Schema};
use rand::Rng;

/// The generated benchmark bundle.
pub struct TpcdsWorkload {
    /// Tables to load (fact first).
    pub tables: Vec<TableDef>,
    /// The query set.
    pub queries: Vec<QuerySpec>,
}

/// Items in the item dimension per 1000 fact rows (min 20).
fn item_count(scale: usize) -> usize {
    (scale / 50).clamp(20, 20_000)
}

/// Stores in the store dimension.
fn store_count(scale: usize) -> usize {
    (scale / 2000).clamp(5, 500)
}

/// Generate at `scale` = store_sales row count.
pub fn generate(scale: usize) -> TpcdsWorkload {
    let mut r = rng(0xDECADE);
    let n_items = item_count(scale);
    let n_stores = store_count(scale);
    let item_zipf = Zipf::new(n_items, 1.05);

    // ---- store_sales ----
    let ss_schema = Schema::new(vec![
        Field::not_null("ss_ticket", DataType::Int64),
        Field::not_null("ss_sold_date", DataType::Date),
        Field::not_null("ss_item_sk", DataType::Int64),
        Field::not_null("ss_store_sk", DataType::Int64),
        Field::new("ss_quantity", DataType::Int32),
        Field::new("ss_sales_price", DataType::Float64),
        Field::new("ss_ext_discount", DataType::Float64),
        Field::new("ss_net_profit", DataType::Float64),
    ])
    .expect("schema");
    let mut ss_rows = Vec::with_capacity(scale);
    for i in 0..scale {
        let day = history_start() + ((i as i64 * HISTORY_DAYS as i64) / scale as i64) as i32;
        let price = r.gen_range(100..20_000) as f64 / 100.0;
        let qty = r.gen_range(1..20) as i64;
        ss_rows.push(row![
            i as i64,
            Datum::Date(day),
            item_zipf.sample(&mut r) as i64,
            r.gen_range(0..n_stores) as i64,
            qty,
            price,
            if i % 7 == 0 { price * 0.1 } else { 0.0 },
            price * qty as f64 * 0.2
        ]);
    }

    // ---- dimensions ----
    let item_schema = Schema::new(vec![
        Field::not_null("i_item_sk", DataType::Int64),
        Field::new("i_category", DataType::Utf8),
        Field::new("i_brand", DataType::Utf8),
        Field::new("i_current_price", DataType::Float64),
    ])
    .expect("schema");
    let item_rows: Vec<Row> = (0..n_items)
        .map(|i| {
            row![
                i as i64,
                CATEGORIES[i % CATEGORIES.len()],
                format!("brand-{:04}", i % 200),
                (i % 500) as f64 / 5.0
            ]
        })
        .collect();
    let store_schema = Schema::new(vec![
        Field::not_null("s_store_sk", DataType::Int64),
        Field::new("s_state", DataType::Utf8),
        Field::new("s_market", DataType::Int32),
    ])
    .expect("schema");
    let states = ["CA", "TX", "NY", "FL", "WA", "IL", "GA", "OH"];
    let store_rows: Vec<Row> = (0..n_stores)
        .map(|i| row![i as i64, states[i % states.len()], (i % 10) as i64])
        .collect();

    let tables = vec![
        TableDef {
            name: "store_sales".into(),
            schema: ss_schema,
            indexed: vec![0, 1], // ticket + date, the appliance's choices
            rows: ss_rows,
        },
        TableDef {
            name: "item".into(),
            schema: item_schema,
            indexed: vec![0],
            rows: item_rows,
        },
        TableDef {
            name: "store".into(),
            schema: store_schema,
            indexed: vec![0],
            rows: store_rows,
        },
    ];

    // ---- queries ----
    let recent = crate::gen::recent_window_start();
    let q4_start = history_start() + HISTORY_DAYS - 365;
    let queries = vec![
        // Q1: recent-quarter revenue by item category (star join).
        QuerySpec::JoinAgg {
            fact: "store_sales".into(),
            dim: "item".into(),
            fact_key: "ss_item_sk".into(),
            dim_key: "i_item_sk".into(),
            dim_label: "i_category".into(),
            value: "ss_sales_price".into(),
            predicates: vec![Pred::ge("ss_sold_date", Datum::Date(recent))],
        },
        // Q2: yearly profit by store state.
        QuerySpec::JoinAgg {
            fact: "store_sales".into(),
            dim: "store".into(),
            fact_key: "ss_store_sk".into(),
            dim_key: "s_store_sk".into(),
            dim_label: "s_state".into(),
            value: "ss_net_profit".into(),
            predicates: vec![Pred::ge("ss_sold_date", Datum::Date(q4_start))],
        },
        // Q3: full-history rollup by store (the heavy scan).
        QuerySpec::GroupAgg {
            table: "store_sales".into(),
            predicates: vec![],
            key: "ss_store_sk".into(),
            value: "ss_sales_price".into(),
        },
        // Q4: discount audit — selective predicate on a measure.
        QuerySpec::FilterScan {
            table: "store_sales".into(),
            predicates: vec![
                Pred::ge("ss_ext_discount", 10.0f64),
                Pred::ge("ss_sold_date", Datum::Date(recent)),
            ],
            projection: vec!["ss_ticket".into(), "ss_ext_discount".into()],
        },
        // Q5: one month's sales by item.
        QuerySpec::GroupAgg {
            table: "store_sales".into(),
            predicates: vec![Pred::between(
                "ss_sold_date",
                Datum::Date(recent),
                Datum::Date(recent + 30),
            )],
            key: "ss_item_sk".into(),
            value: "ss_quantity".into(),
        },
        // Q6: big-basket tickets (quantity slice over full history).
        QuerySpec::FilterScan {
            table: "store_sales".into(),
            predicates: vec![Pred::ge("ss_quantity", 18i64)],
            projection: vec!["ss_ticket".into(), "ss_quantity".into()],
        },
        // Q7: store revenue in the recent window (no join).
        QuerySpec::GroupAgg {
            table: "store_sales".into(),
            predicates: vec![Pred::ge("ss_sold_date", Datum::Date(recent))],
            key: "ss_store_sk".into(),
            value: "ss_net_profit".into(),
        },
        // Q8: category revenue across the full history (heavy star join).
        QuerySpec::JoinAgg {
            fact: "store_sales".into(),
            dim: "item".into(),
            fact_key: "ss_item_sk".into(),
            dim_key: "i_item_sk".into(),
            dim_label: "i_category".into(),
            value: "ss_net_profit".into(),
            predicates: vec![],
        },
        // Q9: most profitable recent tickets — the ordered reporting
        // slice (ORDER BY ... FETCH FIRST) that drives the sort pipeline;
        // the unique ticket column makes the cut deterministic.
        QuerySpec::TopN {
            table: "store_sales".into(),
            predicates: vec![Pred::ge("ss_sold_date", Datum::Date(recent))],
            projection: vec!["ss_ticket".into(), "ss_net_profit".into()],
            order_by: "ss_net_profit".into(),
            desc: true,
            n: 50,
        },
    ];
    TpcdsWorkload { tables, queries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_sizes() {
        let w = generate(5000);
        assert_eq!(w.tables.len(), 3);
        assert_eq!(w.tables[0].rows.len(), 5000);
        assert!(w.tables[1].rows.len() >= 20);
        assert_eq!(w.queries.len(), 9);
    }

    #[test]
    fn foreign_keys_resolve() {
        let w = generate(2000);
        let n_items = w.tables[1].rows.len() as i64;
        let n_stores = w.tables[2].rows.len() as i64;
        for r in &w.tables[0].rows {
            let item = r.get(2).as_int().unwrap();
            let store = r.get(3).as_int().unwrap();
            assert!((0..n_items).contains(&item));
            assert!((0..n_stores).contains(&store));
        }
    }

    #[test]
    fn item_popularity_is_skewed() {
        let w = generate(20_000);
        let mut counts = std::collections::HashMap::new();
        for r in &w.tables[0].rows {
            *counts.entry(r.get(2).as_int().unwrap()).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let avg = 20_000 / counts.len() as u32;
        assert!(max > avg * 5, "hot item {max} vs avg {avg}");
    }
}

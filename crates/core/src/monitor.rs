//! Statement monitoring counters.
//!
//! The Docker image ships a web console with database monitoring history;
//! this is the counter store behind such a console: per-statement-kind
//! counts and cumulative wall time, cheap enough to update on every
//! statement.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// One statement-kind's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KindStats {
    /// Statements executed.
    pub count: u64,
    /// Statements that failed.
    pub errors: u64,
    /// Cumulative execution wall time.
    pub total_time: Duration,
    /// Slowest single statement.
    pub max_time: Duration,
}

/// Recovery-path counters: what the resilient scatter-gather did to keep
/// a statement alive (retries, failovers) or to kill it cleanly
/// (deadline). The console view behind the Figure 9 repro.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Per-shard attempts retried after a transient fault.
    pub shard_retries: u64,
    /// Nodes declared dead and failed over mid-statement.
    pub failovers: u64,
    /// Shard attempts that stalled (injected or real stragglers).
    pub stragglers: u64,
    /// Statements cancelled because the per-statement deadline passed.
    pub deadline_kills: u64,
    /// Committed assignment-epoch bumps (every rebalance swap — failover,
    /// elastic grow/shrink, forced chaos rebalances). Metadata churn, not
    /// necessarily statement-visible.
    pub epoch_bumps: u64,
    /// Pending shards a statement re-drove under a newer assignment epoch
    /// than the one it had pinned (post-failover re-pin).
    pub stale_epoch_retries: u64,
    /// Scatter rounds whose work list mixed shards resolved from two
    /// different assignment epochs. Epoch pinning makes this structurally
    /// impossible; the counter is a regression tripwire and must stay 0.
    pub torn_epoch_rounds: u64,
}

impl RecoveryStats {
    /// True when no recovery action was ever taken.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryStats::default()
    }
}

/// The monitoring store.
#[derive(Clone, Default)]
pub struct Monitor {
    inner: Arc<Mutex<BTreeMap<&'static str, KindStats>>>,
    recovery: Arc<Mutex<RecoveryStats>>,
}

impl Monitor {
    /// Fresh store.
    pub fn new() -> Monitor {
        Monitor::default()
    }

    /// Record one executed statement.
    pub fn record(&self, kind: &'static str, elapsed: Duration, ok: bool) {
        let mut m = self.inner.lock();
        let e = m.entry(kind).or_default();
        e.count += 1;
        if !ok {
            e.errors += 1;
        }
        e.total_time += elapsed;
        e.max_time = e.max_time.max(elapsed);
    }

    /// Counters for one statement kind.
    pub fn stats(&self, kind: &str) -> KindStats {
        self.inner.lock().get(kind).copied().unwrap_or_default()
    }

    /// Snapshot of every kind, sorted by name.
    pub fn snapshot(&self) -> Vec<(&'static str, KindStats)> {
        self.inner.lock().iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Total statements across kinds.
    pub fn total_statements(&self) -> u64 {
        self.inner.lock().values().map(|v| v.count).sum()
    }

    /// Record a retried shard attempt.
    pub fn record_shard_retry(&self) {
        self.recovery.lock().shard_retries += 1;
    }

    /// Record a mid-statement node failover.
    pub fn record_failover(&self) {
        self.recovery.lock().failovers += 1;
    }

    /// Record a stalled (straggling) shard attempt.
    pub fn record_straggler(&self) {
        self.recovery.lock().stragglers += 1;
    }

    /// Record a statement killed by the per-statement deadline.
    pub fn record_deadline_kill(&self) {
        self.recovery.lock().deadline_kills += 1;
    }

    /// Record one committed assignment-epoch bump (a rebalance swap).
    pub fn record_epoch_bump(&self) {
        self.recovery.lock().epoch_bumps += 1;
    }

    /// Record `n` pending shards re-pinned to a newer assignment epoch.
    pub fn record_stale_epoch_retries(&self, n: u64) {
        self.recovery.lock().stale_epoch_retries += n;
    }

    /// Record a scatter round that mixed two assignment epochs (a bug).
    pub fn record_torn_epoch_round(&self) {
        self.recovery.lock().torn_epoch_rounds += 1;
    }

    /// Snapshot of the recovery counters.
    pub fn recovery(&self) -> RecoveryStats {
        *self.recovery.lock()
    }

    /// Render the monitoring history as a small report.
    pub fn report(&self) -> String {
        let mut out = String::from("statement     count   errors   total_ms   max_ms\n");
        for (k, s) in self.snapshot() {
            out.push_str(&format!(
                "{:<12} {:>6} {:>8} {:>10.1} {:>8.1}\n",
                k,
                s.count,
                s.errors,
                s.total_time.as_secs_f64() * 1e3,
                s.max_time.as_secs_f64() * 1e3,
            ));
        }
        let r = self.recovery();
        if !r.is_clean() {
            out.push_str(&format!(
                "recovery: {} shard retries, {} failovers, {} stragglers, {} deadline kills, \
                 {} epoch bumps, {} stale-epoch retries, {} torn-epoch rounds\n",
                r.shard_retries,
                r.failovers,
                r.stragglers,
                r.deadline_kills,
                r.epoch_bumps,
                r.stale_epoch_retries,
                r.torn_epoch_rounds,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let m = Monitor::new();
        m.record("SELECT", Duration::from_millis(10), true);
        m.record("SELECT", Duration::from_millis(30), false);
        m.record("INSERT", Duration::from_millis(1), true);
        let s = m.stats("SELECT");
        assert_eq!(s.count, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.max_time, Duration::from_millis(30));
        assert_eq!(m.total_statements(), 3);
        let rep = m.report();
        assert!(rep.contains("SELECT"));
        assert!(rep.contains("INSERT"));
    }

    #[test]
    fn unknown_kind_is_zero() {
        let m = Monitor::new();
        assert_eq!(m.stats("DROP"), KindStats::default());
    }

    #[test]
    fn recovery_counters_accumulate_and_share() {
        let m = Monitor::new();
        assert!(m.recovery().is_clean());
        let clone = m.clone();
        clone.record_shard_retry();
        clone.record_shard_retry();
        m.record_failover();
        m.record_straggler();
        m.record_deadline_kill();
        m.record_epoch_bump();
        m.record_stale_epoch_retries(3);
        let r = m.recovery();
        assert_eq!(r.shard_retries, 2);
        assert_eq!(r.failovers, 1);
        assert_eq!(r.stragglers, 1);
        assert_eq!(r.deadline_kills, 1);
        assert_eq!(r.epoch_bumps, 1);
        assert_eq!(r.stale_epoch_retries, 3);
        assert_eq!(r.torn_epoch_rounds, 0, "tripwire never fires in tests");
        assert!(m.report().contains("recovery:"));
    }
}

//! Criterion: grouped aggregation — the vectorized fast path against the
//! generic datum-at-a-time path, across group cardinalities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dash_common::{row, Field, Row, Schema};
use dash_exec::agg::{hash_aggregate, AggExpr, AggFunc};
use dash_exec::key::KeyMode;
use dash_exec::batch::Batch;
use dash_exec::expr::{ArithOp, Expr};
use dash_exec::functions::EvalContext;
use dash_exec::stats::ExecStats;

fn batch(n: usize, groups: usize) -> Batch {
    let schema = Schema::new(vec![
        Field::new("g", dash_common::DataType::Int64),
        Field::new("v", dash_common::DataType::Float64),
    ])
    .expect("schema");
    let rows: Vec<Row> = (0..n)
        .map(|i| row![(i % groups) as i64, (i % 101) as f64])
        .collect();
    Batch::from_rows(schema, &rows).expect("batch")
}

fn out_schema() -> Schema {
    Schema::new(vec![
        Field::new("g", dash_common::DataType::Int64),
        Field::new("cnt", dash_common::DataType::Int64),
        Field::new("total", dash_common::DataType::Float64),
    ])
    .expect("schema")
}

fn aggs() -> Vec<AggExpr> {
    vec![
        AggExpr {
            func: AggFunc::CountStar,
            args: vec![],
            distinct: false,
        },
        AggExpr {
            func: AggFunc::Sum,
            args: vec![Expr::col(1)],
            distinct: false,
        },
    ]
}

fn bench_groupby(c: &mut Criterion) {
    let n = 200_000usize;
    let ctx = EvalContext::default();
    let schema = out_schema();
    let mut group = c.benchmark_group("group_by");
    group.throughput(Throughput::Elements(n as u64));
    for cardinality in [4usize, 256, 16_384] {
        let b = batch(n, cardinality);
        // Fast path: bare column key.
        group.bench_with_input(
            BenchmarkId::new("vectorized", cardinality),
            &b,
            |bench, input| {
                bench.iter(|| {
                    let mut stats = ExecStats::default();
                    hash_aggregate(
                        input,
                        &[Expr::col(0)],
                        &aggs(),
                        schema.clone(),
                        &ctx,
                        KeyMode::Encoded,
                        1,
                        &mut stats,
                    )
                    .expect("agg")
                })
            },
        );
        // Generic path: key is an expression, which disqualifies the fast
        // path (g + 0 is semantically the same key).
        group.bench_with_input(
            BenchmarkId::new("generic", cardinality),
            &b,
            |bench, input| {
                let key = Expr::Arith(
                    ArithOp::Add,
                    Box::new(Expr::col(0)),
                    Box::new(Expr::lit(0i64)),
                );
                bench.iter(|| {
                    let mut stats = ExecStats::default();
                    hash_aggregate(
                        input,
                        std::slice::from_ref(&key),
                        &aggs(),
                        schema.clone(),
                        &ctx,
                        KeyMode::Encoded,
                        1,
                        &mut stats,
                    )
                    .expect("agg")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_groupby);
criterion_main!(benches);

//! Frequency-partitioned, order-preserving dictionaries.
//!
//! This is the paper's *frequency encoding* (§II.B.1): distinct values are
//! split into a small number of **frequency partitions**; the hottest values
//! land in partition 0 and get the narrowest codes ("data with the highest
//! frequency of occurrence are encoded with the shortest representation ...
//! as small as one bit"). Within each partition, codes are assigned in
//! *value order*, so codes are binary-comparable for `=`, `<`, `BETWEEN`
//! **within a partition** — the order-preserving property that enables
//! operating on compressed data (§II.B.2).
//!
//! Partition boundaries are chosen by a small dynamic program that minimizes
//! total encoded bits (code bits weighted by frequency), considering
//! boundaries at powers of two.

use crate::bitpack::bits_for;
use crate::histogram::Histogram;
use dash_common::fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::hash::Hash;

/// Maximum number of frequency partitions per dictionary.
pub const MAX_PARTITIONS: usize = 4;

/// One frequency partition: its values in *value order* and the code width.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition<T> {
    /// Values in ascending value order; a value's code is its index here.
    pub values: Vec<T>,
    /// Code width in bits (`bits_for(values.len() - 1)`).
    pub width: u8,
}

/// A frequency-partitioned order-preserving dictionary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FreqDict<T: Eq + Hash> {
    partitions: Vec<Partition<T>>,
    #[serde(skip)]
    lookup: FxHashMap<T, (u8, u64)>,
}

/// A (partition, code) pair identifying one dictionary entry.
pub type DictCode = (u8, u64);

impl<T: Eq + Hash + Clone + Ord> FreqDict<T> {
    /// Build a dictionary from a histogram.
    ///
    /// Values are tiered by frequency; each tier becomes a partition whose
    /// codes are assigned in value order. At most [`MAX_PARTITIONS`] tiers.
    pub fn build(hist: &Histogram<T>) -> FreqDict<T> {
        let by_freq = hist.by_frequency();
        let boundaries = choose_boundaries(&by_freq);
        let mut partitions = Vec::with_capacity(boundaries.len());
        let mut start = 0usize;
        for &end in &boundaries {
            let mut values: Vec<T> = by_freq[start..end].iter().map(|(v, _)| v.clone()).collect();
            values.sort();
            let width = bits_for(values.len().saturating_sub(1) as u64);
            partitions.push(Partition { values, width });
            start = end;
        }
        if partitions.is_empty() {
            partitions.push(Partition {
                values: Vec::new(),
                width: 0,
            });
        }
        let mut dict = FreqDict {
            partitions,
            lookup: FxHashMap::default(),
        };
        dict.rebuild_lookup();
        dict
    }

    /// Rebuild the encode-side hash map (needed after deserialization since
    /// the lookup is not serialized).
    pub fn rebuild_lookup(&mut self) {
        self.lookup.clear();
        for (p, part) in self.partitions.iter().enumerate() {
            for (c, v) in part.values.iter().enumerate() {
                self.lookup.insert(v.clone(), (p as u8, c as u64));
            }
        }
    }

    /// The partitions, hottest first.
    pub fn partitions(&self) -> &[Partition<T>] {
        &self.partitions
    }

    /// Number of partitions (excluding the per-block exception bank, which
    /// is a block-level concept).
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of dictionary entries.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.values.len()).sum()
    }

    /// True if the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encode a value. `None` if the value is not in the dictionary (the
    /// block encoder will route it to the exception bank).
    #[inline]
    pub fn encode(&self, value: &T) -> Option<DictCode> {
        self.lookup.get(value).copied()
    }

    /// Decode a (partition, code) pair.
    ///
    /// # Panics
    /// Panics on an out-of-range partition or code (indicates corruption).
    #[inline]
    pub fn decode(&self, part: u8, code: u64) -> &T {
        &self.partitions[part as usize].values[code as usize]
    }

    /// For a range predicate `lo..=hi` (either bound optional), the
    /// qualifying *code* range within partition `p`, or `None` if no value
    /// of that partition qualifies. Because codes are assigned in value
    /// order within the partition, the qualifying codes are contiguous.
    pub fn code_bounds(
        &self,
        part: usize,
        lo: Option<&T>,
        hi: Option<&T>,
    ) -> Option<(u64, u64)> {
        let values = &self.partitions[part].values;
        if values.is_empty() {
            return None;
        }
        let start = match lo {
            Some(lo) => values.partition_point(|v| v < lo),
            None => 0,
        };
        let end = match hi {
            Some(hi) => values.partition_point(|v| v <= hi),
            None => values.len(),
        };
        if start >= end {
            None
        } else {
            Some((start as u64, end as u64 - 1))
        }
    }

    /// Smallest and largest value across all partitions (for synopsis use).
    pub fn min_max(&self) -> Option<(&T, &T)> {
        let mut min: Option<&T> = None;
        let mut max: Option<&T> = None;
        for p in &self.partitions {
            if let (Some(first), Some(last)) = (p.values.first(), p.values.last()) {
                min = Some(match min {
                    Some(m) if m <= first => m,
                    _ => first,
                });
                max = Some(match max {
                    Some(m) if m >= last => m,
                    _ => last,
                });
            }
        }
        min.zip(max)
    }

    /// Width of the selector vector needed to tag a value's partition,
    /// reserving one extra tag for the block-level exception bank.
    pub fn selector_width(&self) -> u8 {
        bits_for(self.partitions.len() as u64) // exception tag == partitions.len()
    }

    /// Estimated in-memory dictionary size in bytes (values + lookup).
    pub fn approx_size_bytes(&self) -> usize
    where
        T: DictSized,
    {
        self.partitions
            .iter()
            .flat_map(|p| p.values.iter())
            .map(|v| v.dict_size())
            .sum::<usize>()
    }
}

/// Bits reserved for the in-partition code in a [`pack_code`] word; the
/// partition selector occupies the byte above.
pub const PACK_CODE_BITS: u32 = 56;

/// Pack a [`DictCode`] into one fixed-width `u64` key word.
///
/// The partition selector, biased by one so packed words never collide
/// with the join-local intern range (which has the top bit set), occupies
/// the top byte; the in-partition code fills the low 56 bits. Packing is
/// injective over a dictionary's codes, so two packed words from the same
/// dictionary are equal exactly when they name the same entry — the
/// property hash join and grouping rely on to compare keys without
/// decoding.
#[inline]
pub fn pack_code((part, code): DictCode) -> u64 {
    debug_assert!(code < 1 << PACK_CODE_BITS, "dictionary code overflows pack width");
    ((part as u64 + 1) << PACK_CODE_BITS) | code
}

/// Unpack a word produced by [`pack_code`] back into its [`DictCode`].
#[inline]
pub fn unpack_code(word: u64) -> DictCode {
    (
        ((word >> PACK_CODE_BITS) - 1) as u8,
        word & ((1 << PACK_CODE_BITS) - 1),
    )
}

impl<T: Eq + Hash + Clone + Ord> FreqDict<T> {
    /// Compare two entries of *this* dictionary by value order. Within one
    /// partition codes are value-ordered and compare directly; across
    /// partitions the frequency tiers interleave the value domain, so the
    /// decoded values are consulted.
    pub fn compare_codes(&self, a: DictCode, b: DictCode) -> std::cmp::Ordering {
        if a.0 == b.0 {
            a.1.cmp(&b.1)
        } else {
            self.decode(a.0, a.1).cmp(self.decode(b.0, b.1))
        }
    }

    /// Translate a code from `from`'s code domain into this dictionary's —
    /// the "re-encode the smaller side" rule: instead of decoding the
    /// larger side of a join, the smaller side's codes are mapped into the
    /// larger side's code space. `None` when the value is absent here.
    pub fn translate_code(&self, from: &FreqDict<T>, code: DictCode) -> Option<DictCode> {
        self.encode(from.decode(code.0, code.1))
    }
}

/// Size accounting for dictionary entries.
pub trait DictSized {
    /// Approximate heap bytes for one entry.
    fn dict_size(&self) -> usize;
}

impl DictSized for u64 {
    fn dict_size(&self) -> usize {
        8
    }
}

impl DictSized for std::sync::Arc<str> {
    fn dict_size(&self) -> usize {
        16 + self.len()
    }
}

/// Choose partition boundaries over the frequency-sorted distinct values.
///
/// Dynamic program: candidate boundaries sit at powers of two (1, 2, 4, ...,
/// D); we pick at most [`MAX_PARTITIONS`] segments minimizing
/// `Σ_segments (code_width(segment) + selector_overhead) · occurrences`.
/// Returns the chosen cumulative end indices (last one == D).
fn choose_boundaries<T>(by_freq: &[(T, u64)]) -> Vec<usize> {
    let d = by_freq.len();
    if d == 0 {
        return vec![];
    }
    // Prefix sums of occurrence counts.
    let mut prefix = vec![0u64; d + 1];
    for (i, (_, c)) in by_freq.iter().enumerate() {
        prefix[i + 1] = prefix[i] + c;
    }
    // Candidate boundary positions: powers of two plus D itself.
    let mut cands: Vec<usize> = Vec::new();
    let mut p = 1usize;
    while p < d {
        cands.push(p);
        p *= 2;
    }
    cands.push(d);

    // cost(a, b): encode values [a, b) as one partition.
    let seg_cost = |a: usize, b: usize| -> u64 {
        let width = bits_for((b - a - 1) as u64) as u64;
        let occurrences = prefix[b] - prefix[a];
        width * occurrences
    };

    // DP over (#partitions used, boundary index).
    let nc = cands.len();
    let inf = u64::MAX;
    // best[k][j] = min cost covering [0, cands[j]) with k+1 partitions.
    let mut best = vec![vec![inf; nc]; MAX_PARTITIONS];
    let mut from = vec![vec![usize::MAX; nc]; MAX_PARTITIONS];
    for j in 0..nc {
        best[0][j] = seg_cost(0, cands[j]);
    }
    for k in 1..MAX_PARTITIONS {
        for j in 0..nc {
            for i in 0..j {
                if best[k - 1][i] == inf {
                    continue;
                }
                let c = best[k - 1][i] + seg_cost(cands[i], cands[j]);
                if c < best[k][j] {
                    best[k][j] = c;
                    from[k][j] = i;
                }
            }
        }
    }
    // Selector overhead: with k+1 partitions the selector vector costs
    // bits_for(k+1) bits per occurrence (the +1 reserves the exception tag).
    let total = prefix[d];
    let last = nc - 1;
    let mut best_k = 0;
    let mut best_total = inf;
    for (k, row) in best.iter().enumerate() {
        if row[last] == inf {
            continue;
        }
        let sel = bits_for((k + 1) as u64) as u64 * total;
        let t = row[last] + sel;
        if t < best_total {
            best_total = t;
            best_k = k;
        }
    }
    // Walk back the chosen boundaries.
    let mut bounds = vec![cands[last]];
    let mut k = best_k;
    let mut j = last;
    while k > 0 {
        j = from[k][j];
        bounds.push(cands[j]);
        k -= 1;
    }
    bounds.reverse();
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn skewed_hist() -> Histogram<u64> {
        // Two ultra-hot values, a warm tier, and a cold long tail.
        let mut h = Histogram::new();
        for _ in 0..5000 {
            h.add(&100);
        }
        for _ in 0..4000 {
            h.add(&50);
        }
        for v in 0..30u64 {
            for _ in 0..40 {
                h.add(&(200 + v));
            }
        }
        for v in 0..500u64 {
            h.add(&(1000 + v));
        }
        h
    }

    #[test]
    fn hot_values_get_short_codes() {
        let dict = FreqDict::build(&skewed_hist());
        let (p_hot, _) = dict.encode(&100).unwrap();
        let (p_cold, _) = dict.encode(&1250).unwrap();
        assert!(p_hot < p_cold, "hot value must be in an earlier partition");
        let hot_width = dict.partitions()[p_hot as usize].width;
        let cold_width = dict.partitions()[p_cold as usize].width;
        assert!(
            hot_width < cold_width,
            "hot width {hot_width} !< cold width {cold_width}"
        );
        assert!(hot_width <= 2, "two hot values should need <= 2 bits (got {hot_width})");
    }

    #[test]
    fn order_preserving_within_partition() {
        let dict = FreqDict::build(&skewed_hist());
        for part in dict.partitions() {
            for w in part.values.windows(2) {
                assert!(w[0] < w[1], "partition values must be sorted");
            }
        }
        // Codes within a partition compare like values.
        let (p1, c1) = dict.encode(&1000).unwrap();
        let (p2, c2) = dict.encode(&1499).unwrap();
        if p1 == p2 {
            assert!(c1 < c2);
        }
    }

    #[test]
    fn roundtrip_all_values() {
        let h = skewed_hist();
        let dict = FreqDict::build(&h);
        for (v, _) in h.by_frequency() {
            let (p, c) = dict.encode(&v).unwrap();
            assert_eq!(*dict.decode(p, c), v);
        }
        assert_eq!(dict.encode(&999_999), None);
    }

    #[test]
    fn code_bounds_semantics() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50] {
            h.add(&v);
        }
        let dict = FreqDict::build(&h);
        // Sum qualifying codes across partitions for a value range.
        let qualifying = |lo: Option<u64>, hi: Option<u64>| -> u64 {
            (0..dict.partition_count())
                .filter_map(|p| dict.code_bounds(p, lo.as_ref(), hi.as_ref()))
                .map(|(a, b)| b - a + 1)
                .sum()
        };
        assert_eq!(qualifying(None, None), 5);
        assert_eq!(qualifying(Some(20), Some(40)), 3); // 20, 30, 40
        assert_eq!(qualifying(Some(55), None), 0);
        assert_eq!(qualifying(Some(15), Some(19)), 0);
        // Bounds between values (25..=35) qualify only 30.
        assert_eq!(qualifying(Some(25), Some(35)), 1);
    }

    #[test]
    fn min_max_spans_partitions() {
        let dict = FreqDict::build(&skewed_hist());
        let (min, max) = dict.min_max().unwrap();
        assert_eq!(*min, 50);
        assert_eq!(*max, 1499);
    }

    #[test]
    fn empty_histogram() {
        let h: Histogram<u64> = Histogram::new();
        let dict = FreqDict::build(&h);
        assert!(dict.is_empty());
        assert_eq!(dict.encode(&1), None);
        assert_eq!(dict.min_max(), None);
    }

    #[test]
    fn single_value_zero_width() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.add(&7u64);
        }
        let dict = FreqDict::build(&h);
        assert_eq!(dict.partition_count(), 1);
        assert_eq!(dict.partitions()[0].width, 0, "single value needs 0 bits");
    }

    #[test]
    fn pack_unpack_roundtrip_and_disjoint_ranges() {
        for part in 0..MAX_PARTITIONS as u8 {
            for code in [0u64, 1, 255, (1 << PACK_CODE_BITS) - 1] {
                let w = pack_code((part, code));
                assert_eq!(unpack_code(w), (part, code));
                assert_eq!(w >> 63, 0, "packed words leave the top bit clear");
                assert_ne!(w, 0, "packed words are never zero");
            }
        }
    }

    #[test]
    fn compare_codes_matches_value_order() {
        let dict = FreqDict::build(&skewed_hist());
        let vals: Vec<u64> = vec![50, 100, 205, 1000, 1499];
        for a in &vals {
            for b in &vals {
                let ca = dict.encode(a).unwrap();
                let cb = dict.encode(b).unwrap();
                assert_eq!(dict.compare_codes(ca, cb), a.cmp(b), "{a} vs {b}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_translate_code_roundtrips(values in prop::collection::vec(0u64..500, 1..300)) {
            // Two dictionaries over the same values with different frequency
            // shapes: codes differ, but translating build-side codes into
            // the probe side's domain and back must be the identity.
            let h1 = Histogram::from_values(values.iter().map(Some));
            let mut skew = values.clone();
            skew.extend(values.iter().filter(|v| **v % 3 == 0));
            let h2 = Histogram::from_values(skew.iter().map(Some));
            let d1 = FreqDict::build(&h1);
            let d2 = FreqDict::build(&h2);
            for v in &values {
                let c1 = d1.encode(v).unwrap();
                let c2 = d2.translate_code(&d1, c1).expect("value present in both");
                prop_assert_eq!(d2.decode(c2.0, c2.1), v);
                prop_assert_eq!(d1.translate_code(&d2, c2), Some(c1));
                // The packed forms stay within their own dictionary's domain.
                prop_assert_eq!(unpack_code(pack_code(c2)), c2);
            }
        }

        #[test]
        fn prop_encode_decode_roundtrip(values in prop::collection::vec(0u64..1000, 1..400)) {
            let h = Histogram::from_values(values.iter().map(Some));
            let dict = FreqDict::build(&h);
            for v in &values {
                let (p, c) = dict.encode(v).expect("value present");
                prop_assert_eq!(dict.decode(p, c), v);
            }
        }

        #[test]
        fn prop_code_bounds_sound_and_complete(
            values in prop::collection::vec(0u64..200, 1..300),
            lo in 0u64..200,
            span in 0u64..100,
        ) {
            let hi = lo + span;
            let h = Histogram::from_values(values.iter().map(Some));
            let dict = FreqDict::build(&h);
            for v in &values {
                let (p, c) = dict.encode(v).unwrap();
                let in_range = *v >= lo && *v <= hi;
                let bounds = dict.code_bounds(p as usize, Some(&lo), Some(&hi));
                let qualifies = bounds.is_some_and(|(a, b)| c >= a && c <= b);
                prop_assert_eq!(in_range, qualifies, "value {} range [{},{}]", v, lo, hi);
            }
        }
    }
}

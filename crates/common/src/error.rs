//! The common error type shared across all dashdb-local-rs crates.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T, E = DashError> = std::result::Result<T, E>;

/// The error type produced by every layer of the system.
///
/// Lower layers use the structured variants; the SQL front-end attaches
/// statement context via [`DashError::with_context`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DashError {
    /// SQL text failed to lex/parse. Carries position and message.
    Parse {
        /// Human-readable description of the syntax problem.
        message: String,
        /// Byte offset into the statement where the problem was detected.
        offset: usize,
    },
    /// Statement is syntactically valid but semantically wrong
    /// (unknown column, type mismatch, ...).
    Analysis(String),
    /// A catalog object was not found.
    NotFound {
        /// Object kind, e.g. "table", "column", "schema", "node".
        kind: &'static str,
        /// Object name as referenced.
        name: String,
    },
    /// A catalog object already exists.
    AlreadyExists {
        /// Object kind.
        kind: &'static str,
        /// Object name.
        name: String,
    },
    /// Runtime execution error (overflow, division by zero, cast failure...).
    Execution(String),
    /// Storage-layer failure (page corruption, out-of-space, codec misuse).
    Storage(String),
    /// Constraint violation (uniqueness — the only index kind BLU allows).
    Constraint(String),
    /// Cluster-level failure (node down, shard unavailable, quorum loss).
    Cluster(String),
    /// The feature is recognized but not supported by this engine build.
    Unsupported(String),
    /// Internal invariant violation — indicates a bug, never user error.
    Internal(String),
    /// The statement was cancelled by the workload manager or the user.
    Cancelled,
    /// The statement exceeded a resource budget (memory, admission wait)
    /// and was refused further growth rather than degrading the system.
    ResourceExhausted(String),
    /// First-writer-wins serialization failure: the row this transaction
    /// tried to delete/update was already written by a concurrent
    /// transaction. The statement (or transaction) should be retried.
    WriteConflict(String),
}

impl DashError {
    /// Construct a parse error at a byte offset.
    pub fn parse(message: impl Into<String>, offset: usize) -> Self {
        DashError::Parse {
            message: message.into(),
            offset,
        }
    }

    /// Construct an analysis (semantic) error.
    pub fn analysis(message: impl Into<String>) -> Self {
        DashError::Analysis(message.into())
    }

    /// Construct an execution error.
    pub fn exec(message: impl Into<String>) -> Self {
        DashError::Execution(message.into())
    }

    /// Construct a not-found error.
    pub fn not_found(kind: &'static str, name: impl Into<String>) -> Self {
        DashError::NotFound {
            kind,
            name: name.into(),
        }
    }

    /// Construct an already-exists error.
    pub fn already_exists(kind: &'static str, name: impl Into<String>) -> Self {
        DashError::AlreadyExists {
            kind,
            name: name.into(),
        }
    }

    /// Construct an internal-invariant error.
    pub fn internal(message: impl Into<String>) -> Self {
        DashError::Internal(message.into())
    }

    /// Construct an unsupported-feature error.
    pub fn unsupported(message: impl Into<String>) -> Self {
        DashError::Unsupported(message.into())
    }

    /// Construct a resource-exhausted (budget) error.
    pub fn resource_exhausted(message: impl Into<String>) -> Self {
        DashError::ResourceExhausted(message.into())
    }

    /// Construct a write-write conflict (serialization failure) error.
    pub fn write_conflict(message: impl Into<String>) -> Self {
        DashError::WriteConflict(message.into())
    }

    /// Prefix the error message with statement-level context.
    pub fn with_context(self, ctx: &str) -> Self {
        match self {
            DashError::Execution(m) => DashError::Execution(format!("{ctx}: {m}")),
            DashError::Analysis(m) => DashError::Analysis(format!("{ctx}: {m}")),
            DashError::Storage(m) => DashError::Storage(format!("{ctx}: {m}")),
            other => other,
        }
    }

    /// SQLSTATE-like class code, used by tests and the console to classify
    /// failures without string matching.
    pub fn class(&self) -> &'static str {
        match self {
            DashError::Parse { .. } => "42601",
            DashError::Analysis(_) => "42000",
            DashError::NotFound { .. } => "42704",
            DashError::AlreadyExists { .. } => "42710",
            DashError::Execution(_) => "22000",
            DashError::Storage(_) => "58030",
            DashError::Constraint(_) => "23505",
            DashError::Cluster(_) => "57011",
            DashError::Unsupported(_) => "0A000",
            DashError::Internal(_) => "XX000",
            DashError::Cancelled => "57014",
            // Out-of-memory class, distinct from the transient cluster
            // class 57011 so the scatter retry loop never retries a
            // budget refusal (the budget is per-statement: a retry would
            // fail identically).
            DashError::ResourceExhausted(_) => "53200",
            // Standard serialization-failure class: clients are expected
            // to retry the whole transaction.
            DashError::WriteConflict(_) => "40001",
        }
    }
}

impl fmt::Display for DashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DashError::Parse { message, offset } => {
                write!(f, "syntax error at offset {offset}: {message}")
            }
            DashError::Analysis(m) => write!(f, "semantic error: {m}"),
            DashError::NotFound { kind, name } => write!(f, "{kind} \"{name}\" not found"),
            DashError::AlreadyExists { kind, name } => {
                write!(f, "{kind} \"{name}\" already exists")
            }
            DashError::Execution(m) => write!(f, "execution error: {m}"),
            DashError::Storage(m) => write!(f, "storage error: {m}"),
            DashError::Constraint(m) => write!(f, "constraint violation: {m}"),
            DashError::Cluster(m) => write!(f, "cluster error: {m}"),
            DashError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DashError::Internal(m) => write!(f, "internal error (bug): {m}"),
            DashError::Cancelled => write!(f, "statement cancelled"),
            DashError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            DashError::WriteConflict(m) => write!(f, "write conflict: {m}"),
        }
    }
}

impl std::error::Error for DashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_class() {
        let e = DashError::not_found("table", "T1");
        assert_eq!(e.to_string(), "table \"T1\" not found");
        assert_eq!(e.class(), "42704");
        assert_eq!(DashError::Cancelled.class(), "57014");
        let oom = DashError::resource_exhausted("hash table over budget");
        assert_eq!(oom.class(), "53200");
        assert_eq!(
            oom.to_string(),
            "resource exhausted: hash table over budget"
        );
    }

    #[test]
    fn context_prefixing() {
        let e = DashError::exec("division by zero").with_context("query Q42");
        assert_eq!(
            e.to_string(),
            "execution error: query Q42: division by zero"
        );
        // NotFound is not prefixed (context would hide the object name).
        let e2 = DashError::not_found("column", "C").with_context("x");
        assert_eq!(e2, DashError::not_found("column", "C"));
    }
}

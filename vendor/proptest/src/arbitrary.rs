//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Arbitrary **finite** f64 from uniform bit patterns (NaN and the
    /// infinities are rerolled; they are out of scope for this stand-in).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        loop {
            let v = f64::from_bits(rng.next_u64());
            if v.is_finite() {
                return v;
            }
        }
    }
}

impl Arbitrary for f32 {
    /// Arbitrary finite f32; see the f64 impl.
    fn arbitrary(rng: &mut TestRng) -> f32 {
        loop {
            let v = f32::from_bits(rng.next_u64() as u32);
            if v.is_finite() {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_are_finite() {
        let mut rng = TestRng::deterministic("floats");
        for _ in 0..1000 {
            assert!(f64::arbitrary(&mut rng).is_finite());
            assert!(f32::arbitrary(&mut rng).is_finite());
        }
    }

    #[test]
    fn ints_cover_sign_bit() {
        let mut rng = TestRng::deterministic("ints");
        let mut saw_neg = false;
        let mut saw_pos = false;
        for _ in 0..200 {
            let v = i64::arbitrary(&mut rng);
            saw_neg |= v < 0;
            saw_pos |= v > 0;
        }
        assert!(saw_neg && saw_pos);
    }
}

//! Strongly-typed identifiers used across the engine and cluster layers.
//!
//! Using newtypes instead of raw `usize` prevents the classic bug class of
//! passing a shard id where a node id is expected (and vice versa) — which
//! matters a lot in the HA/elasticity code where both are in flight.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw numeric value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }
    };
}

id_type!(
    /// A table in the catalog.
    TableId,
    "table#"
);
id_type!(
    /// A column within a table (ordinal position).
    ColumnId,
    "col#"
);
id_type!(
    /// A hash shard (data partition). The paper provisions several shards
    /// per server so they can be re-associated on failover (Fig 9).
    ShardId,
    "shard#"
);
id_type!(
    /// A physical server/container in the MPP cluster.
    NodeId,
    "node#"
);
id_type!(
    /// A storage page.
    PageId,
    "page#"
);
id_type!(
    /// A user session.
    SessionId,
    "session#"
);
id_type!(
    /// An analytics (Spark-substitute) job.
    JobId,
    "job#"
);

/// A tuple sequence number: the logical position of a row within a shard's
/// column-organized table. TSNs tie together the per-column pages of a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tsn(pub u64);

impl Tsn {
    /// The stride (1 K tuples in the paper) this TSN falls into.
    #[inline]
    pub fn stride(self, stride_len: usize) -> usize {
        (self.0 as usize) / stride_len
    }
}

impl fmt::Display for Tsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tsn:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ShardId(3).to_string(), "shard#3");
        assert_eq!(NodeId(0).to_string(), "node#0");
        assert_eq!(Tsn(1024).to_string(), "tsn:1024");
    }

    #[test]
    fn tsn_stride_mapping() {
        assert_eq!(Tsn(0).stride(1024), 0);
        assert_eq!(Tsn(1023).stride(1024), 0);
        assert_eq!(Tsn(1024).stride(1024), 1);
    }

    #[test]
    fn ids_are_distinct_types() {
        // Compile-time property; runtime check that conversions work.
        let s: ShardId = 5usize.into();
        let n: NodeId = 5u32.into();
        assert_eq!(s.index(), n.index());
    }
}

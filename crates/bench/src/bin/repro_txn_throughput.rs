//! Commit throughput under group commit (ISSUE 7).
//!
//! N sessions hammer single-row transactions against a durable database
//! at three group-commit windows — disabled (0µs), the default (100µs),
//! and a wide 1000µs — and the run records commits/sec alongside the
//! *durability cost*: WAL fsyncs per committed transaction. On fast
//! local storage the wall-clock difference between configurations is
//! modest (an fsync to page cache is cheap); the fsync amortization is
//! the durable signal, because on a real disk every fsync is a device
//! round-trip and `fsyncs_per_commit` is the lower bound on commit
//! latency. Results land in `BENCH_txn.json`.

use dash_bench::{report, section};
use dash_common::faults::FaultRegistry;
use dash_core::{Database, HardwareSpec};
use dash_storage::wal::SyncPolicy;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Barrier;
use std::time::{Duration, Instant};

const STREAMS: usize = 8;
const TXNS_PER_STREAM: usize = 100;
const WINDOWS_US: [u64; 3] = [0, 100, 1000];

struct Run {
    window_us: u64,
    elapsed_s: f64,
    commits: u64,
    commits_per_s: f64,
    wal_fsyncs: u64,
    group_commit_batches: u64,
    fsyncs_per_commit: f64,
    avg_batch: f64,
}

fn bench_dir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dash-bench-txn-{tag}us-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_window(window_us: u64) -> Run {
    let dir = bench_dir(window_us);
    let db = Database::open_with(
        dir.clone(),
        HardwareSpec::laptop(),
        SyncPolicy::Commit,
        FaultRegistry::new(),
    )
    .expect("open durable database");
    db.set_group_commit_window(Duration::from_micros(window_us));
    {
        let mut s = db.connect();
        s.execute("CREATE TABLE hammer (k BIGINT NOT NULL, v BIGINT NOT NULL)")
            .expect("create");
        s.close();
    }
    // Only the streams' own commits should count, so snapshot the
    // monitor before the measured section and diff afterwards.
    let before = db.monitor().txn();

    let barrier = Barrier::new(STREAMS + 1);
    let elapsed_s = std::thread::scope(|scope| {
        for t in 0..STREAMS {
            let (db, barrier) = (&db, &barrier);
            scope.spawn(move || {
                let mut s = db.connect();
                barrier.wait();
                for i in 0..TXNS_PER_STREAM {
                    let k = (t * 1_000_000 + i) as i64;
                    s.execute("BEGIN").expect("begin");
                    s.execute(&format!("INSERT INTO hammer VALUES ({k}, {})", k * 2))
                        .expect("insert");
                    s.execute("COMMIT").expect("commit");
                }
                s.close();
            });
        }
        barrier.wait();
        // Scope exit joins every stream, so `.elapsed()` outside the
        // scope measures the full run.
        Instant::now()
    })
    .elapsed()
    .as_secs_f64();

    let after = db.monitor().txn();
    let commits = after.txn_commits - before.txn_commits;
    assert_eq!(
        commits,
        (STREAMS * TXNS_PER_STREAM) as u64,
        "every transaction must commit"
    );
    let wal_fsyncs = after.wal_fsyncs - before.wal_fsyncs;
    let batches = after.group_commit_batches - before.group_commit_batches;
    let _ = std::fs::remove_dir_all(&dir);
    Run {
        window_us,
        elapsed_s,
        commits,
        commits_per_s: commits as f64 / elapsed_s,
        wal_fsyncs,
        group_commit_batches: batches,
        fsyncs_per_commit: wal_fsyncs as f64 / commits as f64,
        avg_batch: commits as f64 / batches.max(1) as f64,
    }
}

fn main() {
    println!("Commit throughput / group commit reproduction — dashdb-local-rs");
    println!("{STREAMS} streams x {TXNS_PER_STREAM} single-row transactions, SyncPolicy::Commit");

    let mut runs = Vec::new();
    for &w in &WINDOWS_US {
        section(&format!("group-commit window {w}us"));
        let r = run_window(w);
        report(
            "throughput",
            format!(
                "{:>8.0} commits/s  ({} commits in {:.3}s)",
                r.commits_per_s, r.commits, r.elapsed_s
            ),
        );
        report(
            "durability cost",
            format!(
                "{} fsyncs, {} batches, {:.3} fsyncs/commit, avg batch {:.1}",
                r.wal_fsyncs, r.group_commit_batches, r.fsyncs_per_commit, r.avg_batch
            ),
        );
        runs.push(r);
    }

    section("shape checks");
    let base = &runs[0];
    let tuned = runs.iter().find(|r| r.window_us == 100).unwrap();
    report(
        "default window amortizes fsyncs (fsyncs < commits)",
        if tuned.wal_fsyncs < tuned.commits { "PASS" } else { "FAIL" },
    );
    report(
        "wider window means fewer fsyncs per commit",
        if runs.last().unwrap().fsyncs_per_commit <= base.fsyncs_per_commit {
            "PASS"
        } else {
            "FAIL"
        },
    );
    report(
        "every configuration commits every transaction",
        if runs.iter().all(|r| r.commits == (STREAMS * TXNS_PER_STREAM) as u64) {
            "PASS"
        } else {
            "FAIL"
        },
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"txn_throughput\",\n");
    let _ = write!(
        json,
        "  \"streams\": {STREAMS},\n  \"txns_per_stream\": {TXNS_PER_STREAM},\n  \"sync_policy\": \"commit\",\n"
    );
    json.push_str(
        "  \"note\": \"Single-row transactions from concurrent sessions against a durable \
         WAL. wal_fsyncs counts commit-path syncs only (group-commit batches); \
         fsyncs_per_commit is the durability cost a real device would charge per \
         transaction, which the batching window amortizes. Wall-clock throughput on \
         page-cache-backed temp storage understates the on-disk benefit.\",\n",
    );
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"group_commit_window_us\": {}, \"elapsed_s\": {:.6}, \"commits\": {}, \
             \"commits_per_s\": {:.1}, \"wal_fsyncs\": {}, \"group_commit_batches\": {}, \
             \"fsyncs_per_commit\": {:.4}, \"avg_batch_size\": {:.2}}}{}",
            r.window_us,
            r.elapsed_s,
            r.commits,
            r.commits_per_s,
            r.wal_fsyncs,
            r.group_commit_batches,
            r.fsyncs_per_commit,
            r.avg_batch,
            if i + 1 == runs.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_txn.json", &json).expect("write BENCH_txn.json");
    println!("\nwrote BENCH_txn.json");
}

//! Data-skipping synopsis (§II.B.4).
//!
//! For every column, the synopsis records the min/max (in the
//! orderable-u64 domain) and a has-nulls flag per stride of ~1 K tuples.
//! A scan with a range predicate consults [`Synopsis::candidate_strides`]
//! and never touches strides whose range cannot overlap — the paper's
//! canonical example is seven years of data where queries touch the most
//! recent months.
//!
//! Faithful detail: the synopsis itself is stored "in the same columnar
//! compressed representation" — [`Synopsis::size_bytes`] measures the
//! min/max vectors re-encoded with minus encoding, which is what makes the
//! metadata ~3 orders of magnitude smaller than the user data.

use dash_encoding::bitmap::Bitmap;
use dash_encoding::minus::MinusBlock;

/// Per-column synopsis state.
#[derive(Debug, Clone, Default)]
struct ColumnSynopsis {
    mins: Vec<u64>,
    maxs: Vec<u64>,
    has_nulls: Vec<bool>,
    /// Strides where the column was entirely NULL (no min/max).
    all_null: Vec<bool>,
}

/// The per-table data-skipping metadata.
#[derive(Debug, Clone)]
pub struct Synopsis {
    columns: Vec<ColumnSynopsis>,
    strides: usize,
}

impl Synopsis {
    /// Empty synopsis for `ncols` columns.
    pub fn new(ncols: usize) -> Synopsis {
        Synopsis {
            columns: vec![ColumnSynopsis::default(); ncols],
            strides: 0,
        }
    }

    /// Record a sealed stride for column `col`. Call once per column per
    /// stride, columns in any order but strides in order.
    pub fn push_stride(&mut self, col: usize, min_max: Option<(u64, u64)>, has_nulls: bool) {
        let c = &mut self.columns[col];
        match min_max {
            Some((lo, hi)) => {
                c.mins.push(lo);
                c.maxs.push(hi);
                c.all_null.push(false);
            }
            None => {
                c.mins.push(0);
                c.maxs.push(0);
                c.all_null.push(true);
            }
        }
        c.has_nulls.push(has_nulls);
        self.strides = self.strides.max(c.mins.len());
    }

    /// Number of strides covered.
    pub fn stride_count(&self) -> usize {
        self.strides
    }

    /// The recorded (min, max) of column `col` in `stride`, or `None` if
    /// the stride was all NULL.
    pub fn stride_range(&self, col: usize, stride: usize) -> Option<(u64, u64)> {
        let c = &self.columns[col];
        if c.all_null[stride] {
            None
        } else {
            Some((c.mins[stride], c.maxs[stride]))
        }
    }

    /// Whether a stride of a column contains NULLs (drives `IS NULL` scans).
    pub fn stride_has_nulls(&self, col: usize, stride: usize) -> bool {
        self.columns[col].has_nulls[stride]
    }

    /// Bitmap over strides that *may* contain a value of column `col`
    /// within `[lo, hi]` (orderable domain, either bound optional). Strides
    /// outside the range are pruned — the scan never reads their pages.
    pub fn candidate_strides(&self, col: usize, lo: Option<u64>, hi: Option<u64>) -> Bitmap {
        let c = &self.columns[col];
        let mut out = Bitmap::zeros(self.strides);
        for s in 0..c.mins.len() {
            if c.all_null[s] {
                continue;
            }
            let smin = c.mins[s];
            let smax = c.maxs[s];
            let below = hi.is_some_and(|hi| smin > hi);
            let above = lo.is_some_and(|lo| smax < lo);
            if !below && !above {
                out.set(s);
            }
        }
        out
    }

    /// Strides that contain at least one NULL in `col` (for IS NULL).
    pub fn null_strides(&self, col: usize) -> Bitmap {
        let c = &self.columns[col];
        let mut out = Bitmap::zeros(self.strides);
        for (s, &h) in c.has_nulls.iter().enumerate() {
            if h {
                out.set(s);
            }
        }
        out
    }

    /// Size of the synopsis stored in its own compressed columnar form:
    /// per column, the min and max vectors minus-encoded, plus one bit per
    /// stride for each flag.
    pub fn size_bytes(&self) -> usize {
        let mut total = 0usize;
        for c in &self.columns {
            let mins: Vec<Option<u64>> = c.mins.iter().copied().map(Some).collect();
            let maxs: Vec<Option<u64>> = c.maxs.iter().copied().map(Some).collect();
            total += MinusBlock::encode(&mins).size_bytes();
            total += MinusBlock::encode(&maxs).size_bytes();
            total += c.has_nulls.len().div_ceil(8) * 2; // two flag bitmaps
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> Synopsis {
        // One column, 10 strides covering [s*100, s*100+99].
        let mut syn = Synopsis::new(1);
        for s in 0..10u64 {
            syn.push_stride(0, Some((s * 100, s * 100 + 99)), s % 2 == 0);
        }
        syn
    }

    #[test]
    fn pruning_by_range() {
        let syn = build();
        // Value 250 lives in stride 2 only.
        let c = syn.candidate_strides(0, Some(250), Some(250));
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![2]);
        // Range 150..=320 overlaps strides 1, 2, 3.
        let c = syn.candidate_strides(0, Some(150), Some(320));
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
        // Open-ended: >= 850 overlaps strides 8, 9.
        let c = syn.candidate_strides(0, Some(850), None);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![8, 9]);
        // Out of range entirely.
        let c = syn.candidate_strides(0, Some(5000), None);
        assert_eq!(c.count_ones(), 0);
        // Unbounded keeps everything.
        let c = syn.candidate_strides(0, None, None);
        assert_eq!(c.count_ones(), 10);
    }

    #[test]
    fn all_null_strides_never_candidates() {
        let mut syn = Synopsis::new(1);
        syn.push_stride(0, None, true);
        syn.push_stride(0, Some((5, 10)), false);
        let c = syn.candidate_strides(0, Some(0), Some(100));
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![1]);
        assert_eq!(syn.stride_range(0, 0), None);
    }

    #[test]
    fn null_strides_tracked() {
        let syn = build();
        let n = syn.null_strides(0);
        assert_eq!(n.iter_ones().collect::<Vec<_>>(), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn synopsis_is_small() {
        // 1000 strides of ~1K tuples = ~1M rows; synopsis must be tiny.
        let mut syn = Synopsis::new(1);
        for s in 0..1000u64 {
            syn.push_stride(0, Some((s * 1000, s * 1000 + 999)), false);
        }
        let user_data_bytes = 1000 * 1024 * 8; // ~8 MB of raw u64s
        let ratio = user_data_bytes as f64 / syn.size_bytes() as f64;
        assert!(
            ratio > 500.0,
            "synopsis should be ~3 orders of magnitude smaller, ratio {ratio:.0}"
        );
    }
}

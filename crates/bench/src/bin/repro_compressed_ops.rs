//! Operate-on-compressed joins and aggregates (ISSUE 8).
//!
//! The BLU claim (§II.B): when join and group-by keys stay dictionary- or
//! order-encoded, the operators hash, compare, and partition fixed-width
//! code words with no `Datum` materialization in the loop, and only the
//! surviving rows pay decode cost. This repro times the same operator
//! twice over identical 1.5M-row inputs — once forced onto the `Datum`
//! key path (decode per row), once on the encoded key path — at
//! parallelism 1 so the difference is pure per-row CPU, then re-runs the
//! encoded path at parallelism 4 to show results are byte-identical to
//! the serial run. A SQL leg confirms the planner picks the encoded path
//! on its own and that the build side is re-encoded into the probe
//! side's code domain. Results land in `BENCH_compressed.json`.

use dash_bench::{report, section};
use dash_common::types::DataType;
use dash_common::{row, Datum, Field, Row, Schema, StatementContext};
use dash_core::{Database, HardwareSpec};
use dash_encoding::dict::FreqDict;
use dash_encoding::histogram::Histogram;
use dash_exec::agg::{hash_aggregate, AggExpr, AggFunc};
use dash_exec::functions::EvalContext;
use dash_exec::join::{hash_join, JoinType};
use dash_exec::key::KeyMode;
use dash_exec::stats::ExecStats;
use dash_exec::{Batch, Expr};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Fact rows for the operator-level legs.
const FACT_ROWS: usize = 1_500_000;
/// Distinct dictionary-backed join keys (and dim rows).
const DIM_ROWS: usize = 1_000;
/// Fact rows for the end-to-end SQL leg (LOAD + scan + join + group).
const SQL_ROWS: usize = 200_000;
/// The headline bar: encoded keys must cut join+group CPU by this factor.
const MIN_SPEEDUP: f64 = 1.5;

struct Leg {
    name: &'static str,
    datum_s: f64,
    encoded_s: f64,
    speedup: f64,
    encoded_key_rows: u64,
    keys_reencoded_rows: u64,
    identical: bool,
}

/// Build a `FreqDict` over string values and wrap it for batch metadata.
fn dict_of<'a>(values: impl Iterator<Item = &'a str>) -> Arc<FreqDict<Arc<str>>> {
    let mut hist: Histogram<Arc<str>> = Histogram::new();
    for v in values {
        hist.add(&Arc::from(v));
    }
    Arc::new(FreqDict::build(&hist))
}

/// The fact side: a dictionary-keyed label, a small int group, an int
/// measure. Labels are skewed (low ids dominate) so the frequency
/// partitioning in the dictionary is non-trivial.
fn fact_batch(n: usize) -> Batch {
    let schema = Schema::new(vec![
        Field::not_null("label", DataType::Utf8),
        Field::new("grp", DataType::Int64),
        Field::new("qty", DataType::Int64),
    ])
    .unwrap();
    let mut rows = Vec::with_capacity(n);
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    for _ in 0..n {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // Square the uniform draw: low label ids are ~30x more frequent.
        let u = ((x >> 11) as f64 / (1u64 << 53) as f64).powi(2);
        let label = format!("sku-{:04}", (u * DIM_ROWS as f64) as usize % DIM_ROWS);
        let grp = ((x >> 7) % 64) as i64;
        let qty = (x % 1000) as i64;
        rows.push(row![label, grp, qty]);
    }
    let mut batch = Batch::from_rows(schema, &rows).unwrap();
    let labels: Vec<String> = (0..DIM_ROWS).map(|k| format!("sku-{k:04}")).collect();
    batch.set_str_dict(0, dict_of(labels.iter().map(|s| s.as_str())));
    batch
}

/// The dim side carries its OWN dictionary (different instance, different
/// frequency order), so the encoded join must translate the build side's
/// codes into the fact side's code domain.
fn dim_batch() -> Batch {
    let schema = Schema::new(vec![
        Field::not_null("lab", DataType::Utf8),
        Field::new("boost", DataType::Int64),
    ])
    .unwrap();
    let rows: Vec<Row> = (0..DIM_ROWS)
        .map(|k| row![format!("sku-{k:04}"), k as i64])
        .collect();
    let mut batch = Batch::from_rows(schema, &rows).unwrap();
    // A dim-only histogram: uniform frequencies, so partition layout (and
    // therefore the packed code words) differ from the fact dictionary.
    let labels: Vec<String> = (0..DIM_ROWS).map(|k| format!("sku-{k:04}")).collect();
    batch.set_str_dict(0, dict_of(labels.iter().map(|s| s.as_str())));
    batch
}

/// Warm once, then report the median of three timed runs.
fn median3(mut f: impl FnMut() -> f64) -> f64 {
    f(); // warm caches, fault in lazily-built state
    let mut t = [f(), f(), f()];
    t.sort_by(f64::total_cmp);
    t[1]
}

fn join_leg(fact: &Batch, dim: &Batch) -> Leg {
    let stmt = StatementContext::unbounded();
    let run = |mode: KeyMode, par: usize, stats: &mut ExecStats| {
        hash_join(fact, dim, &[(0, 0)], JoinType::Inner, mode, par, &stmt, stats).unwrap()
    };
    let mut enc_stats = ExecStats::default();
    let encoded = run(KeyMode::Encoded, 1, &mut enc_stats);
    let datum = run(KeyMode::Datum, 1, &mut ExecStats::default());
    let mut par_stats = ExecStats::default();
    let parallel = run(KeyMode::Encoded, 4, &mut par_stats);
    // One build partition (1000 rows) → both key paths and every worker
    // count emit the same row order; compare outputs verbatim.
    let identical = encoded == datum && encoded == parallel;
    let datum_s = median3(|| {
        let t = Instant::now();
        run(KeyMode::Datum, 1, &mut ExecStats::default());
        t.elapsed().as_secs_f64()
    });
    let encoded_s = median3(|| {
        let t = Instant::now();
        run(KeyMode::Encoded, 1, &mut ExecStats::default());
        t.elapsed().as_secs_f64()
    });
    Leg {
        name: "join_group",
        datum_s,
        encoded_s,
        speedup: datum_s / encoded_s,
        encoded_key_rows: enc_stats.encoded_key_rows,
        keys_reencoded_rows: enc_stats.keys_reencoded_rows,
        identical,
    }
}

fn agg_leg(fact: &Batch) -> Leg {
    let ctx = EvalContext::default();
    let out = Schema::new(vec![
        Field::not_null("label", DataType::Utf8),
        Field::new("grp", DataType::Int64),
        Field::new("cnt", DataType::Int64),
        Field::new("total", DataType::Int64),
    ])
    .unwrap();
    let groups = [Expr::col(0), Expr::col(1)];
    let aggs = [
        AggExpr {
            func: AggFunc::CountStar,
            args: vec![],
            distinct: false,
        },
        AggExpr {
            func: AggFunc::Sum,
            args: vec![Expr::col(2)],
            distinct: false,
        },
    ];
    let run = |mode: KeyMode, par: usize, stats: &mut ExecStats| {
        hash_aggregate(fact, &groups, &aggs, out.clone(), &ctx, mode, par, stats).unwrap()
    };
    let mut enc_stats = ExecStats::default();
    let encoded = run(KeyMode::Encoded, 1, &mut enc_stats);
    let datum = run(KeyMode::Datum, 1, &mut ExecStats::default());
    let parallel = run(KeyMode::Encoded, 4, &mut ExecStats::default());
    // Group emit order is path-specific; compare the sorted group sets.
    let sorted = |b: &Batch| {
        let mut rows = b.to_rows();
        rows.sort_by_key(|r| {
            r.values().iter().map(Datum::render).collect::<Vec<_>>()
        });
        rows
    };
    let identical = sorted(&encoded) == sorted(&datum) && encoded == parallel;
    let datum_s = median3(|| {
        let t = Instant::now();
        run(KeyMode::Datum, 1, &mut ExecStats::default());
        t.elapsed().as_secs_f64()
    });
    let encoded_s = median3(|| {
        let t = Instant::now();
        run(KeyMode::Encoded, 1, &mut ExecStats::default());
        t.elapsed().as_secs_f64()
    });
    Leg {
        name: "grouped_aggregate",
        datum_s,
        encoded_s,
        speedup: datum_s / encoded_s,
        encoded_key_rows: enc_stats.encoded_key_rows,
        keys_reencoded_rows: enc_stats.keys_reencoded_rows,
        identical,
    }
}

struct SqlLeg {
    encoded_key_rows: u64,
    keys_reencoded_rows: u64,
    identical: bool,
}

/// End to end through LOAD, the planner, and the scan: storage-analyzed
/// dictionaries must reach the join, and the planner must pick the
/// encoded key mode without being told.
fn sql_leg() -> SqlLeg {
    let db = Database::with_hardware(HardwareSpec::laptop());
    let fact = fact_batch(SQL_ROWS);
    let fschema = fact.schema().clone();
    let handle = db.catalog().create_table("facts", fschema, None).unwrap();
    handle.write().load_rows(fact.to_rows()).unwrap();
    let dim = dim_batch();
    let dschema = dim.schema().clone();
    let handle = db.catalog().create_table("dims", dschema, None).unwrap();
    handle.write().load_rows(dim.to_rows()).unwrap();

    let mut s = db.connect();
    // Two group columns keep the planner off the fused join-aggregate
    // path, so the standalone encoded join and aggregate both run.
    let sql = "SELECT d.lab, f.grp, COUNT(*), SUM(f.qty) \
               FROM facts f JOIN dims d ON f.label = d.lab \
               GROUP BY d.lab, f.grp ORDER BY d.lab, f.grp";
    db.catalog().set_parallelism(1);
    let serial = s.execute(sql).unwrap();
    db.catalog().set_parallelism(4);
    let parallel = s.execute(sql).unwrap();
    SqlLeg {
        encoded_key_rows: serial.stats.encoded_key_rows,
        keys_reencoded_rows: serial.stats.keys_reencoded_rows,
        identical: serial.rows == parallel.rows,
    }
}

fn main() {
    println!("Operate-on-compressed join/aggregate reproduction — dashdb-local-rs");
    println!(
        "{FACT_ROWS} fact rows x {DIM_ROWS} dictionary keys, parallelism 1 (CPU cost per row)"
    );

    let fact = fact_batch(FACT_ROWS);
    let dim = dim_batch();

    let mut legs = Vec::new();
    for leg in [join_leg(&fact, &dim), agg_leg(&fact)] {
        section(leg.name);
        report(
            "datum keys (decode per row)",
            format!("{:.3}s", leg.datum_s),
        );
        report("encoded keys (code words)", format!("{:.3}s", leg.encoded_s));
        report("speedup", format!("{:.2}x", leg.speedup));
        report(
            "stats",
            format!(
                "{} rows on encoded keys, {} build rows re-encoded",
                leg.encoded_key_rows, leg.keys_reencoded_rows
            ),
        );
        legs.push(leg);
    }

    section("end-to-end SQL (LOAD -> planner -> scan -> join -> group)");
    let sql = sql_leg();
    report(
        "stats",
        format!(
            "{} rows on encoded keys, {} build rows re-encoded",
            sql.encoded_key_rows, sql.keys_reencoded_rows
        ),
    );

    section("shape checks");
    let join = &legs[0];
    let checks: Vec<(String, bool)> = vec![
        (
            format!(
                "dictionary-keyed join cuts CPU >= {MIN_SPEEDUP}x ({:.2}x)",
                join.speedup
            ),
            join.speedup >= MIN_SPEEDUP,
        ),
        (
            "encoded join hashed every input row as a code word".into(),
            join.encoded_key_rows == (FACT_ROWS + DIM_ROWS) as u64,
        ),
        (
            "build side re-encoded into the probe side's code domain".into(),
            join.keys_reencoded_rows == DIM_ROWS as u64,
        ),
        (
            "grouped aggregate interned encoded key words".into(),
            legs[1].encoded_key_rows == FACT_ROWS as u64,
        ),
        (
            "planner picked the encoded path for the SQL join".into(),
            sql.encoded_key_rows > 0 && sql.keys_reencoded_rows > 0,
        ),
        (
            "results identical to serial on every leg".into(),
            legs.iter().all(|l| l.identical) && sql.identical,
        ),
    ];
    let mut all_pass = true;
    for (name, ok) in &checks {
        report(name, if *ok { "PASS" } else { "FAIL" });
        all_pass &= ok;
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"compressed_ops\",\n");
    let _ = write!(
        json,
        "  \"fact_rows\": {FACT_ROWS},\n  \"dict_keys\": {DIM_ROWS},\n  \"min_speedup\": {MIN_SPEEDUP},\n"
    );
    json.push_str(
        "  \"note\": \"Same operator, same input, parallelism 1: 'datum' materializes \
         per-row keys, 'encoded' hashes fixed-width dictionary/order codes and \
         late-materializes survivors. Timings are median-of-3 after a warm run.\",\n",
    );
    json.push_str("  \"legs\": [\n");
    for l in &legs {
        // The SQL leg follows, so every operator leg takes a trailing comma.
        let _ = writeln!(
            json,
            "    {{\"leg\": \"{}\", \"datum_s\": {:.6}, \"encoded_s\": {:.6}, \
             \"speedup\": {:.3}, \"encoded_key_rows\": {}, \"keys_reencoded_rows\": {}, \
             \"results_identical_to_serial\": {}}},",
            l.name,
            l.datum_s,
            l.encoded_s,
            l.speedup,
            l.encoded_key_rows,
            l.keys_reencoded_rows,
            l.identical,
        );
    }
    let _ = writeln!(
        json,
        "    {{\"leg\": \"sql_join_group\", \"encoded_key_rows\": {}, \
         \"keys_reencoded_rows\": {}, \"results_identical_to_serial\": {}}}",
        sql.encoded_key_rows, sql.keys_reencoded_rows, sql.identical,
    );
    json.push_str("  ],\n");
    let _ = write!(json, "  \"all_checks_pass\": {all_pass}\n}}\n");
    std::fs::write("BENCH_compressed.json", &json).expect("write BENCH_compressed.json");
    println!("\nwrote BENCH_compressed.json");
    assert!(all_pass, "shape checks failed — see report above");
}

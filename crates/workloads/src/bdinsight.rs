//! The BD Insight-style throughput workload (Table 1, Test 4).
//!
//! "A throughput test ... executing a 5-stream workload ... and compared
//! these results to a popular cloud data warehouse ... on the same
//! platform with identical hardware", measured in queries per hour (QpH).
//! Each stream runs the same mixed analytic query set in a rotated order
//! (the standard multi-stream throughput discipline).

use crate::spec::{Pred, QuerySpec, TableDef};
use crate::tpcds;
use dash_common::Datum;

/// The paper's stream count.
pub const STREAMS: usize = 5;

/// The generated workload: tables plus per-stream query sequences.
pub struct BdInsightWorkload {
    /// Tables to load.
    pub tables: Vec<TableDef>,
    /// `STREAMS` query sequences (same set, rotated start offsets).
    pub streams: Vec<Vec<QuerySpec>>,
}

/// Generate at `scale` fact rows.
pub fn generate(scale: usize) -> BdInsightWorkload {
    // Reuse the TPC-DS-like star and extend the query set with
    // shorter interactive slices so streams interleave heavy and light.
    let base = tpcds::generate(scale);
    let recent = crate::gen::recent_window_start();
    let mut queries = base.queries.clone();
    for week in 0..4 {
        queries.push(QuerySpec::GroupAgg {
            table: "store_sales".into(),
            predicates: vec![Pred::between(
                "ss_sold_date",
                Datum::Date(recent + week * 7),
                Datum::Date(recent + week * 7 + 6),
            )],
            key: "ss_store_sk".into(),
            value: "ss_sales_price".into(),
        });
    }
    let streams = (0..STREAMS)
        .map(|s| {
            let mut q = queries.clone();
            q.rotate_left(s * queries.len() / STREAMS);
            q
        })
        .collect();
    BdInsightWorkload {
        tables: base.tables,
        streams,
    }
}

/// Queries-per-hour given total queries executed and elapsed seconds.
pub fn qph(total_queries: usize, elapsed_s: f64) -> f64 {
    if elapsed_s <= 0.0 {
        return 0.0;
    }
    total_queries as f64 * 3600.0 / elapsed_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_rotated_streams() {
        let w = generate(1000);
        assert_eq!(w.streams.len(), STREAMS);
        let len = w.streams[0].len();
        assert!(len >= 12);
        for s in &w.streams {
            assert_eq!(s.len(), len);
        }
        // Rotations differ: first queries of stream 0 and 2 are different.
        assert_ne!(w.streams[0][0].to_sql(), w.streams[2][0].to_sql());
    }

    #[test]
    fn qph_math() {
        assert_eq!(qph(100, 3600.0), 100.0);
        assert_eq!(qph(50, 1800.0), 100.0);
        assert_eq!(qph(10, 0.0), 0.0);
    }
}

//! Cache-efficient partitioned hash join (§II.B.7).
//!
//! "All of the query algorithms aim to keep data in the processor's L3 or
//! L2 caches ... by partitioning data into L3 or L2 chunks for performing
//! joins and grouping, as pioneered in Hybrid Hash Join and MonetDB."
//!
//! Both inputs are first hash-partitioned on the join key into chunks
//! sized so each build-side hash table fits in cache; each partition pair
//! is then joined independently. NULL keys never match (SQL semantics).

use crate::batch::Batch;
use crate::pool;
use crate::stats::ExecStats;
use dash_common::fxhash::FxHashMap;
use dash_common::statement::approx_datum_bytes;
use dash_common::{BudgetLease, Datum, Result, Row, StatementContext};
use parking_lot::Mutex;
use std::collections::hash_map::Entry;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner join.
    Inner,
    /// Left outer join (unmatched left rows padded with NULLs).
    Left,
    /// Semi join: left rows with at least one match, left columns only.
    Semi,
    /// Anti join: left rows with no match, left columns only.
    Anti,
}

/// Target rows per build partition — sized so a partition's hash table
/// stays within an L2-ish footprint (the cache-conscious chunking).
pub const PARTITION_ROWS: usize = 8 * 1024;

fn key_hash(values: &[Datum]) -> u64 {
    let mut h = BuildHasherDefault::<dash_common::fxhash::FxHasher>::default().build_hasher();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// One hash partition's rows: ascending row index plus the (non-null)
/// join key computed for that row.
type KeyedRows = Vec<(usize, Vec<Datum>)>;

fn key_of(batch: &Batch, row: usize, cols: &[usize]) -> Option<Vec<Datum>> {
    let mut key = Vec::with_capacity(cols.len());
    for &c in cols {
        let v = batch.value(row, c);
        if v.is_null() {
            return None; // NULL keys never join
        }
        key.push(v);
    }
    Some(key)
}

/// Hash-partition one side in row-range morsels. Each morsel buckets its
/// range locally; partials concatenate in morsel order, so every
/// partition keeps its rows in ascending row order — identical to a
/// serial pass. The computed key is stored alongside the row index
/// (computed once, moved, never re-derived). Returns the partitions, the
/// NULL-keyed rows, and the (morsels, workers) pool usage.
#[allow(clippy::type_complexity)]
fn partition_side(
    batch: &Batch,
    cols: &[usize],
    parts: usize,
    mask: u64,
    parallelism: usize,
    stmt: &StatementContext,
) -> Result<(Vec<KeyedRows>, Vec<usize>, (u64, u64))> {
    let ranges = pool::row_morsels(batch.len(), parallelism, 4096);
    let run = pool::run_morsels(ranges.len(), parallelism, stmt, |mi| {
        let (lo, hi) = ranges[mi];
        let mut local: Vec<KeyedRows> = (0..parts).map(|_| Vec::new()).collect();
        let mut nulls: Vec<usize> = Vec::new();
        for i in lo..hi {
            match key_of(batch, i, cols) {
                Some(k) => {
                    let p = (key_hash(&k) & mask) as usize;
                    local[p].push((i, k));
                }
                None => nulls.push(i),
            }
        }
        Ok((local, nulls))
    })?;
    let mut partitions: Vec<KeyedRows> = (0..parts).map(|_| Vec::new()).collect();
    let mut nullkey: Vec<usize> = Vec::new();
    for (local, nulls) in run.results {
        for (p, v) in local.into_iter().enumerate() {
            partitions[p].extend(v);
        }
        nullkey.extend(nulls);
    }
    Ok((partitions, nullkey, (run.morsels_dispatched, run.workers_used)))
}

/// Execute a hash join between two materialized batches.
///
/// `on` pairs are (left ordinal, right ordinal). The output schema is
/// `left ⧺ right` for Inner/Left, and just `left` for Semi/Anti.
pub fn hash_join(
    left: &Batch,
    right: &Batch,
    on: &[(usize, usize)],
    join_type: JoinType,
    parallelism: usize,
    stmt: &StatementContext,
    stats: &mut ExecStats,
) -> Result<Batch> {
    assert!(!on.is_empty(), "hash join requires at least one key pair");
    let left_cols: Vec<usize> = on.iter().map(|(l, _)| *l).collect();
    let right_cols: Vec<usize> = on.iter().map(|(_, r)| *r).collect();

    let out_schema = match join_type {
        JoinType::Inner | JoinType::Left => left.schema().join(right.schema()),
        JoinType::Semi | JoinType::Anti => left.schema().clone(),
    };

    // Choose partition count from the build (right) side.
    let parts = (right.len() / PARTITION_ROWS + 1).next_power_of_two();
    let mask = parts as u64 - 1;

    // Phase 1 — hash-partition both sides across the pool.
    let (right_parts, _right_nullkey, (rm, rw)) =
        partition_side(right, &right_cols, parts, mask, parallelism, stmt)?;
    let (left_parts, left_nullkey, (lm, lw)) =
        partition_side(left, &left_cols, parts, mask, parallelism, stmt)?;
    stats.note_parallel_phase(rm, rw);
    stats.note_parallel_phase(lm, lw);
    stats.rows_partitioned += right_parts.iter().map(|p| p.len() as u64).sum::<u64>();
    stats.rows_partitioned += left_parts.iter().map(|p| p.len() as u64).sum::<u64>();

    // The partitioned row/key state (and the per-partition hash tables built
    // from the right side, which hold the same keys moved in) is the join's
    // dominant allocation. Charge it against the statement's memory budget
    // up front; the lease releases on every exit path, so an over-budget or
    // cancelled join drops its partial state without leaking the charge.
    let mut lease = BudgetLease::new(stmt);
    let bytes: u64 = right_parts
        .iter()
        .chain(left_parts.iter())
        .flatten()
        .map(|(_, k)| {
            std::mem::size_of::<(usize, Vec<Datum>)>() as u64
                + k.iter().map(approx_datum_bytes).sum::<u64>()
        })
        .sum();
    lease.charge(bytes).inspect_err(|_| {
        stats.budget_rejections += 1;
    })?;

    // Phase 2 — each partition pair is one build+probe morsel. Partitions
    // hold disjoint keys and ascending row order, so concatenating the
    // per-partition outputs in partition order reproduces the serial
    // output exactly.
    let right_parts: Vec<Mutex<KeyedRows>> = right_parts.into_iter().map(Mutex::new).collect();
    let left_parts: Vec<Mutex<KeyedRows>> = left_parts.into_iter().map(Mutex::new).collect();
    let right_nulls = Row::new(vec![Datum::Null; right.schema().len()]);
    let join_run = pool::run_morsels(parts, parallelism, stmt, |p| {
        // Build per-partition table on the right side, moving each stored
        // key into the table (duplicates just add their row index).
        let build = std::mem::take(&mut *right_parts[p].lock());
        let mut table: FxHashMap<Vec<Datum>, Vec<usize>> = FxHashMap::default();
        for (ri, k) in build {
            match table.entry(k) {
                Entry::Occupied(mut e) => e.get_mut().push(ri),
                Entry::Vacant(e) => {
                    e.insert(vec![ri]);
                }
            }
        }
        // Probe with the left side.
        let probe = std::mem::take(&mut *left_parts[p].lock());
        let mut part_rows: Vec<Row> = Vec::new();
        for (li, k) in probe {
            let matches = table.get(&k);
            match join_type {
                JoinType::Inner => {
                    if let Some(ms) = matches {
                        for &ri in ms {
                            part_rows.push(left.row(li).concat(&right.row(ri)));
                        }
                    }
                }
                JoinType::Left => match matches {
                    Some(ms) => {
                        for &ri in ms {
                            part_rows.push(left.row(li).concat(&right.row(ri)));
                        }
                    }
                    None => part_rows.push(left.row(li).concat(&right_nulls)),
                },
                JoinType::Semi => {
                    if matches.is_some() {
                        part_rows.push(left.row(li));
                    }
                }
                JoinType::Anti => {
                    if matches.is_none() {
                        part_rows.push(left.row(li));
                    }
                }
            }
        }
        Ok(part_rows)
    })?;
    stats.note_parallel_phase(join_run.morsels_dispatched, join_run.workers_used);
    drop(lease); // partitions and build tables consumed — return their budget
    let mut out_rows: Vec<Row> = join_run.results.into_iter().flatten().collect();
    // NULL-keyed left rows: unmatched by definition.
    match join_type {
        JoinType::Left => {
            for &li in &left_nullkey {
                out_rows.push(left.row(li).concat(&right_nulls));
            }
        }
        JoinType::Anti => {
            for &li in &left_nullkey {
                out_rows.push(left.row(li));
            }
        }
        JoinType::Inner | JoinType::Semi => {}
    }

    Batch::from_rows(out_schema, &out_rows)
}

/// Expose the partition fan-out chosen for a build side of `rows` rows
/// (used by EXPLAIN and the join benchmarks).
pub fn partition_count(rows: usize) -> usize {
    (rows / PARTITION_ROWS + 1).next_power_of_two()
}

/// Cartesian product (CROSS JOIN, and the fallback for comma-lists with no
/// connecting predicate).
pub fn cross_join(left: &Batch, right: &Batch) -> Result<Batch> {
    let schema = left.schema().join(right.schema());
    let mut rows = Vec::with_capacity(left.len() * right.len());
    for li in 0..left.len() {
        let lrow = left.row(li);
        for ri in 0..right.len() {
            rows.push(lrow.concat(&right.row(ri)));
        }
    }
    Batch::from_rows(schema, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_common::types::DataType;
    use dash_common::{row, Field, Schema};

    fn stmt() -> StatementContext {
        StatementContext::unbounded()
    }

    fn orders() -> Batch {
        let schema = Schema::new(vec![
            Field::not_null("o_id", DataType::Int64),
            Field::new("cust", DataType::Int64),
        ])
        .unwrap();
        Batch::from_rows(
            schema,
            &[
                row![1i64, 10i64],
                row![2i64, 20i64],
                row![3i64, 10i64],
                row![4i64, Datum::Null],
                row![5i64, 99i64],
            ],
        )
        .unwrap()
    }

    fn customers() -> Batch {
        let schema = Schema::new(vec![
            Field::not_null("c_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ])
        .unwrap();
        Batch::from_rows(
            schema,
            &[row![10i64, "alice"], row![20i64, "bob"], row![30i64, "carol"]],
        )
        .unwrap()
    }

    #[test]
    fn inner_join_basic() {
        let mut stats = ExecStats::default();
        let out = hash_join(&orders(), &customers(), &[(1, 0)], JoinType::Inner, 1, &stmt(), &mut stats).unwrap();
        assert_eq!(out.len(), 3); // o1, o2, o3 match; o4 null; o5 dangling
        assert_eq!(out.schema().len(), 4);
        let names: Vec<String> = out
            .to_rows()
            .iter()
            .map(|r| r.get(3).render())
            .collect();
        assert!(names.contains(&"alice".to_string()));
        assert!(names.contains(&"bob".to_string()));
    }

    #[test]
    fn left_join_pads_nulls() {
        let mut stats = ExecStats::default();
        let out = hash_join(&orders(), &customers(), &[(1, 0)], JoinType::Left, 1, &stmt(), &mut stats).unwrap();
        assert_eq!(out.len(), 5);
        let unmatched: Vec<Row> = out
            .to_rows()
            .into_iter()
            .filter(|r| r.get(2).is_null())
            .collect();
        assert_eq!(unmatched.len(), 2); // null cust + cust 99
    }

    #[test]
    fn semi_and_anti() {
        let mut stats = ExecStats::default();
        let semi = hash_join(&orders(), &customers(), &[(1, 0)], JoinType::Semi, 1, &stmt(), &mut stats).unwrap();
        assert_eq!(semi.len(), 3);
        assert_eq!(semi.schema().len(), 2, "semi keeps left columns only");
        let anti = hash_join(&orders(), &customers(), &[(1, 0)], JoinType::Anti, 1, &stmt(), &mut stats).unwrap();
        assert_eq!(anti.len(), 2);
        let ids: Vec<i64> = anti.to_rows().iter().map(|r| r.get(0).as_int().unwrap()).collect();
        assert!(ids.contains(&4) && ids.contains(&5));
    }

    #[test]
    fn duplicate_build_keys_multiply() {
        let schema_l = Schema::new(vec![Field::new("k", DataType::Int64)]).unwrap();
        let schema_r = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Int64),
        ])
        .unwrap();
        let l = Batch::from_rows(schema_l, &[row![1i64], row![1i64]]).unwrap();
        let r = Batch::from_rows(
            schema_r,
            &[row![1i64, 100i64], row![1i64, 200i64], row![2i64, 300i64]],
        )
        .unwrap();
        let mut stats = ExecStats::default();
        let out = hash_join(&l, &r, &[(0, 0)], JoinType::Inner, 1, &stmt(), &mut stats).unwrap();
        assert_eq!(out.len(), 4, "2 probe x 2 build matches");
    }

    #[test]
    fn multi_column_keys() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
        ])
        .unwrap();
        let l = Batch::from_rows(
            schema.clone(),
            &[row![1i64, "x"], row![1i64, "y"], row![2i64, "x"]],
        )
        .unwrap();
        let r = Batch::from_rows(schema, &[row![1i64, "x"], row![2i64, "y"]]).unwrap();
        let mut stats = ExecStats::default();
        let out = hash_join(&l, &r, &[(0, 0), (1, 1)], JoinType::Inner, 1, &stmt(), &mut stats).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn large_join_spans_partitions() {
        // Force multiple partitions and verify correctness by count.
        let schema = Schema::new(vec![Field::new("k", DataType::Int64)]).unwrap();
        let n = PARTITION_ROWS * 3;
        let rows: Vec<Row> = (0..n).map(|i| row![(i % 1000) as i64]).collect();
        let l = Batch::from_rows(schema.clone(), &rows).unwrap();
        let r_rows: Vec<Row> = (0..1000).map(|i| row![i as i64]).collect();
        let r = Batch::from_rows(schema, &r_rows).unwrap();
        assert!(partition_count(n) > 1);
        let mut stats = ExecStats::default();
        let out = hash_join(&l, &r, &[(0, 0)], JoinType::Inner, 1, &stmt(), &mut stats).unwrap();
        assert_eq!(out.len(), n);
        assert!(stats.rows_partitioned >= (n + 1000) as u64);
    }

    #[test]
    fn cross_type_numeric_keys_join() {
        // Int 2 joins Float 2.0 (Datum equality is cross-numeric).
        let sl = Schema::new(vec![Field::new("k", DataType::Int64)]).unwrap();
        let sr = Schema::new(vec![Field::new("k", DataType::Float64)]).unwrap();
        let l = Batch::from_rows(sl, &[row![2i64]]).unwrap();
        let r = Batch::from_rows(sr, &[row![2.0f64]]).unwrap();
        let mut stats = ExecStats::default();
        let out = hash_join(&l, &r, &[(0, 0)], JoinType::Inner, 1, &stmt(), &mut stats).unwrap();
        assert_eq!(out.len(), 1);
    }
}

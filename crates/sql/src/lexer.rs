//! SQL tokenizer.

use dash_common::{DashError, Result};

/// A lexical token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind/payload.
    pub kind: TokenKind,
    /// Byte offset into the source text.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Unquoted identifier or keyword, folded to upper case.
    Ident(String),
    /// `"quoted"` identifier, case preserved.
    QuotedIdent(String),
    /// `'string'` literal (with `''` escapes resolved).
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float/decimal literal (kept as text for exact decimal parsing).
    NumberLit(String),
    /// Any operator or punctuation: `(`, `)`, `,`, `.`, `;`, `=`, `<>`,
    /// `<=`, `>=`, `<`, `>`, `!=`, `+`, `-`, `*`, `/`, `%`, `::`, `:`,
    /// `||`, `(+)`.
    Symbol(&'static str),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// The identifier text if this is an (unquoted) identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment.
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(DashError::parse("unterminated block comment", start));
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        let offset = i;
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'$')
            {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident(sql[start..i].to_ascii_uppercase()),
                offset,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() || (c == '.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()))
        {
            let start = i;
            let mut saw_dot = false;
            let mut saw_exp = false;
            while i < bytes.len() {
                let b = bytes[i] as char;
                if b.is_ascii_digit() {
                    i += 1;
                } else if b == '.' && !saw_dot && !saw_exp {
                    // Don't consume `..` or `.e`.
                    saw_dot = true;
                    i += 1;
                } else if (b == 'e' || b == 'E')
                    && !saw_exp
                    && bytes.get(i + 1).is_some_and(|n| {
                        n.is_ascii_digit() || *n == b'+' || *n == b'-'
                    })
                {
                    saw_exp = true;
                    i += 2; // consume e and sign/digit
                } else {
                    break;
                }
            }
            let text = &sql[start..i];
            let kind = if !saw_dot && !saw_exp {
                match text.parse::<i64>() {
                    Ok(v) => TokenKind::IntLit(v),
                    Err(_) => TokenKind::NumberLit(text.to_string()),
                }
            } else {
                TokenKind::NumberLit(text.to_string())
            };
            tokens.push(Token { kind, offset });
            continue;
        }
        // String literals.
        if c == '\'' {
            let start = i;
            i += 1;
            let mut out = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(DashError::parse("unterminated string literal", start));
                }
                if bytes[i] == b'\'' {
                    if bytes.get(i + 1) == Some(&b'\'') {
                        out.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    // Multi-byte safe: push the char at this position.
                    let ch_str = &sql[i..];
                    let ch = ch_str.chars().next().expect("in range");
                    out.push(ch);
                    i += ch.len_utf8();
                }
            }
            tokens.push(Token {
                kind: TokenKind::StringLit(out),
                offset,
            });
            continue;
        }
        // Quoted identifiers.
        if c == '"' {
            let start = i;
            i += 1;
            let mut out = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(DashError::parse("unterminated quoted identifier", start));
                }
                if bytes[i] == b'"' {
                    if bytes.get(i + 1) == Some(&b'"') {
                        out.push('"');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    let ch = sql[i..].chars().next().expect("in range");
                    out.push(ch);
                    i += ch.len_utf8();
                }
            }
            tokens.push(Token {
                kind: TokenKind::QuotedIdent(out),
                offset,
            });
            continue;
        }
        // `(+)` — the Oracle outer join marker.
        if c == '(' && i + 2 < bytes.len() && bytes[i + 1] == b'+' && bytes[i + 2] == b')' {
            tokens.push(Token {
                kind: TokenKind::Symbol("(+)"),
                offset,
            });
            i += 3;
            continue;
        }
        // Multi-char operators.
        let two = if i + 1 < bytes.len() {
            &sql[i..i + 2]
        } else {
            ""
        };
        let sym2: Option<&'static str> = match two {
            "::" => Some("::"),
            "<>" => Some("<>"),
            "!=" => Some("!="),
            "<=" => Some("<="),
            ">=" => Some(">="),
            "||" => Some("||"),
            _ => None,
        };
        if let Some(s) = sym2 {
            tokens.push(Token {
                kind: TokenKind::Symbol(s),
                offset,
            });
            i += 2;
            continue;
        }
        let sym1: Option<&'static str> = match c {
            '(' => Some("("),
            ')' => Some(")"),
            ',' => Some(","),
            '.' => Some("."),
            ';' => Some(";"),
            '=' => Some("="),
            '<' => Some("<"),
            '>' => Some(">"),
            '+' => Some("+"),
            '-' => Some("-"),
            '*' => Some("*"),
            '/' => Some("/"),
            '%' => Some("%"),
            ':' => Some(":"),
            '?' => Some("?"),
            _ => None,
        };
        match sym1 {
            Some(s) => {
                tokens.push(Token {
                    kind: TokenKind::Symbol(s),
                    offset,
                });
                i += 1;
            }
            None => {
                return Err(DashError::parse(
                    format!("unexpected character '{c}'"),
                    offset,
                ))
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: sql.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_fold_upper() {
        let k = kinds("select Foo from bar");
        assert_eq!(k[0], TokenKind::Ident("SELECT".into()));
        assert_eq!(k[1], TokenKind::Ident("FOO".into()));
    }

    #[test]
    fn quoted_identifiers_preserve_case() {
        let k = kinds(r#""MixedCase" "with""quote""#);
        assert_eq!(k[0], TokenKind::QuotedIdent("MixedCase".into()));
        assert_eq!(k[1], TokenKind::QuotedIdent("with\"quote".into()));
    }

    #[test]
    fn string_escapes() {
        let k = kinds("'it''s'");
        assert_eq!(k[0], TokenKind::StringLit("it's".into()));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        let k = kinds("42 3.14 1e6 2.5e-3 .5");
        assert_eq!(k[0], TokenKind::IntLit(42));
        assert_eq!(k[1], TokenKind::NumberLit("3.14".into()));
        assert_eq!(k[2], TokenKind::NumberLit("1e6".into()));
        assert_eq!(k[3], TokenKind::NumberLit("2.5e-3".into()));
        assert_eq!(k[4], TokenKind::NumberLit(".5".into()));
    }

    #[test]
    fn operators_and_cast() {
        let k = kinds("a::int4 <> b || c");
        assert_eq!(k[1], TokenKind::Symbol("::"));
        assert_eq!(k[3], TokenKind::Symbol("<>"));
        assert_eq!(k[5], TokenKind::Symbol("||"));
    }

    #[test]
    fn oracle_outer_join_marker() {
        let k = kinds("a.id = b.id (+)");
        assert!(k.contains(&TokenKind::Symbol("(+)")));
        // Parenthesized plus is NOT the marker when followed by expr.
        let k = kinds("(+ 1)");
        assert_eq!(k[0], TokenKind::Symbol("("));
    }

    #[test]
    fn comments_stripped() {
        let k = kinds("select -- a comment\n 1 /* block\nspanning */ + 2");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::IntLit(1),
                TokenKind::Symbol("+"),
                TokenKind::IntLit(2),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("/* open").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("ab  cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }

    #[test]
    fn unexpected_char() {
        let e = tokenize("select @").unwrap_err();
        assert!(matches!(e, DashError::Parse { offset: 7, .. }));
    }
}

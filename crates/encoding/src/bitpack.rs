//! Bit-aligned code packing.
//!
//! Codes are packed at a fixed width into 64-bit words **without straddling
//! word boundaries**: a word holds `64 / width` codes and any leftover high
//! bits are zero padding. This layout is what makes the software-SIMD scan
//! possible — a single 64-bit ALU operation can compare all codes in a word
//! simultaneously (§II.B.6: "multiple values for a column can usually be
//! packed into a single word ... It is not uncommon for tens of values to be
//! packed into a single word").

use serde::{Deserialize, Serialize};

/// A vector of fixed-width codes packed into 64-bit words.
///
/// Width 0 is allowed and means "every code is zero" (a constant column
/// region) — it stores no words at all, the paper's "in special
/// circumstances even smaller [than one bit]" case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitPackedVec {
    words: Vec<u64>,
    width: u8,
    len: usize,
}

impl BitPackedVec {
    /// Create an empty vector for codes of `width` bits (0..=64).
    ///
    /// # Panics
    /// Panics if `width > 64`.
    pub fn new(width: u8) -> BitPackedVec {
        assert!(width <= 64, "code width must be <= 64, got {width}");
        BitPackedVec {
            words: Vec::new(),
            width,
            len: 0,
        }
    }

    /// Create with capacity for `n` codes.
    pub fn with_capacity(width: u8, n: usize) -> BitPackedVec {
        assert!(width <= 64, "code width must be <= 64, got {width}");
        let mut v = BitPackedVec::new(width);
        if width > 0 {
            v.words.reserve(n / v.per_word() + 1);
        }
        v
    }

    /// Build from a slice of codes, computing nothing fancy.
    ///
    /// # Panics
    /// Panics if any code does not fit in `width` bits.
    pub fn from_codes(width: u8, codes: &[u64]) -> BitPackedVec {
        let mut v = BitPackedVec::with_capacity(width, codes.len());
        for &c in codes {
            v.push(c);
        }
        v
    }

    /// The code width in bits.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Number of codes stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no codes are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Codes per 64-bit word (64 for width 0, by convention unused).
    #[inline]
    pub fn per_word(&self) -> usize {
        if self.width == 0 {
            64
        } else {
            64 / self.width as usize
        }
    }

    /// The packed words. The last word may be partially filled; unused code
    /// slots in it are zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Append a code.
    ///
    /// # Panics
    /// Panics if the code does not fit in the configured width.
    #[inline]
    pub fn push(&mut self, code: u64) {
        if self.width == 0 {
            debug_assert_eq!(code, 0, "width-0 vector only stores zeros");
            self.len += 1;
            return;
        }
        assert!(
            self.width == 64 || code < (1u64 << self.width),
            "code {code} does not fit in {} bits",
            self.width
        );
        let per = self.per_word();
        let slot = self.len % per;
        if slot == 0 {
            self.words.push(0);
        }
        let w = self.words.last_mut().expect("word just ensured");
        *w |= code << (slot as u32 * self.width as u32);
        self.len += 1;
    }

    /// Get the code at position `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if self.width == 0 {
            return 0;
        }
        let per = self.per_word();
        let word = self.words[i / per];
        let slot = (i % per) as u32;
        if self.width == 64 {
            word
        } else {
            (word >> (slot * self.width as u32)) & ((1u64 << self.width) - 1)
        }
    }

    /// Iterate over all codes in order.
    pub fn iter(&self) -> BitPackedIter<'_> {
        BitPackedIter {
            vec: self,
            pos: 0,
            word: if self.words.is_empty() { 0 } else { self.words[0] },
        }
    }

    /// Decode all codes into a `Vec<u64>` (test/diagnostic use).
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// Heap size of the packed representation, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The number of codes held by the (possibly partial) final word.
    pub fn tail_len(&self) -> usize {
        if self.width == 0 || self.len == 0 {
            return 0;
        }
        let r = self.len % self.per_word();
        if r == 0 {
            self.per_word()
        } else {
            r
        }
    }
}

/// Iterator over packed codes; keeps the current word in a register and
/// shifts, which is substantially faster than repeated `get`.
pub struct BitPackedIter<'a> {
    vec: &'a BitPackedVec,
    pos: usize,
    word: u64,
}

impl Iterator for BitPackedIter<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.pos >= self.vec.len {
            return None;
        }
        if self.vec.width == 0 {
            self.pos += 1;
            return Some(0);
        }
        let per = self.vec.per_word();
        let slot = self.pos % per;
        if slot == 0 {
            self.word = self.vec.words[self.pos / per];
        }
        let code = if self.vec.width == 64 {
            self.word
        } else {
            (self.word >> (slot as u32 * self.vec.width as u32)) & ((1u64 << self.vec.width) - 1)
        };
        self.pos += 1;
        Some(code)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BitPackedIter<'_> {}

/// Minimum number of bits needed to represent `max_code` (at least 0).
#[inline]
pub fn bits_for(max_code: u64) -> u8 {
    if max_code == 0 {
        0
    } else {
        (64 - max_code.leading_zeros()) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_small_widths() {
        for width in [1u8, 2, 3, 5, 7, 11, 13, 17, 31, 33, 64] {
            let max = if width == 64 { u64::MAX } else { (1 << width) - 1 };
            let codes: Vec<u64> = (0..200).map(|i| (i * 7919) as u64 % (max.saturating_add(1).max(1))).collect();
            let codes: Vec<u64> = codes.iter().map(|&c| c.min(max)).collect();
            let packed = BitPackedVec::from_codes(width, &codes);
            assert_eq!(packed.to_vec(), codes, "width {width}");
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(packed.get(i), c, "width {width} idx {i}");
            }
        }
    }

    #[test]
    fn width_zero_constant() {
        let packed = BitPackedVec::from_codes(0, &[0, 0, 0, 0]);
        assert_eq!(packed.len(), 4);
        assert_eq!(packed.size_bytes(), 0);
        assert_eq!(packed.to_vec(), vec![0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_panics() {
        let mut v = BitPackedVec::new(3);
        v.push(8);
    }

    #[test]
    fn many_codes_per_word() {
        // 2-bit codes: 32 per word — "tens of values packed into a single word".
        let codes: Vec<u64> = (0..100).map(|i| i % 4).collect();
        let packed = BitPackedVec::from_codes(2, &codes);
        assert_eq!(packed.per_word(), 32);
        assert_eq!(packed.words().len(), 4); // ceil(100/32)
        assert_eq!(packed.to_vec(), codes);
    }

    #[test]
    fn no_straddle_padding() {
        // width 5: 12 codes per word, 4 padding bits at the top must be zero.
        let codes: Vec<u64> = (0..12).map(|_| 31).collect();
        let packed = BitPackedVec::from_codes(5, &codes);
        assert_eq!(packed.words().len(), 1);
        assert_eq!(packed.words()[0] >> 60, 0, "padding bits must be zero");
    }

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn tail_len_accounting() {
        let packed = BitPackedVec::from_codes(5, &[1; 25]); // 12 per word
        assert_eq!(packed.tail_len(), 1);
        let packed = BitPackedVec::from_codes(5, &[1; 24]);
        assert_eq!(packed.tail_len(), 12);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(width in 1u8..=64, raw in prop::collection::vec(any::<u64>(), 0..300)) {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let codes: Vec<u64> = raw.iter().map(|&v| v & mask).collect();
            let packed = BitPackedVec::from_codes(width, &codes);
            prop_assert_eq!(packed.to_vec(), codes.clone());
            prop_assert_eq!(packed.len(), codes.len());
            // Random access agrees with iteration.
            for (i, &c) in codes.iter().enumerate() {
                prop_assert_eq!(packed.get(i), c);
            }
        }

        #[test]
        fn prop_size_is_optimal(width in 1u8..=32, n in 0usize..500) {
            let codes: Vec<u64> = vec![0; n];
            let packed = BitPackedVec::from_codes(width, &codes);
            let per = 64 / width as usize;
            let expected_words = n.div_ceil(per);
            prop_assert_eq!(packed.words().len(), expected_words);
        }
    }
}

//! Fluid Query: remote table access through nicknames (§II.C.6).
//!
//! "Integrated Fluid Query technology provides key capabilities to unify,
//! fully integrate, and leverage disparate data across Big Data ecosystems.
//! Multiple built in connectors allow you to quickly create a table
//! nick-name to access and query remote database objects..."
//!
//! A [`Connector`] abstracts a remote store; a *nickname* registered in the
//! catalog makes a remote object queryable with plain SQL. Remote data is
//! materialized into a local cache table on first access and refreshed when
//! the remote version changes (the "queryable archive / bridge to RDBMS
//! islands" usage — reads, not writes).
//!
//! Built-in connectors:
//! * [`DashConnector`] — another dashDB instance (the dashDB/DB2 bridge,
//!   and a stand-in for the Oracle/SQL-Server/Netezza connectors);
//! * [`CsvConnector`] — delimited text, the stand-in for the Hadoop-side
//!   ("Cloudera Impala") external data sources.

use crate::database::Database;
use dash_common::{DashError, Result, Row, Schema};
use std::sync::Arc;

/// A remote data store reachable through Fluid Query.
pub trait Connector: Send + Sync {
    /// The remote object's schema.
    fn schema(&self, table: &str) -> Result<Schema>;

    /// Fetch the remote object's rows.
    fn fetch(&self, table: &str) -> Result<Vec<Row>>;

    /// A version stamp; the nickname cache refreshes when it changes.
    fn version(&self, table: &str) -> u64;

    /// Connector name, for diagnostics.
    fn name(&self) -> &str;
}

/// Connector to another dashDB engine (in-process stand-in for the
/// JDBC-class connectors: DB2, Oracle, SQL Server, Netezza).
pub struct DashConnector {
    remote: Arc<Database>,
}

impl DashConnector {
    /// Wrap a remote database handle.
    pub fn new(remote: Arc<Database>) -> DashConnector {
        DashConnector { remote }
    }
}

impl Connector for DashConnector {
    fn schema(&self, table: &str) -> Result<Schema> {
        Ok(self.remote.catalog().table_handle(table)?.table.read().schema().clone())
    }

    fn fetch(&self, table: &str) -> Result<Vec<Row>> {
        let mut session = self.remote.connect();
        session.query(&format!("SELECT * FROM {table}"))
    }

    fn version(&self, table: &str) -> u64 {
        // Total-rows high-water mark doubles as a change stamp for appends
        // and (via live-row delta) deletes.
        match self.remote.catalog().table_handle(table) {
            Ok(h) => {
                let t = h.table.read();
                t.total_rows() * 1_000_003 + t.live_rows()
            }
            Err(_) => 0,
        }
    }

    fn name(&self) -> &str {
        "dashdb"
    }
}

/// Connector to delimited text files (the Hadoop/object-store stand-in).
/// One "table" per connector; the schema is declared at construction and
/// values are coerced per column type.
pub struct CsvConnector {
    path: std::path::PathBuf,
    schema: Schema,
    delimiter: char,
}

impl CsvConnector {
    /// Create a connector for one file with a declared schema.
    pub fn new(path: impl Into<std::path::PathBuf>, schema: Schema, delimiter: char) -> CsvConnector {
        CsvConnector {
            path: path.into(),
            schema,
            delimiter,
        }
    }
}

impl Connector for CsvConnector {
    fn schema(&self, _table: &str) -> Result<Schema> {
        Ok(self.schema.clone())
    }

    fn fetch(&self, _table: &str) -> Result<Vec<Row>> {
        let text = std::fs::read_to_string(&self.path)
            .map_err(|e| DashError::exec(format!("cannot read {}: {e}", self.path.display())))?;
        let mut rows = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let raw: Vec<&str> = line.split(self.delimiter).collect();
            if raw.len() != self.schema.len() {
                return Err(DashError::exec(format!(
                    "{}:{}: {} fields, schema has {}",
                    self.path.display(),
                    lineno + 1,
                    raw.len(),
                    self.schema.len()
                )));
            }
            let datums: Vec<dash_common::Datum> = raw
                .iter()
                .map(|s| {
                    let t = s.trim();
                    if t.is_empty() {
                        dash_common::Datum::Null
                    } else {
                        dash_common::Datum::str(t)
                    }
                })
                .collect();
            rows.push(Row::new(datums).coerce(&self.schema)?);
        }
        Ok(rows)
    }

    fn version(&self, _table: &str) -> u64 {
        std::fs::metadata(&self.path)
            .ok()
            .and_then(|m| m.modified().ok())
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    }

    fn name(&self) -> &str {
        "csv"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoconf::HardwareSpec;
    use dash_common::types::DataType;
    use dash_common::{Datum, Field};

    #[test]
    fn dash_connector_roundtrip() {
        let remote = Database::with_hardware(HardwareSpec::laptop());
        let mut s = remote.connect();
        s.execute("CREATE TABLE r (a INT, b VARCHAR(5))").unwrap();
        s.execute("INSERT INTO r VALUES (1, 'x'), (2, 'y')").unwrap();
        let c = DashConnector::new(remote.clone());
        assert_eq!(c.schema("r").unwrap().len(), 2);
        assert_eq!(c.fetch("r").unwrap().len(), 2);
        let v1 = c.version("r");
        s.execute("INSERT INTO r VALUES (3, 'z')").unwrap();
        assert_ne!(c.version("r"), v1, "version must change on append");
        let v2 = c.version("r");
        s.execute("DELETE FROM r WHERE a = 1").unwrap();
        assert_ne!(c.version("r"), v2, "version must change on delete");
    }

    #[test]
    fn csv_connector_parses_and_coerces() {
        let dir = std::env::temp_dir().join("dash_fluid_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.csv");
        std::fs::write(&path, "1|east|10.5\n2||20.0\n3|west|\n").unwrap();
        let schema = Schema::new(vec![
            Field::not_null("id", DataType::Int64),
            Field::new("region", DataType::Utf8),
            Field::new("amt", DataType::Float64),
        ])
        .unwrap();
        let c = CsvConnector::new(&path, schema, '|');
        let rows = c.fetch("ignored").unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(0), &Datum::Int(1));
        assert!(rows[1].get(1).is_null());
        assert!(rows[2].get(2).is_null());
        // Arity error reported with position.
        std::fs::write(&path, "1|east\n").unwrap();
        let e = c.fetch("ignored").unwrap_err();
        assert!(e.to_string().contains(":1:"), "{e}");
    }
}

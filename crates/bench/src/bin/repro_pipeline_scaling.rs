//! Pipelined query-wide morsel scheduling (§II.B: strides of data flow
//! through the whole operator chain, not operator-at-a-time).
//!
//! Runs the join+group repro query over 1.5M fact rows twice per worker
//! count — once on the materialized operator-at-a-time executor, once on
//! the pipeline scheduler — and records peak in-flight memory and the
//! scaling trajectory in `BENCH_pipeline.json`.
//!
//! The memory claim under test: the materialized executor's peak is
//! O(join output) because the aggregate's input batch is fully resident,
//! while the pipeline's peak is O(frozen build + morsels in flight), a
//! window bounded by `DASH_PIPELINE_INFLIGHT`. Both peaks are measured
//! the same way, through `peak_inflight_bytes` (budget-lease high-water
//! accounting on the statement).
//!
//! Timing model (the simulated-testbed convention shared by the repro
//! binaries, documented in the JSON): the harness is single-core, so a
//! w-worker run's measured wall time is the total CPU its threads
//! consumed; buffer-pool misses are simulated SSD random reads; modeled
//! elapsed is `(measured_cpu_wall + simulated_io) / fan-out`. cpu_wall_s
//! is the median of 3 measured runs.

use dash_bench::{report, section};
use dash_common::types::DataType;
use dash_common::{row, Field, Row, Schema};
use dash_core::{Database, HardwareSpec};
use dash_storage::iodevice::DeviceModel;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const FACT_ROWS: usize = 1_500_000;
const WORKERS: [usize; 3] = [1, 2, 4];
/// 2 MB buffer pool against a ~50 MB working set: the data-larger-than-RAM
/// regime where holding a whole joined intermediate hurts most.
const POOL_PAGES: usize = 64;

struct Run {
    workers: usize,
    pipelined: bool,
    cpu_s: f64,
    sim_io_s: f64,
    total_s: f64,
    peak_inflight_bytes: u64,
    peak_inflight_morsels: u64,
    pipelines_run: u64,
    pipeline_breakers: u64,
    identical: bool,
}

fn build_db() -> Arc<Database> {
    let db = Database::with_pool_pages(HardwareSpec::laptop(), POOL_PAGES);
    let schema = Schema::new(vec![
        Field::not_null("id", DataType::Int64),
        Field::new("grp", DataType::Int64),
        Field::new("qty", DataType::Int64),
        Field::new("qty2", DataType::Int64),
        Field::new("label", DataType::Utf8),
    ])
    .unwrap();
    let handle = db.catalog().create_table("facts", schema, None).unwrap();
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    let rows: Vec<Row> = (0..FACT_ROWS)
        .map(|i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            row![
                i as i64,
                ((x >> 17) % 17) as i64,
                ((x >> 7) % 1000) as i64 - 500,
                ((x >> 27) % 5000) as i64,
                format!("L{}", (x >> 41) % 23)
            ]
        })
        .collect();
    handle.write().load_rows(rows).unwrap();

    let dim_schema = Schema::new(vec![
        Field::not_null("g", DataType::Int64),
        Field::new("name", DataType::Utf8),
    ])
    .unwrap();
    let dim = db.catalog().create_table("dims", dim_schema, None).unwrap();
    let dim_rows: Vec<Row> = (0..12).map(|g| row![g as i64, format!("dim-{g}")]).collect();
    dim.write().load_rows(dim_rows).unwrap();
    db
}

/// Run `sql` at each worker count on both executors. Integer aggregates
/// make every result byte-identical up to group emit order, which the
/// ORDER BY pins — so each run asserts equality with the baseline.
fn scale_query(db: &Arc<Database>, sql: &str) -> Vec<Run> {
    let ssd = DeviceModel::ssd();
    let mut session = db.connect();
    let mut baseline: Option<Vec<Row>> = None;
    let mut runs = Vec::new();
    for &w in &WORKERS {
        for pipelined in [false, true] {
            db.catalog().set_parallelism(w);
            db.catalog().set_pipeline_enabled(pipelined);
            let _ = session.execute(sql).expect("query");
            let mut timed = Vec::new();
            for _ in 0..3 {
                let start = Instant::now();
                let result = session.execute(sql).expect("query");
                timed.push((start.elapsed().as_secs_f64(), result));
            }
            timed.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (cpu_s, result) = timed.swap_remove(1);
            let stats = result.stats;
            let identical = match &baseline {
                None => {
                    baseline = Some(result.rows);
                    true
                }
                Some(b) => *b == result.rows,
            };
            assert!(identical, "results diverged at {w} workers (pipelined={pipelined}):\n{sql}");
            let sim_io_s = ssd.read_time_us(stats.pool_misses, false) / 1e6;
            let fanout = stats.parallel_workers_used.max(1) as f64;
            runs.push(Run {
                workers: w,
                pipelined,
                cpu_s,
                sim_io_s,
                total_s: (cpu_s + sim_io_s) / fanout,
                peak_inflight_bytes: stats.peak_inflight_bytes,
                peak_inflight_morsels: stats.peak_inflight_morsels,
                pipelines_run: stats.pipelines_run,
                pipeline_breakers: stats.pipeline_breakers,
                identical,
            });
        }
    }
    db.catalog().set_pipeline_enabled(true);
    runs
}

fn find(runs: &[Run], workers: usize, pipelined: bool) -> &Run {
    runs.iter()
        .find(|r| r.workers == workers && r.pipelined == pipelined)
        .expect("run present")
}

fn main() {
    println!("Pipelined execution reproduction — dashdb-local-rs");
    println!("building {FACT_ROWS} fact rows against a {POOL_PAGES}-page pool...");
    let db = build_db();

    // Two group columns keep the materialized executor off the fused
    // join-aggregate shortcut, so it genuinely materializes the join
    // output — the intermediate whose residency the pipeline eliminates.
    let sql = "SELECT d.name, f.label, COUNT(*), SUM(f.qty) FROM facts f \
               JOIN dims d ON f.grp = d.g GROUP BY d.name, f.label \
               ORDER BY d.name, f.label";

    section("join + group, materialized vs pipelined");
    let runs = scale_query(&db, sql);
    for r in &runs {
        report(
            &format!(
                "{} worker(s), {}",
                r.workers,
                if r.pipelined { "pipelined   " } else { "materialized" }
            ),
            format!(
                "(cpu {:>7.1} ms + sim io {:>7.1} ms) = {:>7.1} ms modeled, peak {:>12} B in flight ({} pipelines, {} breakers, {} morsels)",
                r.cpu_s * 1e3,
                r.sim_io_s * 1e3,
                r.total_s * 1e3,
                r.peak_inflight_bytes,
                r.pipelines_run,
                r.pipeline_breakers,
                r.peak_inflight_morsels,
            ),
        );
    }

    section("shape checks");
    let mat4 = find(&runs, 4, false);
    let pipe4 = find(&runs, 4, true);
    let mem_reduction = mat4.peak_inflight_bytes as f64 / pipe4.peak_inflight_bytes.max(1) as f64;
    report(
        "pipelined peak memory well under materialized at 4 workers (>= 2x less)",
        format!(
            "{} B vs {} B = {:.1}x reduction {}",
            pipe4.peak_inflight_bytes,
            mat4.peak_inflight_bytes,
            mem_reduction,
            if mem_reduction >= 2.0 { "PASS" } else { "FAIL" }
        ),
    );
    let throughput_ratio = mat4.total_s / pipe4.total_s;
    report(
        "pipelined throughput no worse at 4 workers (>= 0.9x materialized)",
        format!(
            "{:.1} ms vs {:.1} ms = {:.2}x {}",
            pipe4.total_s * 1e3,
            mat4.total_s * 1e3,
            throughput_ratio,
            if throughput_ratio >= 0.9 { "PASS" } else { "FAIL" }
        ),
    );
    report(
        "results byte-identical across executors and worker counts",
        if runs.iter().all(|r| r.identical) {
            "PASS"
        } else {
            "FAIL"
        },
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pipeline_scaling\",\n");
    let _ = write!(
        json,
        "  \"fact_rows\": {FACT_ROWS},\n  \"bufferpool_pages\": {POOL_PAGES},\n"
    );
    json.push_str(
        "  \"memory_model\": \"peak_inflight_bytes is the statement's budget-lease high-water: \
         the materialized executor charges the aggregate's fully-resident input batch \
         (O(join output)); the pipeline scheduler charges the frozen join build plus every \
         claimed-but-unfolded morsel (O(window * morsel bytes), window = parallelism * 4 \
         unless DASH_PIPELINE_INFLIGHT overrides it).\",\n",
    );
    json.push_str(
        "  \"timing_model\": \"modeled_elapsed_s = (cpu_wall_s + sim_io_serial_s) / \
         parallel_workers_used; single-core harness, SSD-modeled pool misses, \
         cpu_wall_s median of 3.\",\n",
    );
    let _ = write!(
        json,
        "  \"peak_memory_reduction_at_4_workers\": {mem_reduction:.3},\n  \
         \"throughput_ratio_pipelined_vs_materialized_at_4_workers\": {throughput_ratio:.3},\n"
    );
    let _ = writeln!(json, "  \"sql\": \"{sql}\",");
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"pipelined\": {}, \"cpu_wall_s\": {:.6}, \"sim_io_serial_s\": {:.6}, \
             \"modeled_elapsed_s\": {:.6}, \"peak_inflight_bytes\": {}, \"peak_inflight_morsels\": {}, \
             \"pipelines_run\": {}, \"pipeline_breakers\": {}, \"results_identical\": {}}}{}",
            r.workers,
            r.pipelined,
            r.cpu_s,
            r.sim_io_s,
            r.total_s,
            r.peak_inflight_bytes,
            r.peak_inflight_morsels,
            r.pipelines_run,
            r.pipeline_breakers,
            r.identical,
            if i + 1 == runs.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("\nwrote BENCH_pipeline.json");
}

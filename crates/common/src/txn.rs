//! Transaction vocabulary: transaction ids, commit timestamps, and the
//! snapshot-visibility rule shared by the storage and execution layers.
//!
//! The engine stamps every row version with two 64-bit *timestamp words*
//! (insert and delete). A word is either:
//!
//! * `0` — "pre-history": the row version was loaded before transactions
//!   existed (bulk `load_rows`) and is visible to every snapshot;
//! * a committed timestamp `1..PENDING_BIT` assigned by the transaction
//!   manager's logical clock at commit;
//! * a *pending* word `PENDING_BIT | txn_id` while the writing transaction
//!   is still in flight — visible only to that transaction itself;
//! * [`TS_NEVER`] — in an insert slot: the insert was rolled back (the row
//!   position is a dead placeholder); in a delete slot: the row has never
//!   been deleted.
//!
//! Readers carry a [`SnapshotView`] and apply [`SnapshotView::visible`]:
//! a row is in the snapshot iff its insert happened (committed at or
//! before the snapshot timestamp, or pending in the reader's own
//! transaction) and its delete did not.

use std::fmt;

/// A transaction identifier, assigned monotonically by the transaction
/// manager. Ids start at 1; id 0 is reserved so a pending timestamp word
/// can never collide with the "pre-history" word `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// High bit tag marking a timestamp word as *pending*: the low 63 bits
/// hold the owning [`TxnId`]. Commit timestamps are always below this bit,
/// so a single unsigned compare distinguishes the two states.
pub const PENDING_BIT: u64 = 1 << 63;

/// Sentinel timestamp word meaning "never": an insert that was rolled
/// back, or a delete that has not happened.
pub const TS_NEVER: u64 = u64::MAX;

/// Build a pending timestamp word owned by `txn`.
#[inline]
pub fn pending(txn: TxnId) -> u64 {
    debug_assert!(txn.0 < PENDING_BIT, "txn id overflow");
    PENDING_BIT | txn.0
}

/// Is this timestamp word a pending (uncommitted) marker?
///
/// `TS_NEVER` also has the high bit set but is excluded: it means
/// "never", not "in flight".
#[inline]
pub fn is_pending(ts: u64) -> bool {
    ts & PENDING_BIT != 0 && ts != TS_NEVER
}

/// The transaction that owns a pending timestamp word.
#[inline]
pub fn pending_owner(ts: u64) -> TxnId {
    debug_assert!(is_pending(ts));
    TxnId(ts & !PENDING_BIT)
}

/// A reader's view of the database: every scan under snapshot isolation
/// carries one of these and filters row versions through
/// [`SnapshotView::visible`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotView {
    /// Snapshot timestamp: the value of the commit clock when the
    /// transaction (or autocommit statement) began. Commits with
    /// timestamp `<= ts` are in the snapshot.
    pub ts: u64,
    /// The reading transaction, if any. Its own pending writes are
    /// visible to itself (read-your-writes); `None` for plain snapshot
    /// readers outside any transaction.
    pub txn: Option<TxnId>,
}

impl SnapshotView {
    /// A snapshot at commit-clock value `ts` with no owning transaction.
    pub fn at(ts: u64) -> Self {
        SnapshotView { ts, txn: None }
    }

    /// Did the event stamped with `word` happen, as seen from this
    /// snapshot? Used for both insert and delete words.
    #[inline]
    pub fn happened(&self, word: u64) -> bool {
        if word == TS_NEVER {
            false
        } else if is_pending(word) {
            self.txn == Some(pending_owner(word))
        } else {
            word <= self.ts
        }
    }

    /// The core MVCC visibility rule: the row version is visible iff its
    /// insert happened and its delete has not.
    #[inline]
    pub fn visible(&self, insert_ts: u64, delete_ts: u64) -> bool {
        self.happened(insert_ts) && !self.happened(delete_ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_roundtrip() {
        let t = TxnId(42);
        let w = pending(t);
        assert!(is_pending(w));
        assert_eq!(pending_owner(w), t);
        assert!(!is_pending(7));
        assert!(!is_pending(TS_NEVER));
        assert!(!is_pending(0));
    }

    #[test]
    fn visibility_rules() {
        let snap = SnapshotView::at(10);
        // Pre-history row, never deleted: visible.
        assert!(snap.visible(0, TS_NEVER));
        // Committed at 10 (== snapshot): visible.
        assert!(snap.visible(10, TS_NEVER));
        // Committed after the snapshot: invisible.
        assert!(!snap.visible(11, TS_NEVER));
        // Deleted within the snapshot: invisible.
        assert!(!snap.visible(3, 9));
        // Deleted after the snapshot: still visible.
        assert!(snap.visible(3, 11));
        // Rolled-back insert: never visible.
        assert!(!snap.visible(TS_NEVER, TS_NEVER));
    }

    #[test]
    fn read_your_writes() {
        let me = TxnId(5);
        let other = TxnId(6);
        let snap = SnapshotView {
            ts: 10,
            txn: Some(me),
        };
        // My pending insert is visible to me, not to others.
        assert!(snap.visible(pending(me), TS_NEVER));
        assert!(!snap.visible(pending(other), TS_NEVER));
        // My pending delete hides the row from me only.
        assert!(!snap.visible(3, pending(me)));
        let them = SnapshotView {
            ts: 10,
            txn: Some(other),
        };
        assert!(them.visible(3, pending(me)));
    }
}

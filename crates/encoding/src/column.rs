//! Column-level encoding decisions and block encode/decode.
//!
//! [`ColumnCompressor::analyze`] implements the "optimized globally per
//! column" half of the paper's compression story: it inspects a column's
//! value distribution and picks minus encoding (high-cardinality numerics)
//! or a frequency-partitioned dictionary (everything else, including all
//! strings). [`ColumnCompressor::encode_block`] then applies the page-local
//! half: per-block re-basing for minus blocks and selector elision for
//! single-partition dictionary blocks.

use crate::bitmap::Bitmap;
use crate::bitpack::BitPackedVec;
use crate::block::{BlockRepr, EncodedBlock, ExceptionBank};
use crate::dict::FreqDict;
use crate::histogram::Histogram;
use crate::minus::MinusBlock;
use crate::order::{f64_to_ordered, i64_to_ordered, ordered_to_f64, ordered_to_i64};
use crate::prefix::{global_prefix, str_prefix_ordered};
use dash_common::{DashError, DataType, Datum, Result};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Typed column values, the decoded in-memory form.
///
/// Integer-encodable types (ints, dates, timestamps, bools, decimals) all
/// live in the `Int` variant; the enclosing schema's [`DataType`] recovers
/// the logical type at the edges.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnValues {
    /// Integer-domain values.
    Int(Vec<Option<i64>>),
    /// Floating-point values.
    Float(Vec<Option<f64>>),
    /// String values.
    Str(Vec<Option<Arc<str>>>),
}

impl ColumnValues {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnValues::Int(v) => v.len(),
            ColumnValues::Float(v) => v.len(),
            ColumnValues::Str(v) => v.len(),
        }
    }

    /// True if there are no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empty container matching `dt`'s domain.
    pub fn empty_for(dt: DataType) -> ColumnValues {
        match value_kind(dt) {
            ValueKind::Int => ColumnValues::Int(Vec::new()),
            ValueKind::Float => ColumnValues::Float(Vec::new()),
            ValueKind::Str => ColumnValues::Str(Vec::new()),
        }
    }

    /// Extract one column from rows of datums (the INSERT path).
    pub fn from_datums(dt: DataType, data: &[Datum]) -> Result<ColumnValues> {
        match value_kind(dt) {
            ValueKind::Int => {
                let mut out = Vec::with_capacity(data.len());
                for d in data {
                    out.push(datum_to_int(dt, d)?);
                }
                Ok(ColumnValues::Int(out))
            }
            ValueKind::Float => {
                let mut out = Vec::with_capacity(data.len());
                for d in data {
                    out.push(match d {
                        Datum::Null => None,
                        other => Some(other.as_float().ok_or_else(|| {
                            DashError::analysis(format!("expected float, got {other:?}"))
                        })?),
                    });
                }
                Ok(ColumnValues::Float(out))
            }
            ValueKind::Str => {
                let mut out = Vec::with_capacity(data.len());
                for d in data {
                    out.push(match d {
                        Datum::Null => None,
                        Datum::Str(s) => Some(s.clone()),
                        other => {
                            return Err(DashError::analysis(format!(
                                "expected string, got {other:?}"
                            )))
                        }
                    });
                }
                Ok(ColumnValues::Str(out))
            }
        }
    }

    /// Convert position `i` back to a datum of logical type `dt`.
    pub fn datum_at(&self, dt: DataType, i: usize) -> Datum {
        match self {
            ColumnValues::Int(v) => match v[i] {
                None => Datum::Null,
                Some(x) => int_to_datum(dt, x),
            },
            ColumnValues::Float(v) => v[i].map_or(Datum::Null, Datum::Float),
            ColumnValues::Str(v) => v[i]
                .as_ref()
                .map_or(Datum::Null, |s| Datum::Str(s.clone())),
        }
    }

    /// Append the values at `positions` of `src` (same variant) without
    /// materializing datums — the vectorized gather used by scan
    /// materialization.
    ///
    /// # Panics
    /// Panics if the variants differ (caller guarantees same column kind).
    pub fn append_selected(&mut self, src: &ColumnValues, positions: &[usize]) {
        match (self, src) {
            (ColumnValues::Int(dst), ColumnValues::Int(s)) => {
                dst.extend(positions.iter().map(|&p| s[p]));
            }
            (ColumnValues::Float(dst), ColumnValues::Float(s)) => {
                dst.extend(positions.iter().map(|&p| s[p]));
            }
            (ColumnValues::Str(dst), ColumnValues::Str(s)) => {
                dst.extend(positions.iter().map(|&p| s[p].clone()));
            }
            _ => panic!("append_selected across column kinds (caller bug)"),
        }
    }

    /// Append every value of `other` (same variant) — the stitch step that
    /// reassembles per-morsel partial columns in morsel order. When `self`
    /// is still empty the whole vector is moved, not copied.
    pub fn extend_from(&mut self, other: ColumnValues) {
        fn merge<T>(dst: &mut Vec<T>, src: Vec<T>) {
            if dst.is_empty() {
                *dst = src;
            } else {
                dst.extend(src);
            }
        }
        match (self, other) {
            (ColumnValues::Int(dst), ColumnValues::Int(s)) => merge(dst, s),
            (ColumnValues::Float(dst), ColumnValues::Float(s)) => merge(dst, s),
            (ColumnValues::Str(dst), ColumnValues::Str(s)) => merge(dst, s),
            _ => panic!("extend_from across column kinds (caller bug)"),
        }
    }

    /// Append a datum (must match the container's domain).
    pub fn push_datum(&mut self, dt: DataType, d: &Datum) -> Result<()> {
        match self {
            ColumnValues::Int(v) => v.push(datum_to_int(dt, d)?),
            ColumnValues::Float(v) => v.push(match d {
                Datum::Null => None,
                other => Some(other.as_float().ok_or_else(|| {
                    DashError::analysis(format!("expected float, got {other:?}"))
                })?),
            }),
            ColumnValues::Str(v) => v.push(match d {
                Datum::Null => None,
                Datum::Str(s) => Some(s.clone()),
                other => {
                    return Err(DashError::analysis(format!(
                        "expected string, got {other:?}"
                    )))
                }
            }),
        }
        Ok(())
    }
}

/// The storage domain a logical type maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueKind {
    /// Stored as i64 (ints, bools, dates, timestamps, unscaled decimals).
    Int,
    /// Stored as f64.
    Float,
    /// Stored as UTF-8 strings.
    Str,
}

/// Map a logical type onto its storage domain.
pub fn value_kind(dt: DataType) -> ValueKind {
    if dt.is_integer_encodable() {
        ValueKind::Int
    } else if dt.is_float() {
        ValueKind::Float
    } else {
        ValueKind::Str
    }
}

fn datum_to_int(dt: DataType, d: &Datum) -> Result<Option<i64>> {
    Ok(match d {
        Datum::Null => None,
        Datum::Bool(b) => Some(*b as i64),
        Datum::Int(v) => Some(*v),
        Datum::Date(v) => Some(*v as i64),
        Datum::Timestamp(v) => Some(*v),
        Datum::Decimal(v, s) => {
            // Rescale to the column's declared scale.
            let target = match dt {
                DataType::Decimal(_, ts) => ts,
                _ => *s,
            };
            let rescaled = crate::column::rescale_i128(*v, *s, target)?;
            Some(i64::try_from(rescaled).map_err(|_| {
                DashError::exec(format!("decimal {d:?} overflows storage range"))
            })?)
        }
        other => {
            return Err(DashError::analysis(format!(
                "expected integer-encodable value, got {other:?}"
            )))
        }
    })
}

pub(crate) fn rescale_i128(v: i128, from: u8, to: u8) -> Result<i128> {
    use std::cmp::Ordering::*;
    Ok(match from.cmp(&to) {
        Equal => v,
        Less => v
            .checked_mul(10i128.pow((to - from) as u32))
            .ok_or_else(|| DashError::exec("decimal rescale overflow"))?,
        Greater => {
            let div = 10i128.pow((from - to) as u32);
            (v + v.signum() * div / 2) / div
        }
    })
}

/// Map a predicate bound onto the orderable-u64 domain of a column of
/// logical type `dt`. Strings map through their (lossy but monotone)
/// 8-byte prefix, which is sound for synopsis pruning.
pub fn datum_to_ordered(dt: DataType, d: &Datum) -> Result<u64> {
    let coerced = dash_common::row::coerce_datum(d.clone(), dt)?;
    match value_kind(dt) {
        ValueKind::Int => {
            let v = datum_to_int(dt, &coerced)?
                .ok_or_else(|| DashError::internal("NULL predicate bound"))?;
            Ok(i64_to_ordered(v))
        }
        ValueKind::Float => {
            let v = coerced
                .as_float()
                .ok_or_else(|| DashError::internal("non-float bound"))?;
            Ok(f64_to_ordered(v))
        }
        ValueKind::Str => {
            let s = coerced
                .as_str()
                .ok_or_else(|| DashError::internal("non-string bound"))?;
            Ok(str_prefix_ordered(s))
        }
    }
}

fn int_to_datum(dt: DataType, x: i64) -> Datum {
    match dt {
        DataType::Bool => Datum::Bool(x != 0),
        DataType::Date => Datum::Date(x as i32),
        DataType::Timestamp => Datum::Timestamp(x),
        DataType::Decimal(_, s) => Datum::Decimal(x as i128, s),
        _ => Datum::Int(x),
    }
}

/// The column-global encoding decision plus the metadata needed to encode,
/// decode, and map predicates onto codes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ColumnEncoding {
    /// Per-block frame-of-reference coding in the orderable-u64 domain.
    Minus {
        /// Whether codes map back to i64 or f64.
        kind: ValueKind,
    },
    /// Frequency-partitioned dictionary over orderable-u64 values.
    IntDict {
        /// Whether codes map back to i64 or f64.
        kind: ValueKind,
        /// The dictionary.
        dict: FreqDict<u64>,
    },
    /// Frequency-partitioned dictionary over strings, with a column-global
    /// shared prefix stripped before dictionary lookup.
    StrDict {
        /// Longest prefix shared by every value at analyze time ("" if the
        /// column gained values without it later; those become exceptions).
        prefix: String,
        /// Dictionary over the post-prefix suffixes... of full values.
        /// (We keep full values in the dictionary for simplicity; the
        /// prefix is exploited by the front-coded storage format.)
        dict: FreqDict<Arc<str>>,
    },
}

impl ColumnEncoding {
    /// The storage domain of this encoding.
    pub fn kind(&self) -> ValueKind {
        match self {
            ColumnEncoding::Minus { kind } | ColumnEncoding::IntDict { kind, .. } => *kind,
            ColumnEncoding::StrDict { .. } => ValueKind::Str,
        }
    }

    /// Human-readable name for EXPLAIN and the compression report.
    pub fn name(&self) -> &'static str {
        match self {
            ColumnEncoding::Minus { .. } => "minus",
            ColumnEncoding::IntDict { .. } => "frequency-dict",
            ColumnEncoding::StrDict { .. } => "prefix+frequency-dict",
        }
    }
}

/// Tuning knobs for [`ColumnCompressor::analyze`].
#[derive(Debug, Clone)]
pub struct CompressorOptions {
    /// Max distinct values before an integer column falls back to minus
    /// encoding.
    pub max_dict_cardinality: usize,
    /// A dictionary must cover at least this fraction of occurrences per
    /// distinct value on average (cardinality < len * ratio) to be chosen.
    pub dict_cardinality_ratio: f64,
}

impl Default for CompressorOptions {
    fn default() -> Self {
        CompressorOptions {
            max_dict_cardinality: 1 << 16,
            dict_cardinality_ratio: 0.5,
        }
    }
}

/// Analyzes columns and encodes/decodes blocks.
#[derive(Debug, Clone, Default)]
pub struct ColumnCompressor {
    /// Analysis options.
    pub options: CompressorOptions,
}

impl ColumnCompressor {
    /// Create with default options.
    pub fn new() -> ColumnCompressor {
        ColumnCompressor::default()
    }

    /// Choose the column-global encoding from (a sample of) the values.
    pub fn analyze(&self, values: &ColumnValues) -> ColumnEncoding {
        match values {
            ColumnValues::Int(v) => {
                let ordered: Vec<Option<u64>> =
                    v.iter().map(|o| o.map(i64_to_ordered)).collect();
                self.analyze_ordered(ValueKind::Int, &ordered)
            }
            ColumnValues::Float(v) => {
                let ordered: Vec<Option<u64>> =
                    v.iter().map(|o| o.map(f64_to_ordered)).collect();
                self.analyze_ordered(ValueKind::Float, &ordered)
            }
            ColumnValues::Str(v) => {
                let hist = Histogram::from_values(v.iter().map(|o| o.as_ref()));
                let prefix = global_prefix(v.iter().flatten());
                ColumnEncoding::StrDict {
                    prefix,
                    dict: FreqDict::build(&hist),
                }
            }
        }
    }

    fn analyze_ordered(&self, kind: ValueKind, ordered: &[Option<u64>]) -> ColumnEncoding {
        let hist = Histogram::from_values(ordered.iter().map(|o| o.as_ref()));
        let card = hist.cardinality();
        let n = hist.total() as usize;
        if card <= self.options.max_dict_cardinality
            && (n == 0 || (card as f64) < n as f64 * self.options.dict_cardinality_ratio)
        {
            ColumnEncoding::IntDict {
                kind,
                dict: FreqDict::build(&hist),
            }
        } else {
            ColumnEncoding::Minus { kind }
        }
    }

    /// Encode a contiguous range of a column's values into one block.
    pub fn encode_block(
        &self,
        enc: &ColumnEncoding,
        values: &ColumnValues,
        range: std::ops::Range<usize>,
    ) -> EncodedBlock {
        let len = range.len();
        match (enc, values) {
            (ColumnEncoding::Minus { .. }, ColumnValues::Int(v)) => {
                let ordered: Vec<Option<u64>> = v[range.clone()]
                    .iter()
                    .map(|o| o.map(i64_to_ordered))
                    .collect();
                minus_block(len, &ordered)
            }
            (ColumnEncoding::Minus { .. }, ColumnValues::Float(v)) => {
                let ordered: Vec<Option<u64>> = v[range.clone()]
                    .iter()
                    .map(|o| o.map(f64_to_ordered))
                    .collect();
                minus_block(len, &ordered)
            }
            (ColumnEncoding::IntDict { dict, .. }, ColumnValues::Int(v)) => {
                let ordered: Vec<Option<u64>> = v[range.clone()]
                    .iter()
                    .map(|o| o.map(i64_to_ordered))
                    .collect();
                dict_block(len, dict, &ordered, ExceptionBank::Int(Vec::new()))
            }
            (ColumnEncoding::IntDict { dict, .. }, ColumnValues::Float(v)) => {
                let ordered: Vec<Option<u64>> = v[range.clone()]
                    .iter()
                    .map(|o| o.map(f64_to_ordered))
                    .collect();
                dict_block(len, dict, &ordered, ExceptionBank::Int(Vec::new()))
            }
            (ColumnEncoding::StrDict { dict, .. }, ColumnValues::Str(v)) => {
                str_dict_block(len, dict, &v[range.clone()])
            }
            _ => panic!("encoding/value-kind mismatch (caller bug)"),
        }
    }

    /// Decode a block back to typed values.
    pub fn decode_block(&self, enc: &ColumnEncoding, block: &EncodedBlock) -> ColumnValues {
        match enc {
            ColumnEncoding::Minus { kind } | ColumnEncoding::IntDict { kind, .. } => {
                let mut ordered: Vec<Option<u64>> = vec![None; block.len];
                block.for_each_pos(|i, pc| {
                    ordered[i] = Some(match pc {
                        crate::block::PosCode::Minus(v) => v,
                        crate::block::PosCode::Dict(p, c) => match enc {
                            ColumnEncoding::IntDict { dict, .. } => *dict.decode(p, c),
                            _ => unreachable!("dict code in minus column"),
                        },
                        crate::block::PosCode::ExcInt(v) => v,
                        crate::block::PosCode::ExcStr(_) => {
                            unreachable!("string exception in numeric column")
                        }
                    });
                });
                match kind {
                    ValueKind::Int => ColumnValues::Int(
                        ordered.iter().map(|o| o.map(ordered_to_i64)).collect(),
                    ),
                    ValueKind::Float => ColumnValues::Float(
                        ordered.iter().map(|o| o.map(ordered_to_f64)).collect(),
                    ),
                    ValueKind::Str => unreachable!("numeric encoding with str kind"),
                }
            }
            ColumnEncoding::StrDict { dict, .. } => {
                let mut out: Vec<Option<Arc<str>>> = vec![None; block.len];
                block.for_each_pos(|i, pc| {
                    out[i] = Some(match pc {
                        crate::block::PosCode::Dict(p, c) => dict.decode(p, c).clone(),
                        crate::block::PosCode::ExcStr(s) => Arc::from(s),
                        other => unreachable!("numeric code {other:?} in string column"),
                    });
                });
                ColumnValues::Str(out)
            }
        }
    }

    /// Min/max of a block in the orderable-u64 domain (strings use their
    /// 8-byte prefix mapping) — the data the synopsis stores per stride.
    pub fn block_min_max(&self, enc: &ColumnEncoding, block: &EncodedBlock) -> Option<(u64, u64)> {
        let mut min: Option<u64> = None;
        let mut max: Option<u64> = None;
        let mut update = |v: u64| {
            min = Some(min.map_or(v, |m| m.min(v)));
            max = Some(max.map_or(v, |m| m.max(v)));
        };
        block.for_each_pos(|_, pc| {
            let v = match pc {
                crate::block::PosCode::Minus(v) | crate::block::PosCode::ExcInt(v) => v,
                crate::block::PosCode::Dict(p, c) => match enc {
                    ColumnEncoding::IntDict { dict, .. } => *dict.decode(p, c),
                    ColumnEncoding::StrDict { dict, .. } => {
                        str_prefix_ordered(dict.decode(p, c))
                    }
                    ColumnEncoding::Minus { .. } => unreachable!("dict code in minus column"),
                },
                crate::block::PosCode::ExcStr(s) => str_prefix_ordered(s),
            };
            update(v);
        });
        min.zip(max)
    }
}

fn nulls_bitmap<T>(values: &[Option<T>]) -> Option<Bitmap> {
    if values.iter().any(|v| v.is_none()) {
        Some(Bitmap::from_bools(values.iter().map(|v| v.is_none())))
    } else {
        None
    }
}

fn minus_block(len: usize, ordered: &[Option<u64>]) -> EncodedBlock {
    EncodedBlock {
        len,
        nulls: nulls_bitmap(ordered),
        repr: BlockRepr::Minus(MinusBlock::encode(ordered)),
    }
}

fn dict_block(
    len: usize,
    dict: &FreqDict<u64>,
    ordered: &[Option<u64>],
    mut exceptions: ExceptionBank,
) -> EncodedBlock {
    let nparts = dict.partition_count();
    let mut tags: Vec<u64> = Vec::with_capacity(len);
    let mut banks: Vec<Vec<u64>> = vec![Vec::new(); nparts];
    for v in ordered {
        match v {
            None => {
                // NULL: dummy entry in partition 0 keeps cursors aligned.
                tags.push(0);
                banks[0].push(0);
            }
            Some(v) => match dict.encode(v) {
                Some((p, c)) => {
                    tags.push(p as u64);
                    banks[p as usize].push(c);
                }
                None => {
                    tags.push(nparts as u64);
                    match &mut exceptions {
                        ExceptionBank::Int(e) => e.push(*v),
                        ExceptionBank::Str(_) => unreachable!("int exception bank expected"),
                    }
                }
            },
        }
    }
    finish_dict_block(len, dict.selector_width(), tags, banks, dict, exceptions, nulls_bitmap(ordered))
}

fn str_dict_block(
    len: usize,
    dict: &FreqDict<Arc<str>>,
    values: &[Option<Arc<str>>],
) -> EncodedBlock {
    let nparts = dict.partition_count();
    let mut tags: Vec<u64> = Vec::with_capacity(len);
    let mut banks: Vec<Vec<u64>> = vec![Vec::new(); nparts];
    let mut exc: Vec<Arc<str>> = Vec::new();
    for v in values {
        match v {
            None => {
                tags.push(0);
                banks[0].push(0);
            }
            Some(s) => match dict.encode(s) {
                Some((p, c)) => {
                    tags.push(p as u64);
                    banks[p as usize].push(c);
                }
                None => {
                    tags.push(nparts as u64);
                    exc.push(s.clone());
                }
            },
        }
    }
    let widths: Vec<u8> = dict.partitions().iter().map(|p| p.width).collect();
    finish_dict_block_generic(
        len,
        dict.selector_width(),
        tags,
        banks,
        &widths,
        ExceptionBank::Str(exc),
        nulls_bitmap(values),
    )
}

fn finish_dict_block(
    len: usize,
    sel_width: u8,
    tags: Vec<u64>,
    banks: Vec<Vec<u64>>,
    dict: &FreqDict<u64>,
    exceptions: ExceptionBank,
    nulls: Option<Bitmap>,
) -> EncodedBlock {
    let widths: Vec<u8> = dict.partitions().iter().map(|p| p.width).collect();
    finish_dict_block_generic(len, sel_width, tags, banks, &widths, exceptions, nulls)
}

fn finish_dict_block_generic(
    len: usize,
    sel_width: u8,
    tags: Vec<u64>,
    banks: Vec<Vec<u64>>,
    widths: &[u8],
    exceptions: ExceptionBank,
    nulls: Option<Bitmap>,
) -> EncodedBlock {
    let packed_banks: Vec<BitPackedVec> = banks
        .iter()
        .zip(widths)
        .map(|(codes, &w)| BitPackedVec::from_codes(w, codes))
        .collect();
    // Page-local optimization: elide the selector vector when every value
    // landed in a single partition and there are no exceptions.
    let first_tag = tags.first().copied();
    let uniform = exceptions.is_empty()
        && first_tag.is_some_and(|t| tags.iter().all(|&x| x == t));
    let (selectors, single_part) = if uniform {
        (None, first_tag.unwrap_or(0) as u8)
    } else {
        (Some(BitPackedVec::from_codes(sel_width, &tags)), 0)
    };
    EncodedBlock {
        len,
        nulls,
        repr: BlockRepr::Dict {
            selectors,
            single_part,
            banks: packed_banks,
            exceptions,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(values: ColumnValues) {
        let comp = ColumnCompressor::new();
        let enc = comp.analyze(&values);
        let n = values.len();
        let block = comp.encode_block(&enc, &values, 0..n);
        let decoded = comp.decode_block(&enc, &block);
        assert_eq!(decoded, values, "encoding {}", enc.name());
    }

    #[test]
    fn int_dict_roundtrip_with_nulls() {
        let v: Vec<Option<i64>> = (0..500)
            .map(|i| {
                if i % 7 == 0 {
                    None
                } else {
                    Some((i % 10) as i64 - 5)
                }
            })
            .collect();
        roundtrip(ColumnValues::Int(v));
    }

    #[test]
    fn high_cardinality_chooses_minus() {
        let v: Vec<Option<i64>> = (0..1000).map(|i| Some(i * 13 + 1_000_000)).collect();
        let comp = ColumnCompressor::new();
        let enc = comp.analyze(&ColumnValues::Int(v.clone()));
        assert_eq!(enc.name(), "minus");
        roundtrip(ColumnValues::Int(v));
    }

    #[test]
    fn low_cardinality_chooses_dict() {
        let v: Vec<Option<i64>> = (0..1000).map(|i| Some((i % 4) as i64)).collect();
        let comp = ColumnCompressor::new();
        let enc = comp.analyze(&ColumnValues::Int(v.clone()));
        assert_eq!(enc.name(), "frequency-dict");
        roundtrip(ColumnValues::Int(v));
    }

    #[test]
    fn float_roundtrip() {
        let v: Vec<Option<f64>> = (0..300)
            .map(|i| {
                if i % 11 == 0 {
                    None
                } else {
                    Some(i as f64 * 0.25 - 17.5)
                }
            })
            .collect();
        roundtrip(ColumnValues::Float(v));
    }

    #[test]
    fn string_roundtrip() {
        let v: Vec<Option<Arc<str>>> = (0..400)
            .map(|i| {
                if i % 13 == 0 {
                    None
                } else {
                    Some(Arc::from(format!("city-{}", i % 20).as_str()))
                }
            })
            .collect();
        roundtrip(ColumnValues::Str(v));
    }

    #[test]
    fn exceptions_roundtrip() {
        // Analyze on one set, encode a block containing unseen values.
        let analyzed: Vec<Option<i64>> = (0..100).map(|i| Some((i % 5) as i64)).collect();
        let comp = ColumnCompressor::new();
        let enc = comp.analyze(&ColumnValues::Int(analyzed));
        let newdata: Vec<Option<i64>> =
            vec![Some(0), Some(999_999), Some(3), None, Some(-777)];
        let block = comp.encode_block(&enc, &ColumnValues::Int(newdata.clone()), 0..5);
        let decoded = comp.decode_block(&enc, &block);
        assert_eq!(decoded, ColumnValues::Int(newdata));
    }

    #[test]
    fn string_exceptions_roundtrip() {
        let analyzed: Vec<Option<Arc<str>>> =
            (0..50).map(|i| Some(Arc::from(format!("v{}", i % 3).as_str()))).collect();
        let comp = ColumnCompressor::new();
        let enc = comp.analyze(&ColumnValues::Str(analyzed));
        let newdata: Vec<Option<Arc<str>>> = vec![
            Some(Arc::from("v0")),
            Some(Arc::from("unseen-value")),
            None,
        ];
        let block = comp.encode_block(&enc, &ColumnValues::Str(newdata.clone()), 0..3);
        let decoded = comp.decode_block(&enc, &block);
        assert_eq!(decoded, ColumnValues::Str(newdata));
    }

    #[test]
    fn selector_elision_when_uniform() {
        // All values hit the same (hot) partition -> no selector vector.
        let v: Vec<Option<i64>> = vec![Some(1); 256];
        let comp = ColumnCompressor::new();
        let enc = comp.analyze(&ColumnValues::Int(v.clone()));
        let block = comp.encode_block(&enc, &ColumnValues::Int(v), 0..256);
        match &block.repr {
            BlockRepr::Dict { selectors, .. } => assert!(selectors.is_none()),
            other => panic!("expected dict block, got {other:?}"),
        }
    }

    #[test]
    fn block_min_max_matches_values() {
        let v: Vec<Option<i64>> = vec![Some(-5), Some(100), None, Some(7)];
        let comp = ColumnCompressor::new();
        let enc = comp.analyze(&ColumnValues::Int(v.clone()));
        let block = comp.encode_block(&enc, &ColumnValues::Int(v), 0..4);
        let (lo, hi) = comp.block_min_max(&enc, &block).unwrap();
        assert_eq!(ordered_to_i64(lo), -5);
        assert_eq!(ordered_to_i64(hi), 100);
    }

    #[test]
    fn compression_ratio_on_skewed_data() {
        // 90% one value, 10% spread over 100: should compress far below
        // 8 bytes/value.
        let v: Vec<Option<i64>> = (0..10_000)
            .map(|i| Some(if i % 10 != 0 { 42 } else { (i % 100) as i64 }))
            .collect();
        let comp = ColumnCompressor::new();
        let vals = ColumnValues::Int(v);
        let enc = comp.analyze(&vals);
        let block = comp.encode_block(&enc, &vals, 0..10_000);
        let raw = 10_000 * 8;
        let ratio = raw as f64 / block.size_bytes() as f64;
        assert!(ratio > 5.0, "expected >5x compression, got {ratio:.1}x");
    }

    #[test]
    fn datum_conversion_decimal_rescale() {
        let dt = DataType::Decimal(10, 2);
        let vals = ColumnValues::from_datums(
            dt,
            &[Datum::Decimal(5, 1), Datum::Int(3), Datum::Null],
        );
        // Datum::Int(3) is not valid for from_datums? It is: Int -> decimal path
        // goes through datum_to_int which handles Int directly.
        let vals = vals.unwrap();
        match &vals {
            ColumnValues::Int(v) => {
                assert_eq!(v[0], Some(50)); // 0.5 rescaled to scale 2
                assert_eq!(v[1], Some(3)); // raw int stored as-is (unscaled by caller)
                assert_eq!(v[2], None);
            }
            _ => panic!("expected int storage"),
        }
        assert_eq!(vals.datum_at(dt, 0), Datum::Decimal(50, 2));
    }

    proptest! {
        #[test]
        fn prop_int_roundtrip(v in prop::collection::vec(prop::option::of(-1000i64..1000), 1..300)) {
            roundtrip(ColumnValues::Int(v));
        }

        #[test]
        fn prop_str_roundtrip(v in prop::collection::vec(prop::option::of("[a-c]{0,6}"), 1..200)) {
            let arcs: Vec<Option<Arc<str>>> = v.into_iter()
                .map(|o| o.map(|s| Arc::from(s.as_str())))
                .collect();
            roundtrip(ColumnValues::Str(arcs));
        }

        #[test]
        fn prop_min_max_sound(v in prop::collection::vec(prop::option::of(any::<i64>()), 1..200)) {
            let comp = ColumnCompressor::new();
            let vals = ColumnValues::Int(v.clone());
            let enc = comp.analyze(&vals);
            let n = vals.len();
            let block = comp.encode_block(&enc, &vals, 0..n);
            let mm = comp.block_min_max(&enc, &block);
            let present: Vec<i64> = v.iter().flatten().copied().collect();
            match mm {
                Some((lo, hi)) => {
                    prop_assert_eq!(ordered_to_i64(lo), *present.iter().min().unwrap());
                    prop_assert_eq!(ordered_to_i64(hi), *present.iter().max().unwrap());
                }
                None => prop_assert!(present.is_empty()),
            }
        }
    }
}

//! Runtime values.
//!
//! [`Datum`] is the dynamically-typed value that flows through row-oriented
//! paths (INSERT, the row-store baseline, final result sets). The columnar
//! engine converts datums to/from compressed integer codes at its edges.

use crate::date;
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single dynamically-typed SQL value, including `NULL`.
///
/// Strings are reference-counted so rows can be cloned cheaply during
/// shuffles and spills.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Datum {
    /// SQL NULL (typed NULLs are tracked by the enclosing schema).
    Null,
    /// Boolean value.
    Bool(bool),
    /// Any integer value (INT16/32/64 all widen to i64 at runtime).
    Int(i64),
    /// Any float value (FLOAT32 widens to f64 at runtime).
    Float(f64),
    /// Decimal: unscaled value plus scale, e.g. `Decimal(12345, 2)` = 123.45.
    Decimal(i128, u8),
    /// Date as days since 1970-01-01.
    Date(i32),
    /// Timestamp as microseconds since the epoch.
    Timestamp(i64),
    /// UTF-8 string.
    Str(Arc<str>),
}

impl Datum {
    /// Construct a string datum.
    pub fn str(s: impl Into<Arc<str>>) -> Datum {
        Datum::Str(s.into())
    }

    /// True if this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// The runtime data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        Some(match self {
            Datum::Null => return None,
            Datum::Bool(_) => DataType::Bool,
            Datum::Int(_) => DataType::Int64,
            Datum::Float(_) => DataType::Float64,
            Datum::Decimal(_, s) => DataType::Decimal(38, *s),
            Datum::Date(_) => DataType::Date,
            Datum::Timestamp(_) => DataType::Timestamp,
            Datum::Str(_) => DataType::Utf8,
        })
    }

    /// Extract an i64, widening smaller integers; `None` for non-integers.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            Datum::Bool(b) => Some(*b as i64),
            Datum::Date(d) => Some(*d as i64),
            Datum::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Extract a float, converting integers and decimals; `None` otherwise.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Datum::Float(v) => Some(*v),
            Datum::Int(v) => Some(*v as f64),
            Datum::Decimal(v, s) => Some(*v as f64 / 10f64.powi(*s as i32)),
            _ => None,
        }
    }

    /// Extract a string slice; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a bool; `None` for non-bools.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this datum is numeric (int, float or decimal).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Datum::Int(_) | Datum::Float(_) | Datum::Decimal(_, _))
    }

    /// Total-order comparison with SQL semantics: `NULL` sorts last (the
    /// convention used by the engine's sort operator), numerics compare by
    /// value across int/float/decimal, and cross-type comparisons that make
    /// no sense order by type tag (deterministic, never panics).
    pub fn sql_cmp(&self, other: &Datum) -> Ordering {
        use Datum::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Greater, // NULLs last
            (_, Null) => Ordering::Less,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Date(a), Date(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Date(a), Timestamp(b)) => date::date_to_timestamp_micros(*a).cmp(b),
            (Timestamp(a), Date(b)) => a.cmp(&date::date_to_timestamp_micros(*b)),
            (a, b) if a.is_numeric() && b.is_numeric() => {
                // Fast path: both ints.
                if let (Int(x), Int(y)) = (a, b) {
                    return x.cmp(y);
                }
                let x = a.as_float().unwrap_or(f64::NAN);
                let y = b.as_float().unwrap_or(f64::NAN);
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (a, b) => a.type_tag().cmp(&b.type_tag()),
        }
    }

    /// SQL equality (`=`): returns `None` when either side is NULL
    /// (three-valued logic), `Some(bool)` otherwise.
    pub fn sql_eq(&self, other: &Datum) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.sql_cmp(other) == Ordering::Equal)
    }

    fn type_tag(&self) -> u8 {
        match self {
            Datum::Null => 0,
            Datum::Bool(_) => 1,
            Datum::Int(_) => 2,
            Datum::Float(_) => 3,
            Datum::Decimal(_, _) => 4,
            Datum::Date(_) => 5,
            Datum::Timestamp(_) => 6,
            Datum::Str(_) => 7,
        }
    }

    /// Approximate in-memory footprint in bytes, used by memory accounting
    /// in the workload manager and the analytics transfer layer.
    pub fn approx_size(&self) -> usize {
        match self {
            Datum::Str(s) => 16 + s.len(),
            Datum::Decimal(_, _) => 24,
            _ => 16,
        }
    }

    /// Render the datum the way the result-set printer does.
    pub fn render(&self) -> String {
        match self {
            Datum::Null => "NULL".to_string(),
            Datum::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Datum::Int(v) => v.to_string(),
            Datum::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Datum::Decimal(v, s) => {
                let scale = *s as u32;
                if scale == 0 {
                    v.to_string()
                } else {
                    let pow = 10i128.pow(scale);
                    let sign = if *v < 0 { "-" } else { "" };
                    let av = v.unsigned_abs();
                    format!(
                        "{sign}{}.{:0width$}",
                        av / pow.unsigned_abs(),
                        av % pow.unsigned_abs(),
                        width = scale as usize
                    )
                }
            }
            Datum::Date(d) => date::format_date(*d),
            Datum::Timestamp(t) => date::format_timestamp(*t),
            Datum::Str(s) => s.to_string(),
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality: NULL == NULL here (used by hash tables for
        // GROUP BY, where NULLs group together per SQL semantics).
        match (self, other) {
            (Datum::Null, Datum::Null) => true,
            (Datum::Null, _) | (_, Datum::Null) => false,
            _ => self.sql_cmp(other) == Ordering::Equal,
        }
    }
}

impl Eq for Datum {}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order via [`Datum::sql_cmp`] (NULLs sort last). Consistent with
/// `Eq`: `sql_cmp == Equal` exactly when `==` (including NULL = NULL at the
/// structural level used by grouping).
impl Ord for Datum {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sql_cmp(other)
    }
}

impl Hash for Datum {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Datum::Null => 0u8.hash(state),
            Datum::Bool(b) => (*b as i64).hash(state),
            // Numerics must hash equal when they compare equal.
            Datum::Int(v) => {
                let f = *v as f64;
                if f as i64 == *v {
                    f.to_bits().hash(state)
                } else {
                    v.hash(state)
                }
            }
            // Canonical bits so hash agrees with Eq: -0.0 = 0.0 and NaNs
            // compare Equal under sql_cmp, so they must share a bucket.
            Datum::Float(v) => canonical_f64_bits(*v).hash(state),
            Datum::Decimal(v, s) => {
                let f = *v as f64 / 10f64.powi(*s as i32);
                f.to_bits().hash(state)
            }
            Datum::Date(d) => date::date_to_timestamp_micros(*d).hash(state),
            Datum::Timestamp(t) => t.hash(state),
            Datum::Str(s) => s.hash(state),
        }
    }
}

/// Canonical bit pattern for an `f64` acting as a hash or group key.
///
/// `-0.0` folds onto `+0.0` and every NaN payload folds onto one canonical
/// NaN, so bit-level key identity agrees with SQL equality (`-0.0 = 0.0`,
/// and NaN pairs compare Equal under [`Datum::sql_cmp`]). Every keyed path
/// — `Datum` hashing, the aggregate fast path, and the encoded key words —
/// must go through this one form so group identity never drifts between
/// paths.
pub fn canonical_f64_bits(v: f64) -> u64 {
    if v.is_nan() {
        f64::NAN.to_bits()
    } else if v == 0.0 {
        0.0f64.to_bits()
    } else {
        v.to_bits()
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}
impl From<i32> for Datum {
    fn from(v: i32) -> Self {
        Datum::Int(v as i64)
    }
}
impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Float(v)
    }
}
impl From<bool> for Datum {
    fn from(v: bool) -> Self {
        Datum::Bool(v)
    }
}
impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::str(v)
    }
}
impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Str(v.into())
    }
}
impl<T: Into<Datum>> From<Option<T>> for Datum {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Datum::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_ordering_last() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), Ordering::Greater);
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Null), Ordering::Less);
        assert_eq!(Datum::Null.sql_cmp(&Datum::Null), Ordering::Equal);
    }

    #[test]
    fn cross_numeric_compare() {
        assert_eq!(Datum::Int(2).sql_cmp(&Datum::Float(2.0)), Ordering::Equal);
        assert_eq!(Datum::Int(2).sql_cmp(&Datum::Float(2.5)), Ordering::Less);
        assert_eq!(
            Datum::Decimal(250, 2).sql_cmp(&Datum::Float(2.5)),
            Ordering::Equal
        );
    }

    #[test]
    fn three_valued_equality() {
        assert_eq!(Datum::Null.sql_eq(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_eq(&Datum::Int(1)), Some(true));
        assert_eq!(Datum::Int(1).sql_eq(&Datum::Int(2)), Some(false));
    }

    #[test]
    fn hash_consistent_with_eq_across_numeric_types() {
        use std::collections::hash_map::DefaultHasher;
        fn h(d: &Datum) -> u64 {
            let mut s = DefaultHasher::new();
            d.hash(&mut s);
            s.finish()
        }
        let a = Datum::Int(42);
        let b = Datum::Float(42.0);
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn decimal_render() {
        assert_eq!(Datum::Decimal(12345, 2).render(), "123.45");
        assert_eq!(Datum::Decimal(-12345, 2).render(), "-123.45");
        assert_eq!(Datum::Decimal(5, 3).render(), "0.005");
        assert_eq!(Datum::Decimal(7, 0).render(), "7");
    }

    #[test]
    fn date_vs_timestamp_compare() {
        let d = Datum::Date(1); // 1970-01-02
        let t = Datum::Timestamp(86_400_000_000); // same instant
        assert_eq!(d.sql_cmp(&t), Ordering::Equal);
    }

    #[test]
    fn from_option() {
        let d: Datum = Option::<i64>::None.into();
        assert!(d.is_null());
        let d: Datum = Some(3i64).into();
        assert_eq!(d, Datum::Int(3));
    }
}

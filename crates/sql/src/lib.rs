//! The polyglot SQL front-end (§II.C of the paper).
//!
//! "We began with an ANSI standard compliant SQL compiler, and added
//! extensions for Oracle, PostgreSQL, Netezza, and DB2."
//!
//! * [`lexer`] — tokenizer (handles `::` casts, `(+)` outer-join markers,
//!   quoted identifiers, `--`/`/* */` comments).
//! * [`ast`] — the statement and expression AST.
//! * [`parser`] — recursive-descent parser, parameterized by the session
//!   [`dash_common::dialect::Dialect`]: `LIMIT/OFFSET` and `expr::type`
//!   parse only under Netezza/PostgreSQL, `ROWNUM`/`DUAL`/`(+)` only under
//!   Oracle, `FETCH FIRST n ROWS ONLY` under ANSI/DB2, and so on.
//! * [`planner`] — name resolution, type checking, predicate pushdown into
//!   the columnar scan, join planning, aggregation/ordering lowering onto
//!   [`dash_exec::PhysicalPlan`].

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::Statement;
pub use parser::parse_statement;
pub use planner::{plan_select, SchemaProvider, TableHandle};

//! Shard rebalancing for HA and elasticity (§II.E, Figure 9).
//!
//! When a node dies (or is deliberately removed, or a new one joins), the
//! shard → node assignment is adjusted so every live node carries an even
//! share, moving as few shards as possible: surviving assignments stay put
//! and only the overflow re-associates. "The cluster continues as a
//! well-balanced unit, albeit with fewer total cores and less total RAM
//! per byte of user data."

use dash_common::ids::{NodeId, ShardId};
use dash_common::{DashError, Result};
use std::collections::{BTreeMap, VecDeque};

/// Outcome of one rebalance pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Shards whose assignment changed.
    pub moved_shards: usize,
    /// Shards per live node after the pass (sorted by node id).
    pub shards_per_node: Vec<(NodeId, usize)>,
    /// The assignment epoch this pass produced. Statements pinned to an
    /// older epoch keep reading their snapshot; only re-driven (lost)
    /// shards advance to this epoch.
    pub epoch: u64,
}

impl RebalanceReport {
    /// Max/min shard count imbalance after the pass (≤ 1 when balanced).
    pub fn imbalance(&self) -> usize {
        let max = self.shards_per_node.iter().map(|(_, n)| *n).max().unwrap_or(0);
        let min = self.shards_per_node.iter().map(|(_, n)| *n).min().unwrap_or(0);
        max - min
    }
}

/// Rebalance `assignment` onto exactly the `live` nodes, minimizing moves.
///
/// Shards assigned to dead nodes must move; shards on overloaded live
/// nodes move until every node holds `⌊S/N⌋` or `⌈S/N⌉` shards. The
/// resulting report is stamped with `epoch`, the version the caller will
/// publish the new map under.
///
/// With no live nodes there is nowhere to put the shards: that is quorum
/// loss, reported as [`DashError::Cluster`] (the assignment is untouched).
pub fn balance_assignments(
    assignment: &mut BTreeMap<ShardId, NodeId>,
    live: &[NodeId],
    epoch: u64,
) -> Result<RebalanceReport> {
    if live.is_empty() {
        return Err(DashError::Cluster(
            "rebalance impossible: no live nodes remain (quorum loss)".into(),
        ));
    }
    let total = assignment.len();
    let mut sorted_live = live.to_vec();
    sorted_live.sort_unstable();
    let base = total / sorted_live.len();
    let extra = total % sorted_live.len();
    // Target per node: the first `extra` nodes (by id) take one more.
    let target: BTreeMap<NodeId, usize> = sorted_live
        .iter()
        .enumerate()
        .map(|(i, n)| (*n, base + usize::from(i < extra)))
        .collect();

    // Keep up to `target` lowest-id shards per live node; everything else
    // (shards on dead nodes, plus overflow) re-associates.
    let mut new_assignment: BTreeMap<ShardId, NodeId> = BTreeMap::new();
    let mut holding: BTreeMap<NodeId, usize> =
        sorted_live.iter().map(|n| (*n, 0)).collect();
    for n in &sorted_live {
        let mut held: Vec<ShardId> = assignment
            .iter()
            .filter(|(_, node)| **node == *n)
            .map(|(s, _)| *s)
            .collect();
        held.sort_unstable();
        let keep = target.get(n).copied().unwrap_or(0);
        for s in held.into_iter().take(keep) {
            new_assignment.insert(s, *n);
            *holding.entry(*n).or_insert(0) += 1;
        }
    }
    let movers: Vec<ShardId> = assignment
        .keys()
        .filter(|s| !new_assignment.contains_key(s))
        .copied()
        .collect();
    let moved_shards = movers.len();
    // Refill nodes below target, round-robin in id order: a queue of
    // (node, open slots) visited front-to-back, re-queued while slots
    // remain. Capacity equals the shard count by construction, so running
    // out of slots with movers left is a bookkeeping bug, not a panic.
    let mut open: VecDeque<(NodeId, usize)> = sorted_live
        .iter()
        .filter_map(|n| {
            let have = holding.get(n).copied().unwrap_or(0);
            let want = target.get(n).copied().unwrap_or(0);
            (want > have).then_some((*n, want - have))
        })
        .collect();
    for shard in movers {
        let Some((n, slots)) = open.pop_front() else {
            return Err(DashError::internal(format!(
                "rebalance bookkeeping: {shard} has no open slot \
                 ({total} shards over {} nodes)",
                sorted_live.len()
            )));
        };
        new_assignment.insert(shard, n);
        *holding.entry(n).or_insert(0) += 1;
        if slots > 1 {
            open.push_back((n, slots - 1));
        }
    }
    *assignment = new_assignment;
    Ok(RebalanceReport {
        moved_shards,
        shards_per_node: holding.into_iter().collect(),
        epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn make(n_shards: usize, nodes: usize) -> BTreeMap<ShardId, NodeId> {
        (0..n_shards)
            .map(|s| (ShardId(s as u32), NodeId((s % nodes) as u32)))
            .collect()
    }

    #[test]
    fn figure_9_failover() {
        // 24 shards over 4 nodes (6 each); node 3 dies → 8 each.
        let mut a = make(24, 4);
        let live = [NodeId(0), NodeId(1), NodeId(2)];
        let r = balance_assignments(&mut a, &live, 1).unwrap();
        assert_eq!(r.moved_shards, 6, "only the dead node's shards move");
        assert_eq!(r.epoch, 1, "report carries the epoch it was stamped with");
        assert_eq!(r.imbalance(), 0);
        for (_, n) in &r.shards_per_node {
            assert_eq!(*n, 8);
        }
        // Every shard is assigned to a live node.
        assert!(a.values().all(|n| live.contains(n)));
        assert_eq!(a.len(), 24);
    }

    #[test]
    fn growth_moves_minimum() {
        // 24 shards over 3 nodes (8 each); add node 3 → 6 each, 6 moves.
        let mut a: BTreeMap<ShardId, NodeId> = (0..24)
            .map(|s| (ShardId(s as u32), NodeId((s % 3) as u32)))
            .collect();
        let live = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let r = balance_assignments(&mut a, &live, 1).unwrap();
        assert_eq!(r.moved_shards, 6, "exactly the overflow moves");
        assert_eq!(r.imbalance(), 0);
    }

    #[test]
    fn uneven_division_stays_within_one() {
        let mut a = make(25, 4);
        let live = [NodeId(0), NodeId(1), NodeId(2)];
        let r = balance_assignments(&mut a, &live, 1).unwrap();
        assert!(r.imbalance() <= 1);
        let total: usize = r.shards_per_node.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn no_live_nodes_is_quorum_loss_not_panic() {
        let mut a = make(8, 2);
        let before = a.clone();
        let err = balance_assignments(&mut a, &[], 1).unwrap_err();
        assert_eq!(err.class(), "57011", "cluster SQLSTATE class: {err}");
        assert_eq!(a, before, "failed rebalance must not corrupt assignment");
    }

    #[test]
    fn noop_when_already_balanced() {
        let mut a = make(12, 3);
        let live = [NodeId(0), NodeId(1), NodeId(2)];
        let r = balance_assignments(&mut a, &live, 1).unwrap();
        assert_eq!(r.moved_shards, 0);
    }

    proptest! {
        #[test]
        fn prop_always_balanced_and_complete(
            n_shards in 1usize..60,
            n_nodes in 1usize..8,
            kill in 0usize..8,
        ) {
            let mut a = make(n_shards, n_nodes);
            let live: Vec<NodeId> = (0..n_nodes)
                .filter(|i| *i != kill % n_nodes || n_nodes == 1)
                .map(|i| NodeId(i as u32))
                .collect();
            prop_assume!(!live.is_empty());
            let r = balance_assignments(&mut a, &live, 1).expect("live nonempty");
            prop_assert_eq!(a.len(), n_shards, "no shard lost");
            prop_assert!(a.values().all(|n| live.contains(n)));
            prop_assert!(r.imbalance() <= 1);
        }
    }
}

//! Buffer pool replacement policies (§II.B.5).
//!
//! The paper: LRU collapses on Big Data scans — "the least recently
//! accessed data at the end of a scan is the data that was at the top of
//! the scan, meaning the top of the scan is rarely in RAM at the start of
//! the next scan". dashDB replaced it with "a novel probabilistic algorithm
//! for buffer pool replacement ... maintain[ing] a notion of access
//! frequency, but ... less sensitive to the position of data in the table"
//! (US patent 9,037,803), "within a few percentiles of optimal".
//!
//! [`Policy::RandomizedWeight`] implements that algorithm as two combined
//! ideas:
//!
//! 1. **Frequency weights with probation.** A faulted-in page starts at
//!    weight 0 and earns weight only on re-reference. Weight-0 pages are
//!    always victimized first, so a long scan streams through a bounded
//!    probation pool instead of flushing the frequently-reused set — this
//!    is the "notion of access frequency".
//! 2. **Randomized victim selection.** Among established pages, eviction
//!    samples a few random residents and takes the lightest; probation
//!    evicts newest-first (the page that just streamed past is the one
//!    whose next use is farthest away). There is no global recency queue,
//!    so *where* a page sits in the table (top vs bottom of the scan)
//!    cannot bias its survival — the "less sensitive to the position of
//!    data" property.
//!
//! Weights are periodically halved so a shifted hot set ages out.
//! LRU, MRU, and pure-random baselines plus a Belady-optimal replay oracle
//! complete the experiment for `repro_bufferpool`.

use dash_common::faults::{FaultAction, FaultRegistry, PAGE_READ};
use dash_common::fxhash::FxHashMap;
use dash_common::{DashError, Result, StatementContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Identifies one cached page: a (table, column, stride) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// Owning table.
    pub table: u32,
    /// Column ordinal.
    pub column: u32,
    /// Stride index.
    pub stride: u32,
}

impl PageKey {
    /// Convenience constructor.
    pub fn new(table: u32, column: u32, stride: u32) -> PageKey {
        PageKey {
            table,
            column,
            stride,
        }
    }
}

/// Replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Classic least-recently-used (the 30-year default the paper calls
    /// out as incompatible with scanning).
    Lru,
    /// Most-recently-used — the textbook fix for pure cyclic scans.
    Mru,
    /// Uniform random victim.
    Random,
    /// The paper's probabilistic frequency-weighted policy.
    RandomizedWeight,
}

/// Pool access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Accesses that found the page resident.
    pub hits: u64,
    /// Accesses that had to fault the page in.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl PoolStats {
    /// Hit ratio in `[0, 1]`; 0 for an untouched pool.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PageMeta {
    /// Which slab the page lives in and its index there.
    slab: Slab,
    slab_idx: usize,
    /// Access-frequency weight; 0 = probation (never re-referenced).
    weight: u32,
    /// Logical clock of last access (LRU/MRU policies).
    last_access: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slab {
    Probation,
    Established,
}

/// Victim-selection sample size among established pages.
const SAMPLE: usize = 8;
/// Weights are halved every `capacity * AGE_PERIOD_FACTOR` accesses.
const AGE_PERIOD_FACTOR: u64 = 8;

/// A simulated buffer pool tracking residency, not page bytes: callers ask
/// [`BufferPool::access`] whether a page was a hit; misses feed the
/// simulated I/O device model.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    policy: Policy,
    pages: FxHashMap<PageKey, PageMeta>,
    /// Dense slabs of resident keys for O(1) random sampling.
    probation: Vec<PageKey>,
    established: Vec<PageKey>,
    /// (last_access, key) ordering for LRU/MRU victim selection.
    recency: BTreeSet<(u64, PageKey)>,
    clock: u64,
    stats: PoolStats,
    rng: StdRng,
    /// Armed by chaos tests; `None` (the default) keeps page faults free.
    faults: Option<FaultRegistry>,
}

impl BufferPool {
    /// Create a pool holding up to `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: Policy) -> BufferPool {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        BufferPool {
            capacity,
            policy,
            pages: FxHashMap::default(),
            probation: Vec::new(),
            established: Vec::new(),
            recency: BTreeSet::new(),
            clock: 0,
            stats: PoolStats::default(),
            rng: StdRng::seed_from_u64(0x5EED),
            faults: None,
        }
    }

    /// Route this pool's page reads through `reg`'s
    /// [`PAGE_READ`] failpoint (see [`dash_common::faults`]).
    pub fn set_fault_registry(&mut self, reg: FaultRegistry) {
        self.faults = Some(reg);
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident pages.
    pub fn resident(&self) -> usize {
        self.probation.len() + self.established.len()
    }

    /// Access statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Reset counters (e.g. after a warm-up phase) without evicting pages.
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    /// Touch a page: returns `true` on hit. On miss the page is faulted in,
    /// evicting a victim if the pool is full.
    ///
    /// # Panics
    /// Panics if a [`PAGE_READ`] failpoint injects an error — armed
    /// registries must use [`BufferPool::try_access`].
    pub fn access(&mut self, key: PageKey) -> bool {
        self.try_access(key)
            .expect("page-read failpoint fired on the infallible access path")
    }

    /// [`BufferPool::access`] with injected-fault propagation: a fired
    /// [`PAGE_READ`] failpoint surfaces as [`DashError::Storage`] (the
    /// simulated device failed the read; the page is *not* faulted in) or
    /// stalls the read in place (a slow device). Runs under the ambient
    /// (unbounded) statement context; statement-scoped callers use
    /// [`BufferPool::try_access_for`] so stalls observe cancellation.
    pub fn try_access(&mut self, key: PageKey) -> Result<bool> {
        self.try_access_for(key, StatementContext::ambient())
    }

    /// [`BufferPool::try_access`] under a statement's lifecycle handle: a
    /// simulated-I/O stall is sliced (~1 ms granularity) and polls the
    /// statement's cancellation token, so a deadline kill never waits out
    /// a stalled page read. A cancelled statement surfaces
    /// [`DashError::Cancelled`] from the stall site; the page is *not*
    /// faulted in.
    pub fn try_access_for(&mut self, key: PageKey, stmt: &StatementContext) -> Result<bool> {
        self.clock += 1;
        if self.policy == Policy::RandomizedWeight
            && self.clock.is_multiple_of(self.capacity as u64 * AGE_PERIOD_FACTOR)
        {
            self.age_weights();
        }
        if let Some(meta) = self.pages.get(&key).copied() {
            self.stats.hits += 1;
            let m = self.pages.get_mut(&key).expect("checked above");
            m.weight = m.weight.saturating_add(1);
            let old = m.last_access;
            m.last_access = self.clock;
            if matches!(self.policy, Policy::Lru | Policy::Mru) {
                self.recency.remove(&(old, key));
                self.recency.insert((self.clock, key));
            }
            if self.policy == Policy::RandomizedWeight && meta.slab == Slab::Probation {
                self.move_to_established(key);
            }
            return Ok(true);
        }
        self.stats.misses += 1;
        // A miss is a physical read against the simulated device — the
        // fault site. An injected error means the read failed and the page
        // stays non-resident; a stall models a slow device.
        if let Some(reg) = &self.faults {
            match reg.evaluate(PAGE_READ) {
                Some(FaultAction::Error(msg)) => {
                    return Err(DashError::Storage(format!(
                        "page read failed (table {} col {} stride {}): {msg}",
                        key.table, key.column, key.stride
                    )));
                }
                Some(FaultAction::Stall(d)) => stmt.sleep_cancellable(d)?,
                None => {}
            }
        }
        if self.resident() >= self.capacity {
            self.evict();
        }
        // New pages start in probation under RandomizedWeight; other
        // policies use the established slab for everything.
        let slab = if self.policy == Policy::RandomizedWeight {
            Slab::Probation
        } else {
            Slab::Established
        };
        let idx = match slab {
            Slab::Probation => {
                self.probation.push(key);
                self.probation.len() - 1
            }
            Slab::Established => {
                self.established.push(key);
                self.established.len() - 1
            }
        };
        self.pages.insert(
            key,
            PageMeta {
                slab,
                slab_idx: idx,
                weight: 0,
                last_access: self.clock,
            },
        );
        if matches!(self.policy, Policy::Lru | Policy::Mru) {
            self.recency.insert((self.clock, key));
        }
        Ok(false)
    }

    fn move_to_established(&mut self, key: PageKey) {
        let meta = self.pages[&key];
        debug_assert_eq!(meta.slab, Slab::Probation);
        self.slab_remove(Slab::Probation, meta.slab_idx);
        self.established.push(key);
        let m = self.pages.get_mut(&key).expect("resident");
        m.slab = Slab::Established;
        m.slab_idx = self.established.len() - 1;
    }

    fn evict(&mut self) {
        let victim = match self.policy {
            Policy::Lru => self
                .recency
                .iter()
                .next()
                .map(|&(_, k)| k)
                .expect("pool full implies recency nonempty"),
            Policy::Mru => self
                .recency
                .iter()
                .next_back()
                .map(|&(_, k)| k)
                .expect("pool full implies recency nonempty"),
            Policy::Random => {
                let n = self.established.len();
                self.established[self.rng.gen_range(0..n)]
            }
            Policy::RandomizedWeight => {
                if !self.probation.is_empty() {
                    // Probation absorbs scan traffic newest-first: a page
                    // that has streamed past without re-reference is the
                    // one whose next use is farthest away (for a scan, a
                    // full table-pass later), so it is the best victim —
                    // this is what keeps the retained set stable across
                    // repeated scans instead of LRU's self-flushing.
                    self.probation[self.probation.len() - 1]
                } else {
                    // Sample established pages; evict the lightest.
                    let mut best: Option<(u32, PageKey)> = None;
                    for _ in 0..SAMPLE {
                        let k = self.established[self.rng.gen_range(0..self.established.len())];
                        let w = self.pages[&k].weight;
                        best = Some(match best {
                            None => (w, k),
                            Some(b) if w < b.0 => (w, k),
                            Some(b) => b,
                        });
                    }
                    best.expect("SAMPLE > 0").1
                }
            }
        };
        self.remove(victim);
        self.stats.evictions += 1;
    }

    fn remove(&mut self, key: PageKey) {
        let meta = self.pages.remove(&key).expect("victim is resident");
        if matches!(self.policy, Policy::Lru | Policy::Mru) {
            self.recency.remove(&(meta.last_access, key));
        }
        self.slab_remove(meta.slab, meta.slab_idx);
    }

    /// Swap-remove from a slab, fixing the moved page's index.
    fn slab_remove(&mut self, slab: Slab, idx: usize) {
        let v = match slab {
            Slab::Probation => &mut self.probation,
            Slab::Established => &mut self.established,
        };
        v.swap_remove(idx);
        if idx < v.len() {
            let moved = v[idx];
            self.pages
                .get_mut(&moved)
                .expect("moved page is resident")
                .slab_idx = idx;
        }
    }

    fn age_weights(&mut self) {
        for meta in self.pages.values_mut() {
            meta.weight /= 2;
        }
        // Pages aged back to 0 conceptually return to probation so the
        // sampler can reclaim them quickly if the hot set shifted.
        let demote: Vec<PageKey> = self
            .established
            .iter()
            .copied()
            .filter(|k| self.pages[k].weight == 0)
            .collect();
        for k in demote {
            let meta = self.pages[&k];
            self.slab_remove(Slab::Established, meta.slab_idx);
            self.probation.push(k);
            let m = self.pages.get_mut(&k).expect("resident");
            m.slab = Slab::Probation;
            m.slab_idx = self.probation.len() - 1;
        }
    }
}

/// Replay a page trace under a policy; returns the stats.
pub fn simulate(trace: &[PageKey], capacity: usize, policy: Policy) -> PoolStats {
    let mut pool = BufferPool::new(capacity, policy);
    for &k in trace {
        pool.access(k);
    }
    pool.stats()
}

/// Belady's optimal (clairvoyant) replacement replay: on eviction, discard
/// the resident page whose next use is farthest in the future. The upper
/// bound every online policy is measured against.
pub fn optimal_hit_ratio(trace: &[PageKey], capacity: usize) -> f64 {
    assert!(capacity > 0, "capacity must be positive");
    // next_use[i] = next index where trace[i]'s page recurs (usize::MAX if never).
    let mut next_use = vec![usize::MAX - 1; trace.len()];
    let mut last_seen: FxHashMap<PageKey, usize> = FxHashMap::default();
    for (i, k) in trace.iter().enumerate().rev() {
        if let Some(&j) = last_seen.get(k) {
            next_use[i] = j;
        }
        last_seen.insert(*k, i);
    }
    let mut resident: FxHashMap<PageKey, usize> = FxHashMap::default();
    let mut by_next: BTreeSet<(usize, PageKey)> = BTreeSet::new();
    let mut hits = 0u64;
    for (i, &k) in trace.iter().enumerate() {
        if let Some(&nu) = resident.get(&k) {
            hits += 1;
            by_next.remove(&(nu, k));
        } else if resident.len() >= capacity {
            let &(far_nu, far_k) = by_next.iter().next_back().expect("resident nonempty");
            by_next.remove(&(far_nu, far_k));
            resident.remove(&far_k);
        }
        resident.insert(k, next_use[i]);
        by_next.insert((next_use[i], k));
    }
    if trace.is_empty() {
        0.0
    } else {
        hits as f64 / trace.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_trace(pages: u32, cycles: usize) -> Vec<PageKey> {
        let mut t = Vec::new();
        for _ in 0..cycles {
            for p in 0..pages {
                t.push(PageKey::new(0, 0, p));
            }
        }
        t
    }

    #[test]
    fn lru_collapses_on_cyclic_scan() {
        // 100-page table, 50-page cache, repeated scans: LRU gets ~0 hits.
        let trace = scan_trace(100, 10);
        let stats = simulate(&trace, 50, Policy::Lru);
        assert_eq!(stats.hits, 0, "LRU must thrash on a cyclic scan");
    }

    #[test]
    fn mru_is_optimal_on_cyclic_scan() {
        let trace = scan_trace(100, 10);
        let stats = simulate(&trace, 50, Policy::Mru);
        let opt = optimal_hit_ratio(&trace, 50);
        assert!(
            (stats.hit_ratio() - opt).abs() < 0.02,
            "MRU {:.3} vs optimal {:.3}",
            stats.hit_ratio(),
            opt
        );
    }

    #[test]
    fn randomized_weight_within_a_few_percentiles_of_optimal() {
        // The headline claim: on Big-Data-style scanning, the probabilistic
        // policy lands within a few percentage points of Belady.
        let trace = scan_trace(200, 20);
        let stats = simulate(&trace, 100, Policy::RandomizedWeight);
        let opt = optimal_hit_ratio(&trace, 100);
        assert!(opt > 0.4, "sanity: optimal should be ~C/N = 0.5, got {opt}");
        assert!(
            stats.hit_ratio() > opt - 0.08,
            "randomized-weight {:.3} should be within a few points of optimal {:.3}",
            stats.hit_ratio(),
            opt
        );
        // And it must crush LRU on this workload.
        let lru = simulate(&trace, 100, Policy::Lru);
        assert!(stats.hit_ratio() > lru.hit_ratio() + 0.3);
    }

    #[test]
    fn frequency_weighting_retains_hot_pages() {
        // 20 hot pages touched every round interleaved with a rotating
        // window over 200 cold pages; cache of 40.
        let mut trace = Vec::new();
        for round in 0..200 {
            for hot in 0..20u32 {
                trace.push(PageKey::new(0, 0, hot));
            }
            for cold in 0..10u32 {
                trace.push(PageKey::new(0, 1, (round * 10 + cold) % 200));
            }
        }
        let rw = simulate(&trace, 40, Policy::RandomizedWeight);
        let lru = simulate(&trace, 40, Policy::Lru);
        assert!(
            rw.hit_ratio() > 0.55,
            "hot pages should mostly hit: {:.3}",
            rw.hit_ratio()
        );
        assert!(
            rw.hit_ratio() >= lru.hit_ratio() - 0.02,
            "rw {:.3} vs lru {:.3}",
            rw.hit_ratio(),
            lru.hit_ratio()
        );
    }

    #[test]
    fn adapts_after_hot_set_shift() {
        // Hot set A for many rounds, then hot set B: aging must let B in.
        let mut trace = Vec::new();
        for _ in 0..500 {
            for p in 0..30u32 {
                trace.push(PageKey::new(0, 0, p));
            }
        }
        for _ in 0..500 {
            for p in 100..130u32 {
                trace.push(PageKey::new(0, 0, p));
            }
        }
        let mut pool = BufferPool::new(40, Policy::RandomizedWeight);
        for &k in &trace {
            pool.access(k);
        }
        pool.reset_stats();
        for _ in 0..10 {
            for p in 100..130u32 {
                pool.access(PageKey::new(0, 0, p));
            }
        }
        assert!(
            pool.stats().hit_ratio() > 0.9,
            "new hot set should be cached after shift: {:.3}",
            pool.stats().hit_ratio()
        );
    }

    #[test]
    fn capacity_respected() {
        let trace = scan_trace(100, 2);
        for policy in [
            Policy::Lru,
            Policy::Mru,
            Policy::Random,
            Policy::RandomizedWeight,
        ] {
            let mut pool = BufferPool::new(10, policy);
            for &k in &trace {
                pool.access(k);
            }
            assert!(pool.resident() <= 10, "{policy:?} overflowed");
            let s = pool.stats();
            assert_eq!(s.hits + s.misses, trace.len() as u64);
        }
    }

    #[test]
    fn small_workload_all_hits_after_warmup() {
        let mut pool = BufferPool::new(100, Policy::Lru);
        for cycle in 0..3 {
            for p in 0..50u32 {
                let hit = pool.access(PageKey::new(0, 0, p));
                assert_eq!(hit, cycle > 0);
            }
        }
    }

    #[test]
    fn injected_page_read_faults_surface_as_storage_errors() {
        use dash_common::faults::{FaultAction, FaultPolicy, FaultRegistry};

        let reg = FaultRegistry::new();
        let mut pool = BufferPool::new(10, Policy::RandomizedWeight);
        pool.set_fault_registry(reg.clone());
        // Disarmed: behaves exactly like the plain path.
        assert!(!pool.access(PageKey::new(0, 0, 0)));
        assert!(pool.access(PageKey::new(0, 0, 0)));

        reg.arm(
            super::PAGE_READ,
            FaultPolicy::EveryNth(2),
            FaultAction::Error("device dropped the ball".into()),
        );
        // First miss after arming survives (1st evaluation), second fails.
        assert!(!pool.try_access(PageKey::new(0, 0, 1)).unwrap());
        let err = pool.try_access(PageKey::new(0, 0, 2)).unwrap_err();
        assert_eq!(err.class(), "58030", "storage SQLSTATE class: {err}");
        // The failed page was not faulted in.
        assert!(!pool.try_access(PageKey::new(0, 0, 2)).unwrap());
        // Hits never consult the device, so they never fail.
        for _ in 0..8 {
            assert!(pool.try_access(PageKey::new(0, 0, 0)).unwrap());
        }
    }

    #[test]
    fn cancelled_statement_preempts_injected_stall() {
        use dash_common::faults::{FaultAction, FaultPolicy, FaultRegistry};
        use std::time::{Duration, Instant};

        let reg = FaultRegistry::new();
        let mut pool = BufferPool::new(10, Policy::RandomizedWeight);
        pool.set_fault_registry(reg.clone());
        reg.arm(
            super::PAGE_READ,
            FaultPolicy::Always,
            FaultAction::Stall(Duration::from_secs(10)),
        );
        let stmt = StatementContext::unbounded();
        stmt.cancel();
        let start = Instant::now();
        let err = pool
            .try_access_for(PageKey::new(0, 0, 0), &stmt)
            .unwrap_err();
        assert_eq!(err, DashError::Cancelled);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "a dead statement must not wait out the stall: {:?}",
            start.elapsed()
        );
        // The stalled read did not fault the page in.
        reg.disarm(super::PAGE_READ);
        assert!(!pool.try_access(PageKey::new(0, 0, 0)).unwrap());
    }

    #[test]
    fn deadline_fires_mid_stall() {
        use dash_common::faults::{FaultAction, FaultPolicy, FaultRegistry};
        use std::time::{Duration, Instant};

        let reg = FaultRegistry::new();
        let mut pool = BufferPool::new(10, Policy::RandomizedWeight);
        pool.set_fault_registry(reg.clone());
        reg.arm(
            super::PAGE_READ,
            FaultPolicy::Always,
            FaultAction::Stall(Duration::from_secs(10)),
        );
        // Deadline-armed token with no explicit cancel(): the sliced sleep
        // itself observes the deadline.
        let stmt = StatementContext::with_deadline(Duration::from_millis(20));
        let start = Instant::now();
        let err = pool
            .try_access_for(PageKey::new(0, 0, 1), &stmt)
            .unwrap_err();
        assert_eq!(err, DashError::Cancelled);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "deadline must preempt the stall: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn optimal_oracle_sanity() {
        // Fits in cache: everything after the first pass hits.
        let trace = scan_trace(10, 10);
        assert!((optimal_hit_ratio(&trace, 10) - 0.9).abs() < 1e-9);
        // Cyclic scan optimum ~ (C-1)/(N-1) per steady-state cycle.
        let trace = scan_trace(100, 50);
        let opt = optimal_hit_ratio(&trace, 50);
        assert!(opt > 0.45 && opt < 0.52, "got {opt}");
        assert_eq!(optimal_hit_ratio(&[], 4), 0.0);
    }
}

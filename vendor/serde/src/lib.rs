//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` to mark wire-format
//! intent but never serializes at runtime, so the traits here are empty
//! markers and the derives (from the stub `serde_derive`) emit marker
//! impls. The `derive` and `rc` cargo features are accepted and inert.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would serialize under real serde.
pub trait Serialize {}

/// Marker for types that would deserialize under real serde.
pub trait Deserialize {}

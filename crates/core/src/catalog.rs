//! The catalog: tables, views, sequences, aliases, temporary objects.

use dash_common::dialect::{Dialect, DialectSet};
use dash_common::ids::SessionId;
use dash_common::{DashError, Datum, Result, Schema};
use dash_exec::functions::{EvalContext, ScalarFunction, ScalarImpl, SequenceSource};
use dash_exec::plan::SharedTable;
use dash_sql::planner::{SchemaProvider, TableHandle};
use dash_storage::bufferpool::BufferPool;
use dash_storage::table::ColumnTable;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Clone)]
struct TableEntry {
    id: u32,
    table: SharedTable,
    /// Owning session for temporary tables (dropped on session close).
    owner: Option<SessionId>,
}

struct SequenceState {
    next: i64,
    increment: i64,
    current: Option<i64>,
}

struct NicknameState {
    connector: Arc<dyn crate::fluid::Connector>,
    remote_table: String,
    cache: TableEntry,
    cached_version: Mutex<u64>,
}

/// The shared catalog of one database (one shard in MPP deployments).
pub struct Catalog {
    tables: RwLock<HashMap<String, TableEntry>>,
    views: RwLock<HashMap<String, (String, Dialect)>>,
    sequences: Mutex<HashMap<String, SequenceState>>,
    aliases: RwLock<HashMap<String, String>>,
    /// User-defined extension functions (§II.C.4).
    udx: RwLock<HashMap<String, Arc<ScalarFunction>>>,
    /// Fluid Query nicknames (§II.C.6).
    nicknames: RwLock<HashMap<String, NicknameState>>,
    next_table_id: Mutex<u32>,
    /// Shared buffer pool for scan accounting (None = untracked).
    pub(crate) pool: Option<Arc<Mutex<BufferPool>>>,
    /// Intra-query scan parallelism handed to planners.
    pub(crate) parallelism: std::sync::atomic::AtomicUsize,
    /// Rows per parallel sort run handed to planners.
    pub(crate) sort_run_rows: std::sync::atomic::AtomicUsize,
    /// Whether the query-wide pipeline scheduler runs SELECTs
    /// (`DASH_PIPELINE`; on by default).
    pub(crate) pipeline_enabled: std::sync::atomic::AtomicBool,
    /// Pipeline in-flight morsel window (`DASH_PIPELINE_INFLIGHT`;
    /// 0 = auto, parallelism × 4).
    pub(crate) pipeline_inflight: std::sync::atomic::AtomicUsize,
}

impl Catalog {
    /// Empty catalog, optionally tracking a buffer pool.
    pub fn new(pool: Option<Arc<Mutex<BufferPool>>>) -> Catalog {
        Catalog {
            tables: RwLock::new(HashMap::new()),
            views: RwLock::new(HashMap::new()),
            sequences: Mutex::new(HashMap::new()),
            aliases: RwLock::new(HashMap::new()),
            udx: RwLock::new(HashMap::new()),
            nicknames: RwLock::new(HashMap::new()),
            next_table_id: Mutex::new(0),
            pool,
            parallelism: std::sync::atomic::AtomicUsize::new(1),
            sort_run_rows: std::sync::atomic::AtomicUsize::new(
                dash_exec::sort::DEFAULT_SORT_RUN_ROWS,
            ),
            pipeline_enabled: std::sync::atomic::AtomicBool::new(true),
            pipeline_inflight: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Set the intra-query parallelism the auto-configuration derived.
    pub fn set_parallelism(&self, n: usize) {
        self.parallelism
            .store(n.max(1), std::sync::atomic::Ordering::Relaxed);
    }

    /// Set the parallel-sort run size the auto-configuration derived
    /// (`DASH_SORT_RUN_ROWS`).
    pub fn set_sort_run_rows(&self, n: usize) {
        self.sort_run_rows
            .store(n.max(1), std::sync::atomic::Ordering::Relaxed);
    }

    /// Enable or disable the query-wide pipeline scheduler
    /// (`DASH_PIPELINE`).
    pub fn set_pipeline_enabled(&self, on: bool) {
        self.pipeline_enabled
            .store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Set the pipeline in-flight morsel window (`DASH_PIPELINE_INFLIGHT`;
    /// 0 = auto).
    pub fn set_pipeline_inflight(&self, n: usize) {
        self.pipeline_inflight
            .store(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether the pipeline scheduler is enabled for this catalog.
    pub fn pipeline_enabled(&self) -> bool {
        self.pipeline_enabled
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The configured pipeline in-flight window (0 = auto).
    pub fn pipeline_inflight(&self) -> usize {
        self.pipeline_inflight
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    fn fold(name: &str) -> String {
        name.to_ascii_uppercase()
    }

    /// Internal key for a session-private temporary table.
    fn temp_key(session: SessionId, name: &str) -> String {
        format!("__TMP{}__{}", session.0, Self::fold(name))
    }

    /// Create a table. Errors if the name is taken (by a table or view).
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        owner: Option<SessionId>,
    ) -> Result<SharedTable> {
        // Temporary tables live in a per-session namespace ("different
        // users could not see what other users are doing"): two sessions
        // may DECLARE the same name without collision, and neither shadows
        // a permanent table check below.
        let key = match owner {
            Some(sid) => Self::temp_key(sid, name),
            None => Self::fold(name),
        };
        if self.views.read().contains_key(&key) {
            return Err(DashError::already_exists("view", &key));
        }
        if self.nicknames.read().contains_key(&key) {
            return Err(DashError::already_exists("nickname", &key));
        }
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(DashError::already_exists("table", &key));
        }
        let mut next = self.next_table_id.lock();
        let id = *next;
        *next += 1;
        drop(next);
        let table: SharedTable = Arc::new(RwLock::new(ColumnTable::new(key.clone(), schema)));
        tables.insert(
            key,
            TableEntry {
                id,
                table: table.clone(),
                owner,
            },
        );
        Ok(table)
    }

    /// Drop a table. `if_exists` suppresses the not-found error. When a
    /// session is given, its temporary table of that name drops first.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<bool> {
        self.drop_table_for(name, if_exists, None)
    }

    /// Session-aware drop (temporaries first).
    pub fn drop_table_for(
        &self,
        name: &str,
        if_exists: bool,
        session: Option<SessionId>,
    ) -> Result<bool> {
        if let Some(sid) = session {
            if self.tables.write().remove(&Self::temp_key(sid, name)).is_some() {
                return Ok(true);
            }
        }
        let key = self.resolve_alias(&Self::fold(name));
        let removed = self.tables.write().remove(&key).is_some();
        if !removed && !if_exists {
            return Err(DashError::not_found("table", key));
        }
        Ok(removed)
    }

    /// Look up a table (following aliases and nicknames), returning its
    /// handle. Nickname caches refresh here when the remote changed.
    pub fn table_handle(&self, name: &str) -> Result<TableHandle> {
        self.table_handle_for(name, None)
    }

    /// Session-aware lookup: the session's temporary tables resolve first.
    pub fn table_handle_for(
        &self,
        name: &str,
        session: Option<SessionId>,
    ) -> Result<TableHandle> {
        if let Some(sid) = session {
            let tkey = Self::temp_key(sid, name);
            if let Some(e) = self.tables.read().get(&tkey) {
                return Ok(TableHandle {
                    id: e.id,
                    table: e.table.clone(),
                });
            }
        }
        let key = self.resolve_alias(&Self::fold(name));
        {
            let tables = self.tables.read();
            if let Some(e) = tables.get(&key) {
                return Ok(TableHandle {
                    id: e.id,
                    table: e.table.clone(),
                });
            }
        }
        // Catalog introspection views (the console's data source).
        if key.starts_with("SYSCAT_") {
            if let Some(handle) = self.syscat(&key)? {
                return Ok(handle);
            }
        }
        // Nickname path.
        let nicknames = self.nicknames.read();
        if let Some(n) = nicknames.get(&key) {
            let current = n.connector.version(&n.remote_table);
            let mut cached = n.cached_version.lock();
            if *cached != current {
                let rows = n.connector.fetch(&n.remote_table)?;
                n.cache.table.write().load_rows(rows)?;
                *cached = current;
            }
            return Ok(TableHandle {
                id: n.cache.id,
                table: n.cache.table.clone(),
            });
        }
        Err(DashError::not_found("table", key))
    }

    /// True if a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables
            .read()
            .contains_key(&self.resolve_alias(&Self::fold(name)))
    }

    /// All table names (sorted; excludes temporaries of other sessions).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    fn resolve_alias(&self, name: &str) -> String {
        match self.aliases.read().get(name) {
            Some(target) => target.clone(),
            None => name.to_string(),
        }
    }

    /// Register a DB2 alias.
    pub fn create_alias(&self, name: &str, target: &str) -> Result<()> {
        let key = Self::fold(name);
        if self.tables.read().contains_key(&key) {
            return Err(DashError::already_exists("table", &key));
        }
        self.aliases
            .write()
            .insert(key, Self::fold(target));
        Ok(())
    }

    /// Register a view with the dialect it was created under.
    pub fn create_view(&self, name: &str, text: String, dialect: Dialect) -> Result<()> {
        let key = Self::fold(name);
        if self.tables.read().contains_key(&key) {
            return Err(DashError::already_exists("table", &key));
        }
        self.views.write().insert(key, (text, dialect));
        Ok(())
    }

    /// Drop a view.
    pub fn drop_view(&self, name: &str, if_exists: bool) -> Result<()> {
        let removed = self.views.write().remove(&Self::fold(name)).is_some();
        if !removed && !if_exists {
            return Err(DashError::not_found("view", name));
        }
        Ok(())
    }

    /// Create a sequence.
    pub fn create_sequence(&self, name: &str, start: i64, increment: i64) -> Result<()> {
        let key = Self::fold(name);
        let mut seqs = self.sequences.lock();
        if seqs.contains_key(&key) {
            return Err(DashError::already_exists("sequence", &key));
        }
        seqs.insert(
            key,
            SequenceState {
                next: start,
                increment: if increment == 0 { 1 } else { increment },
                current: None,
            },
        );
        Ok(())
    }

    /// Drop a sequence.
    pub fn drop_sequence(&self, name: &str) -> Result<()> {
        if self.sequences.lock().remove(&Self::fold(name)).is_none() {
            return Err(DashError::not_found("sequence", name));
        }
        Ok(())
    }

    /// Register a user-defined extension function, visible in the given
    /// dialects ("allows users and application developers to extend the
    /// set of built-in functions with custom ones using the user defined
    /// extension (UDX) language framework", §II.C.4). UDXes shadow
    /// same-named builtins.
    #[allow(clippy::type_complexity)]
    pub fn register_udx(
        &self,
        name: &str,
        dialects: DialectSet,
        min_args: usize,
        max_args: usize,
        returns: dash_common::DataType,
        eval: Arc<dyn Fn(&[Datum], &EvalContext) -> Result<Datum> + Send + Sync>,
    ) {
        let upper = name.to_ascii_uppercase();
        self.udx.write().insert(
            upper.clone(),
            Arc::new(ScalarFunction {
                name: upper,
                dialects,
                min_args,
                max_args,
                return_type: Some(returns),
                eval: ScalarImpl::User(eval),
            }),
        );
    }

    /// Remove a UDX; `true` if it existed.
    pub fn drop_udx(&self, name: &str) -> bool {
        self.udx.write().remove(&name.to_ascii_uppercase()).is_some()
    }

    /// Create a Fluid Query nickname for a remote object (§II.C.6,
    /// Figure 5's "Add Nickname"). The remote data materializes into a
    /// local cache table lazily and refreshes when the remote changes.
    pub fn create_nickname(
        &self,
        name: &str,
        connector: Arc<dyn crate::fluid::Connector>,
        remote_table: &str,
    ) -> Result<()> {
        let key = Self::fold(name);
        if self.tables.read().contains_key(&key)
            || self.nicknames.read().contains_key(&key)
        {
            return Err(DashError::already_exists("table", &key));
        }
        let schema = connector.schema(remote_table)?;
        let mut next = self.next_table_id.lock();
        let id = *next;
        *next += 1;
        drop(next);
        let cache = TableEntry {
            id,
            table: Arc::new(RwLock::new(ColumnTable::new(key.clone(), schema))),
            owner: None,
        };
        self.nicknames.write().insert(
            key,
            NicknameState {
                connector,
                remote_table: remote_table.to_string(),
                cache,
                // Force a fetch on first access.
                cached_version: Mutex::new(u64::MAX),
            },
        );
        Ok(())
    }

    /// Drop a nickname; `true` if it existed.
    pub fn drop_nickname(&self, name: &str) -> bool {
        self.nicknames.write().remove(&Self::fold(name)).is_some()
    }

    /// Build a SYSCAT introspection table on the fly. Supported:
    /// `SYSCAT_TABLES` (name, live_rows, total_rows, compressed_bytes,
    /// synopsis_bytes, strides), `SYSCAT_COLUMNS` (table, column, ordinal,
    /// type, nullable, encoding), `SYSCAT_FUNCTIONS` (name, min_args,
    /// max_args, kind).
    fn syscat(&self, key: &str) -> Result<Option<TableHandle>> {
        use dash_common::types::DataType;
        use dash_common::{row, Field, Row};
        let (schema, rows): (Schema, Vec<Row>) = match key {
            "SYSCAT_TABLES" => {
                let schema = Schema::new(vec![
                    Field::not_null("name", DataType::Utf8),
                    Field::new("live_rows", DataType::Int64),
                    Field::new("total_rows", DataType::Int64),
                    Field::new("compressed_bytes", DataType::Int64),
                    Field::new("synopsis_bytes", DataType::Int64),
                    Field::new("strides", DataType::Int64),
                ])?;
                let mut rows = Vec::new();
                for (name, entry) in self.tables.read().iter() {
                    let t = entry.table.read();
                    let stats = t.stats();
                    rows.push(row![
                        name.as_str(),
                        stats.live_rows as i64,
                        stats.total_rows as i64,
                        stats.compressed_bytes as i64,
                        stats.synopsis_bytes as i64,
                        stats.sealed_strides as i64
                    ]);
                }
                (schema, rows)
            }
            "SYSCAT_COLUMNS" => {
                let schema = Schema::new(vec![
                    Field::not_null("table_name", DataType::Utf8),
                    Field::not_null("column_name", DataType::Utf8),
                    Field::new("ordinal", DataType::Int32),
                    Field::new("type_name", DataType::Utf8),
                    Field::new("nullable", DataType::Bool),
                    Field::new("encoding", DataType::Utf8),
                ])?;
                let mut rows = Vec::new();
                for (name, entry) in self.tables.read().iter() {
                    let t = entry.table.read();
                    for (i, f) in t.schema().fields().iter().enumerate() {
                        rows.push(row![
                            name.as_str(),
                            f.name.as_str(),
                            i as i64,
                            f.data_type.sql_name(),
                            f.nullable,
                            t.encoding(i).map(|e| e.name())
                        ]);
                    }
                }
                (schema, rows)
            }
            "SYSCAT_FUNCTIONS" => {
                let schema = Schema::new(vec![
                    Field::not_null("name", DataType::Utf8),
                    Field::new("min_args", DataType::Int32),
                    Field::new("max_args", DataType::Int32),
                    Field::new("kind", DataType::Utf8),
                ])?;
                let mut rows = Vec::new();
                let builtins = dash_exec::functions::builtin_registry();
                for name in builtins.names() {
                    let f = builtins.get(&name).expect("listed");
                    rows.push(row![
                        name.as_str(),
                        f.min_args as i64,
                        (f.max_args.min(i32::MAX as usize)) as i64,
                        "builtin"
                    ]);
                }
                for (name, f) in self.udx.read().iter() {
                    rows.push(row![
                        name.as_str(),
                        f.min_args as i64,
                        (f.max_args.min(i32::MAX as usize)) as i64,
                        "udx"
                    ]);
                }
                (schema, rows)
            }
            _ => return Ok(None),
        };
        let mut table = ColumnTable::new(key.to_string(), schema);
        table.load_rows(rows)?;
        Ok(Some(TableHandle {
            // A reserved id range keeps SYSCAT page keys away from user
            // tables in the buffer pool.
            id: u32::MAX,
            table: Arc::new(RwLock::new(table)),
        }))
    }

    /// The WAL key for a table if it is durable: a permanent catalog table
    /// resolved through aliases. Session temporaries, SYSCAT views, and
    /// nickname caches return `None` — they are volatile by design and
    /// never logged.
    pub fn durable_key(&self, name: &str, session: Option<SessionId>) -> Option<String> {
        if let Some(sid) = session {
            if self.tables.read().contains_key(&Self::temp_key(sid, name)) {
                return None;
            }
        }
        let key = self.resolve_alias(&Self::fold(name));
        match self.tables.read().get(&key) {
            Some(e) if e.owner.is_none() => Some(key),
            _ => None,
        }
    }

    /// Every durable (permanent) table with its handle, sorted by name —
    /// the checkpoint's input.
    pub fn durable_tables(&self) -> Vec<(String, SharedTable)> {
        let mut v: Vec<(String, SharedTable)> = self
            .tables
            .read()
            .iter()
            .filter(|(_, e)| e.owner.is_none())
            .map(|(k, e)| (k.clone(), e.table.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Drop all temporary objects owned by a session.
    pub fn drop_session_objects(&self, session: SessionId) {
        self.tables
            .write()
            .retain(|_, e| e.owner != Some(session));
    }
}

impl SchemaProvider for Catalog {
    fn table(&self, name: &str) -> Result<TableHandle> {
        self.table_handle(name)
    }

    fn view(&self, name: &str) -> Option<(String, Dialect)> {
        self.views.read().get(&Self::fold(name)).cloned()
    }

    fn pool(&self) -> Option<Arc<Mutex<BufferPool>>> {
        self.pool.clone()
    }

    fn udx(&self, name: &str) -> Option<Arc<ScalarFunction>> {
        self.udx.read().get(&name.to_ascii_uppercase()).cloned()
    }

    fn parallelism(&self) -> usize {
        self.parallelism.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn sort_run_rows(&self) -> usize {
        self.sort_run_rows.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl SequenceSource for Catalog {
    fn next_value(&self, name: &str) -> Result<i64> {
        let key = Self::fold(name);
        let mut seqs = self.sequences.lock();
        match seqs.get_mut(&key) {
            Some(s) => {
                let v = s.next;
                s.next += s.increment;
                s.current = Some(v);
                Ok(v)
            }
            None => Err(DashError::not_found("sequence", key)),
        }
    }

    fn current_value(&self, name: &str) -> Result<i64> {
        let key = Self::fold(name);
        let seqs = self.sequences.lock();
        match seqs.get(&key) {
            Some(s) => s.current.ok_or_else(|| {
                DashError::exec(format!(
                    "sequence {key} CURRVAL is not yet defined in this session"
                ))
            }),
            None => Err(DashError::not_found("sequence", key)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_common::types::DataType;
    use dash_common::Field;

    fn schema() -> Schema {
        Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap()
    }

    #[test]
    fn table_lifecycle() {
        let c = Catalog::new(None);
        c.create_table("t1", schema(), None).unwrap();
        assert!(c.has_table("T1"));
        assert!(c.create_table("T1", schema(), None).is_err());
        assert!(c.table_handle("t1").is_ok());
        assert!(c.drop_table("t1", false).unwrap());
        assert!(c.table_handle("t1").is_err());
        assert!(c.drop_table("t1", false).is_err());
        assert!(!c.drop_table("t1", true).unwrap());
    }

    #[test]
    fn aliases_resolve() {
        let c = Catalog::new(None);
        c.create_table("orders", schema(), None).unwrap();
        c.create_alias("o", "orders").unwrap();
        assert!(c.table_handle("O").is_ok());
        // Alias cannot shadow an existing table.
        assert!(c.create_alias("orders", "x").is_err());
    }

    #[test]
    fn sequences() {
        let c = Catalog::new(None);
        c.create_sequence("s", 10, 5).unwrap();
        assert!(c.current_value("s").is_err(), "CURRVAL before NEXTVAL");
        assert_eq!(c.next_value("s").unwrap(), 10);
        assert_eq!(c.next_value("s").unwrap(), 15);
        assert_eq!(c.current_value("s").unwrap(), 15);
        assert!(c.create_sequence("s", 1, 1).is_err());
        c.drop_sequence("s").unwrap();
        assert!(c.next_value("s").is_err());
    }

    #[test]
    fn temp_tables_die_with_session() {
        let c = Catalog::new(None);
        let sid = SessionId(7);
        c.create_table("perm", schema(), None).unwrap();
        c.create_table("tmp", schema(), Some(sid)).unwrap();
        c.drop_session_objects(sid);
        assert!(c.has_table("perm"));
        assert!(!c.has_table("tmp"));
    }

    #[test]
    fn views_keep_dialect() {
        let c = Catalog::new(None);
        c.create_view("v", "SELECT 1 FROM DUAL".into(), Dialect::Oracle)
            .unwrap();
        let (text, d) = SchemaProvider::view(&c, "v").unwrap();
        assert_eq!(d, Dialect::Oracle);
        assert!(text.contains("DUAL"));
        c.drop_view("v", false).unwrap();
        assert!(SchemaProvider::view(&c, "v").is_none());
    }
}

//! Fast, assertable versions of the paper's quantitative claims — the
//! reproduction's regression suite (the full-size runs live in the
//! `repro_*` binaries).

use dashdb_local::common::{row, Datum, Field, Row, Schema};
use dashdb_local::core::{AutoConfig, Database, HardwareSpec};
use dashdb_local::encoding::baseline::{total_raw, RowCompressor};
use dashdb_local::exec::functions::EvalContext;
use dashdb_local::exec::scan::{scan, ColumnPredicate, ScanConfig};
use dashdb_local::mpp::deploy::{simulate_deployment, DeploySpec};
use dashdb_local::storage::bufferpool::{optimal_hit_ratio, simulate, PageKey, Policy};
use dashdb_local::storage::table::ColumnTable;
use dashdb_local::workloads::customer;

/// §II.B.1: columnar compression ≥2x better than classic row compression.
#[test]
fn claim_compression_beats_previous_generation() {
    let w = customer::generate(30_000, 0);
    let t = &w.tables[0];
    let classic = RowCompressor::train(&t.rows).total_compressed(&t.rows);
    let mut col = ColumnTable::new("t", t.schema.clone());
    col.load_rows(t.rows.clone()).unwrap();
    let columnar = col.compressed_bytes();
    assert!(
        columnar * 2 <= classic,
        "columnar {columnar} should be <= half of classic {classic}"
    );
    // And both beat raw.
    assert!(classic < total_raw(&t.rows));
}

/// §II.B.4: synopsis ~3 orders of magnitude smaller than user data, and a
/// recent-window query skips >90% of strides.
#[test]
fn claim_data_skipping() {
    let w = customer::generate(120_000, 0);
    let t = &w.tables[0];
    let mut col = ColumnTable::new("t", t.schema.clone());
    col.load_rows(t.rows.clone()).unwrap();
    let stats = col.stats();
    let raw = 120_000 * t.schema.len() * 8;
    assert!(
        raw / stats.synopsis_bytes.max(1) >= 500,
        "synopsis ratio {}",
        raw / stats.synopsis_bytes.max(1)
    );
    let recent = dashdb_local::workloads::gen::recent_window_start();
    let cfg = ScanConfig {
        predicates: vec![ColumnPredicate::Range {
            col: 2,
            lo: Some(Datum::Date(recent)),
            hi: None,
        }],
        ..ScanConfig::full(0, vec![0])
    };
    let (_, s) = scan(&col, &cfg, &EvalContext::default()).unwrap();
    assert!(s.skip_ratio() > 0.9, "skip ratio {}", s.skip_ratio());
}

/// §II.B.5: randomized-weight replacement within a few points of Belady on
/// scanning workloads, while LRU collapses.
#[test]
fn claim_bufferpool_near_optimal() {
    let mut trace = Vec::new();
    for _ in 0..10 {
        for p in 0..1000u32 {
            trace.push(PageKey::new(0, 0, p));
        }
    }
    let opt = optimal_hit_ratio(&trace, 400);
    let rw = simulate(&trace, 400, Policy::RandomizedWeight).hit_ratio();
    let lru = simulate(&trace, 400, Policy::Lru).hit_ratio();
    assert!(opt - rw <= 0.08, "gap {:.3}", opt - rw);
    assert!(lru < 0.01, "LRU should thrash, got {lru}");
}

/// §II.A: every deployment lands under 30 minutes; configuration derives
/// deterministically from hardware.
#[test]
fn claim_deployment_under_30_minutes() {
    for nodes in [1, 8, 24, 64] {
        for hw in [HardwareSpec::laptop(), HardwareSpec::xeon_e7()] {
            let r = simulate_deployment(&DeploySpec::homogeneous(nodes, hw)).unwrap();
            assert!(
                r.total_minutes() < 30.0,
                "{nodes} nodes took {:.1} min",
                r.total_minutes()
            );
        }
    }
    let a = AutoConfig::derive(&HardwareSpec::xeon_e7());
    let b = AutoConfig::derive(&HardwareSpec::xeon_e7());
    assert_eq!(a, b);
}

/// Figure 9: 4 nodes x 6 shards, node D dies, survivors carry 8 each and
/// query results are unchanged.
#[test]
fn claim_figure_9_failover() {
    use dashdb_local::common::ids::NodeId;
    use dashdb_local::mpp::{Cluster, Distribution};
    let cluster = Cluster::new(4, 6, HardwareSpec::laptop()).unwrap();
    let schema = Schema::new(vec![
        Field::not_null("id", dashdb_local::common::DataType::Int64),
        Field::new("v", dashdb_local::common::DataType::Float64),
    ])
    .unwrap();
    cluster
        .create_table("f", schema, Distribution::Hash("id".into()))
        .unwrap();
    let rows: Vec<Row> = (0..6000).map(|i| row![i as i64, (i % 10) as f64]).collect();
    cluster.load_rows("f", rows).unwrap();
    let before = cluster.query("SELECT COUNT(*), SUM(v) FROM f").unwrap();
    let report = cluster.fail_node(NodeId(3)).unwrap();
    assert_eq!(report.moved_shards, 6);
    for (_, n) in report.shards_per_node {
        assert_eq!(n, 8);
    }
    let after = cluster.query("SELECT COUNT(*), SUM(v) FROM f").unwrap();
    assert_eq!(before, after);
}

/// §II.B.7: column-organized beats the row+index baseline on the analytic
/// workload (directional check at test scale).
#[test]
fn claim_columnar_beats_row_with_index() {
    use dashdb_local::rowstore::engine::RowEngine;
    use dashdb_local::workloads::spec::normalize_sql_groups;
    let w = customer::generate(40_000, 0);
    let db = Database::with_hardware(HardwareSpec::laptop());
    let mut row = RowEngine::new(None);
    for t in &w.tables {
        let h = db.catalog().create_table(&t.name, t.schema.clone(), None).unwrap();
        h.write().load_rows(t.rows.clone()).unwrap();
        row.create_table(&t.name, t.schema.clone()).unwrap();
        row.load(&t.name, t.rows.clone()).unwrap();
        for &c in &t.indexed {
            row.create_index(&t.name, c).unwrap();
        }
    }
    let mut session = db.connect();
    // Aggregate wall times over the query set (both warm, CPU only —
    // at this scale the architectural difference shows in CPU).
    let mut db_total = 0.0;
    let mut row_total = 0.0;
    for q in &w.analytic_queries {
        let start = std::time::Instant::now();
        let a = normalize_sql_groups(session.query(&q.to_sql()).unwrap());
        db_total += start.elapsed().as_secs_f64();
        let start = std::time::Instant::now();
        let (b, _) = q.run_row(&row).unwrap();
        row_total += start.elapsed().as_secs_f64();
        if matches!(q, dashdb_local::workloads::QuerySpec::FilterScan { .. }) {
            continue; // normalization differs; equivalence covered elsewhere
        }
        assert_eq!(a, b, "{}", q.to_sql());
    }
    // The wall-clock claim is meaningful only for optimized code — a
    // debug build measures abstraction overhead, not architecture.
    if cfg!(debug_assertions) {
        eprintln!(
            "debug build: skipping timing assertion (columnar {db_total:.3}s, row {row_total:.3}s)"
        );
    } else {
        assert!(
            db_total < row_total,
            "columnar {db_total:.3}s should beat row {row_total:.3}s"
        );
    }
}

/// The statement mix matches the paper's proportions end to end on the
/// real engine (every statement kind executes successfully).
#[test]
fn claim_statement_mix_executes() {
    let w = customer::generate(3000, 600);
    let db = Database::with_hardware(HardwareSpec::laptop());
    for t in &w.tables {
        let h = db.catalog().create_table(&t.name, t.schema.clone(), None).unwrap();
        h.write().load_rows(t.rows.clone()).unwrap();
    }
    let mut session = db.connect();
    for st in &w.statements {
        session
            .execute(&st.sql)
            .unwrap_or_else(|e| panic!("{} failed: {e}\n{}", st.kind, st.sql));
    }
    let m = db.monitor();
    for kind in ["INSERT", "UPDATE", "SELECT", "CREATE", "DROP"] {
        assert!(m.stats(kind).count > 0, "no {kind} executed");
        assert_eq!(m.stats(kind).errors, 0, "{kind} had errors");
    }
}

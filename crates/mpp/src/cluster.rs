//! The MPP cluster: shard placement and distributed execution.
//!
//! Data is "sharded (hash partitioned) into the storage onto a number of
//! shards that is several factors larger than the number of servers"
//! (§II.E). The coordinator:
//!
//! * routes DDL to every shard and DML rows by hash of the distribution
//!   key (replicated tables go everywhere — the standard MPP treatment of
//!   dimension tables, which keeps joins co-located);
//! * scatters SELECTs to all live shards in parallel and gathers partials,
//!   using **two-phase aggregation** (COUNT/SUM/MIN/MAX/AVG decompose;
//!   AVG splits into SUM+COUNT) with ORDER BY/LIMIT applied post-merge.

use crate::clusterfs::ClusterFs;
use crate::ha::{balance_assignments, RebalanceReport};
use dash_common::dialect::Dialect;
use dash_common::faults::{
    FaultAction, FaultRegistry, NODE_CRASH, REBALANCE_DURING_SCATTER, SHARD_EXEC, SHARD_MOVE,
};
use dash_common::fxhash::{hash_bytes, FxHashMap};
use dash_common::ids::{NodeId, ShardId};
use dash_common::{DashError, Datum, Result, Row, Schema, StatementContext};
use dash_core::monitor::Monitor;
use dash_core::{Database, HardwareSpec};
use dash_exec::agg::AggFunc;
use dash_sql::ast::{AstExpr, SelectItem, SelectStmt, Statement};
use dash_sql::parser::parse_statement;
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Per-shard attempts before the coordinator stops blaming the statement
/// and declares the assigned node dead.
const SHARD_MAX_ATTEMPTS: u32 = 3;

/// Granularity at which stalled (straggler) shard attempts re-check the
/// cancellation flag, so a deadline kill never waits on a full stall.
const STALL_CHUNK: Duration = Duration::from_millis(2);

/// Sentinel owner for a shard found on the clustered filesystem but
/// missing from the published assignment map (damaged metadata). Never a
/// real member; `balance_assignments` treats it like a dead node and
/// re-places the shard.
const UNASSIGNED: NodeId = NodeId(u32::MAX);

/// A versioned, immutable snapshot of the shard → node assignment.
///
/// The cluster publishes exactly one current `AssignmentEpoch`; every
/// rebalance builds a fresh map and swaps it in atomically under a new
/// epoch number. Readers clone the snapshot (a `u64` plus an `Arc` bump)
/// and then read the map with no lock at all, so a statement that pinned
/// epoch `E` keeps seeing `E`'s complete map no matter how many
/// rebalances commit behind its back — the fix for the torn-read window
/// where one scatter round mixed shards from two assignment versions.
#[derive(Debug, Clone)]
pub struct AssignmentEpoch {
    /// Monotonically increasing version; bumped by every committed
    /// rebalance (failover, elastic grow/shrink, chaos-forced).
    pub epoch: u64,
    /// The complete shard → node map published at this epoch. Immutable
    /// once published.
    pub map: Arc<BTreeMap<ShardId, NodeId>>,
}

/// Sleep `total`, waking every [`STALL_CHUNK`] to honour both the round's
/// cancel flag and the statement's token. Returns `true` when the sleep
/// was cut short by cancellation.
fn chunked_sleep(total: Duration, cancel: &AtomicBool, stmt: &StatementContext) -> bool {
    let end = Instant::now() + total;
    loop {
        if cancel.load(Ordering::Relaxed) || stmt.is_cancelled() {
            return true;
        }
        let now = Instant::now();
        if now >= end {
            return false;
        }
        std::thread::sleep(STALL_CHUNK.min(end - now));
    }
}

/// Deadline watchdog: flips the statement token the moment the deadline
/// fires, so workers deep inside shard execution (morsel claims, buffer
/// pool stalls) observe cancellation immediately instead of waiting for
/// the coordinator's next round boundary. The token is deadline-armed
/// anyway — the watchdog is an accelerator, not a correctness requirement
/// — and the drop joins the thread so no watchdog outlives its statement.
struct Watchdog {
    done: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn arm(stmt: &StatementContext) -> Option<Watchdog> {
        let deadline = stmt.deadline()?;
        let done = Arc::new(AtomicBool::new(false));
        let flag = done.clone();
        let token = stmt.clone();
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Acquire) {
                let now = Instant::now();
                if now >= deadline {
                    token.cancel();
                    return;
                }
                std::thread::park_timeout((deadline - now).min(Duration::from_millis(10)));
            }
        });
        Some(Watchdog {
            done,
            handle: Some(handle),
        })
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.thread().unpark();
            let _ = h.join();
        }
    }
}

/// RAII record of which assignment epoch a statement has pinned, kept in
/// the coordinator's [`Monitor`] so operators can see why old epoch
/// snapshots are still referenced. Unpins on drop (every scatter exit
/// path) and re-pins explicitly on the deliberate epoch advances.
struct EpochPin<'a> {
    monitor: &'a Monitor,
    epoch: u64,
}

impl<'a> EpochPin<'a> {
    fn new(monitor: &'a Monitor, epoch: u64) -> EpochPin<'a> {
        monitor.record_epoch_pin(epoch);
        EpochPin { monitor, epoch }
    }

    fn repin(&mut self, epoch: u64) {
        self.monitor.record_epoch_unpin(self.epoch);
        self.monitor.record_epoch_pin(epoch);
        self.epoch = epoch;
    }
}

impl Drop for EpochPin<'_> {
    fn drop(&mut self) {
        self.monitor.record_epoch_unpin(self.epoch);
    }
}

/// Errors worth retrying on the same shard: storage hiccups (mount, page
/// read) and injected cluster transients. Planner/semantic errors are
/// deterministic and re-running them only wastes the retry budget.
fn is_transient(e: &DashError) -> bool {
    matches!(e.class(), "58030" | "57011")
}

/// What one shard attempt (with its internal retry loop) produced.
enum ShardOutcome {
    /// Partial rows, ready to merge.
    Rows(Vec<Row>),
    /// Deterministic failure — propagate to the caller unchanged.
    Fatal(DashError),
    /// Retries exhausted or the node crashed: the assigned node is dead,
    /// fail over and re-drive this shard elsewhere.
    NodeDown(NodeId, DashError),
    /// The statement deadline fired while this shard was in flight.
    Cancelled,
}

/// How a table's rows spread across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Distribution {
    /// Hash-partitioned on a column (by name).
    Hash(String),
    /// Full copy on every shard (dimension tables).
    Replicated,
}

/// One cluster node (a host running one dashDB Local container).
#[derive(Debug, Clone)]
pub struct NodeState {
    /// Node hardware.
    pub hardware: HardwareSpec,
    /// Whether the node is serving.
    pub alive: bool,
}

/// The MPP cluster.
pub struct Cluster {
    fs: ClusterFs,
    nodes: RwLock<BTreeMap<NodeId, NodeState>>,
    /// The current shard → node assignment snapshot. The write lock is
    /// held only to compute-and-swap a new epoch; statements clone the
    /// snapshot once and read it lock-free thereafter.
    assignment: RwLock<AssignmentEpoch>,
    distributions: RwLock<FxHashMap<String, Distribution>>,
    dialect: Dialect,
    /// Shared failpoint registry: every layer (mounts, shard execution,
    /// buffer pools, rebalance moves) evaluates the same instance.
    faults: FaultRegistry,
    monitor: Monitor,
    /// Default per-statement wall-clock budget for distributed SELECTs
    /// issued through [`Cluster::query`]; [`Cluster::query_with_deadline`]
    /// overrides it per call, so concurrent statements never share (or
    /// clobber) each other's budget.
    deadline: RwLock<Option<Duration>>,
}

impl Cluster {
    /// Build a cluster of `node_count` identical nodes with
    /// `shards_per_node` shards each (the paper provisions several shards
    /// per server so failover can rebalance in shard-sized increments).
    pub fn new(node_count: usize, shards_per_node: usize, hw: HardwareSpec) -> Result<Cluster> {
        Cluster::with_faults(node_count, shards_per_node, hw, FaultRegistry::new())
    }

    /// Like [`Cluster::new`], but every layer of the cluster evaluates the
    /// given (typically seeded) failpoint registry — the entry point for
    /// deterministic chaos tests.
    pub fn with_faults(
        node_count: usize,
        shards_per_node: usize,
        hw: HardwareSpec,
        faults: FaultRegistry,
    ) -> Result<Cluster> {
        if node_count == 0 || shards_per_node == 0 {
            return Err(DashError::Cluster(format!(
                "cluster needs at least one node and one shard per node \
                 (got {node_count} nodes x {shards_per_node} shards)"
            )));
        }
        let fs = ClusterFs::with_faults(faults.clone());
        let mut nodes = BTreeMap::new();
        let mut assignment = BTreeMap::new();
        let total_shards = node_count * shards_per_node;
        for n in 0..node_count {
            nodes.insert(
                NodeId(n as u32),
                NodeState {
                    hardware: hw,
                    alive: true,
                },
            );
        }
        for s in 0..total_shards {
            let shard = ShardId(s as u32);
            let node = NodeId((s % node_count) as u32);
            let db = Database::with_hardware(hw);
            db.set_fault_registry(faults.clone());
            fs.create(shard, db)?;
            fs.mount_for(shard, node)?;
            assignment.insert(shard, node);
        }
        Ok(Cluster {
            fs,
            nodes: RwLock::new(nodes),
            assignment: RwLock::new(AssignmentEpoch {
                epoch: 0,
                map: Arc::new(assignment),
            }),
            distributions: RwLock::new(FxHashMap::default()),
            dialect: Dialect::Ansi,
            faults,
            monitor: Monitor::new(),
            deadline: RwLock::new(None),
        })
    }

    /// The clustered filesystem (exposed for portability experiments).
    pub fn filesystem(&self) -> &ClusterFs {
        &self.fs
    }

    /// The cluster-wide failpoint registry (shared with every shard's
    /// buffer pool and the clustered filesystem).
    pub fn faults(&self) -> &FaultRegistry {
        &self.faults
    }

    /// The coordinator's monitoring store (statement + recovery counters).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Set (or clear) the *default* per-statement deadline applied by
    /// [`Cluster::query`]. Statements that need their own budget should
    /// use [`Cluster::query_with_deadline`], which never touches this
    /// shared default — so one statement's deadline cannot cancel
    /// another's.
    pub fn set_statement_deadline(&self, deadline: Option<Duration>) {
        *self.deadline.write() = deadline;
    }

    /// Override the SQL dialect distributed statements are parsed with
    /// (default ANSI).
    pub fn set_dialect(&mut self, dialect: Dialect) {
        self.dialect = dialect;
    }

    /// The current assignment epoch (bumped by every committed rebalance).
    pub fn assignment_epoch(&self) -> u64 {
        self.assignment.read().epoch
    }

    /// Clone the current assignment snapshot: one `u64` plus an `Arc`
    /// bump. The returned snapshot stays internally consistent forever.
    fn pin_assignment(&self) -> AssignmentEpoch {
        self.assignment.read().clone()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.fs.len()
    }

    /// Live node count.
    pub fn live_nodes(&self) -> usize {
        self.nodes.read().values().filter(|n| n.alive).count()
    }

    /// Shards per node: `(node, shard list)` for live nodes.
    pub fn shard_distribution(&self) -> Vec<(NodeId, Vec<ShardId>)> {
        let snapshot = self.pin_assignment();
        let mut by_node: BTreeMap<NodeId, Vec<ShardId>> = BTreeMap::new();
        for (n, st) in self.nodes.read().iter() {
            if st.alive {
                by_node.insert(*n, Vec::new());
            }
        }
        for (&s, &n) in snapshot.map.iter() {
            by_node.entry(n).or_default().push(s);
        }
        by_node.into_iter().collect()
    }

    /// Relative scan cost of a balanced query: the max shard count on any
    /// node (query time is gated by the busiest node; per Figure 9, losing
    /// one of four nodes moves this from 6 to 8 → a 1.33× slowdown).
    pub fn relative_query_cost(&self) -> f64 {
        self.shard_distribution()
            .iter()
            .map(|(_, shards)| shards.len())
            .max()
            .unwrap_or(0) as f64
    }

    // ---- DDL / DML routing -------------------------------------------------

    /// Create a table on every shard with a distribution policy.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        distribution: Distribution,
    ) -> Result<()> {
        if let Distribution::Hash(col) = &distribution {
            if schema.index_of(col).is_none() {
                return Err(DashError::not_found("distribution column", col));
            }
        }
        for shard in self.fs.shards() {
            let fsd = self.fs.mount(shard)?;
            fsd.db.catalog().create_table(name, schema.clone(), None)?;
        }
        self.distributions
            .write()
            .insert(name.to_ascii_uppercase(), distribution);
        Ok(())
    }

    /// Route rows to shards per the table's distribution and bulk-load.
    pub fn load_rows(&self, table: &str, rows: Vec<Row>) -> Result<u64> {
        let dist = self
            .distributions
            .read()
            .get(&table.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| DashError::not_found("table", table))?;
        let shards = self.fs.shards();
        let n = rows.len() as u64;
        match dist {
            Distribution::Replicated => {
                for shard in &shards {
                    let fsd = self.fs.mount(*shard)?;
                    let handle = fsd.db.catalog().table_handle(table)?;
                    let mut t = handle.table.write();
                    for r in &rows {
                        t.insert(r.clone())?;
                    }
                }
            }
            Distribution::Hash(col) => {
                // Hash on the rendered key — stable across numeric kinds.
                let Some(&first_shard) = shards.first() else {
                    return Err(DashError::internal(
                        "cluster filesystem holds no shards (constructor guarantees >= 1)",
                    ));
                };
                let first = self.fs.mount(first_shard)?;
                let schema = first.db.catalog().table_handle(table)?.table.read().schema().clone();
                let key_idx = schema.resolve(&col)?;
                let mut per_shard: Vec<Vec<Row>> = vec![Vec::new(); shards.len()];
                for r in rows {
                    let key = r.get(key_idx).render();
                    let h = hash_bytes(key.as_bytes()) as usize % shards.len();
                    per_shard[h].push(r);
                }
                for (i, shard_rows) in per_shard.into_iter().enumerate() {
                    if shard_rows.is_empty() {
                        continue;
                    }
                    let fsd = self.fs.mount(shards[i])?;
                    let handle = fsd.db.catalog().table_handle(table)?;
                    let mut t = handle.table.write();
                    for r in shard_rows {
                        t.insert(r)?;
                    }
                }
            }
        }
        Ok(n)
    }

    /// Run a statement on every shard (DDL, UPDATE, DELETE broadcast).
    pub fn execute_all(&self, sql: &str) -> Result<u64> {
        let mut affected = 0;
        for shard in self.fs.shards() {
            let fsd = self.fs.mount(shard)?;
            let mut session = fsd.db.connect();
            session.set_dialect(self.dialect);
            affected += session.execute(sql)?.affected;
        }
        Ok(affected)
    }

    // ---- distributed query ---------------------------------------------------

    /// Execute a SELECT across the cluster: scatter to live shards in
    /// parallel, two-phase aggregate, coordinator-side ORDER BY / LIMIT /
    /// DISTINCT. Uses the cluster's default statement deadline (see
    /// [`Cluster::set_statement_deadline`]).
    pub fn query(&self, sql: &str) -> Result<Vec<Row>> {
        self.query_with_deadline(sql, *self.deadline.read())
    }

    /// Like [`Cluster::query`], but with an explicit per-statement
    /// deadline (`None` = run unbounded), ignoring the cluster default.
    /// The deadline travels with this call only; concurrent statements
    /// each keep their own budget.
    pub fn query_with_deadline(&self, sql: &str, deadline: Option<Duration>) -> Result<Vec<Row>> {
        let stmt = parse_statement(sql, self.dialect)?;
        let select = match stmt {
            Statement::Select(s) => *s,
            _ => {
                return Err(DashError::analysis(
                    "Cluster::query takes SELECT; use execute_all for DDL/DML",
                ))
            }
        };
        self.distributed_select(&select, deadline)
    }

    fn distributed_select(&self, stmt: &SelectStmt, deadline: Option<Duration>) -> Result<Vec<Row>> {
        // Decompose aggregates if present.
        let agg_info = analyze_aggregation(stmt)?;
        // The statement each shard runs: partial aggregates, no
        // ORDER BY / LIMIT / OFFSET (applied post-merge).
        let mut shard_stmt = match &agg_info {
            Some(info) => info.partial_stmt.clone(),
            None => stmt.clone(),
        };
        // A LIMIT can be pushed as a per-shard top-k (each shard returns
        // its best offset+limit rows under the same ordering; the
        // coordinator re-sorts and trims the union).
        let limit = shard_stmt.limit.take();
        let offset = shard_stmt.offset.take();
        if agg_info.is_none() && limit.is_some() {
            shard_stmt.limit = Some(limit.unwrap_or(0) + offset.unwrap_or(0));
            // keep shard-side ORDER BY so the top-k is meaningful
        } else {
            shard_stmt.order_by.clear();
        }

        // Scatter to live shards in parallel, surviving shard faults and
        // node deaths along the way.
        let partials = self.scatter(&shard_stmt, deadline)?;

        // Merge.
        let mut merged: Vec<Row> = match &agg_info {
            Some(info) => merge_partials(partials, info)?,
            None => partials.into_iter().flatten().collect(),
        };

        // Coordinator-side DISTINCT (shards already deduped locally).
        if stmt.distinct {
            let mut seen = dash_common::fxhash::FxHashSet::default();
            merged.retain(|r| seen.insert(r.clone()));
        }
        // Coordinator-side ORDER BY.
        if !stmt.order_by.is_empty() {
            let keys = resolve_order_keys(stmt, &merged)?;
            merged.sort_by(|a, b| {
                for &(idx, asc) in &keys {
                    let ord = a.get(idx).sql_cmp(b.get(idx));
                    let ord = if asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        // LIMIT/OFFSET.
        let off = stmt.offset.unwrap_or(0) as usize;
        let merged: Vec<Row> = match stmt.limit {
            Some(l) => merged.into_iter().skip(off).take(l as usize).collect(),
            None if off > 0 => merged.into_iter().skip(off).collect(),
            None => merged,
        };
        Ok(merged)
    }

    // ---- resilient scatter-gather ---------------------------------------------

    /// Drive `shard_stmt` on every shard across a scoped worker pool,
    /// re-driving lost shards after failover, until every shard has
    /// reported or the statement dies (fatal error, quorum loss, or
    /// deadline). Returns per-shard partials in shard-id order.
    ///
    /// The statement pins one [`AssignmentEpoch`] at scatter start and
    /// resolves every round's work against that single immutable map, so
    /// a concurrent rebalance can never tear one round across two
    /// assignment versions. The pin only advances deliberately: when
    /// shards are requeued (failover, mid-remove orphan) they re-pin the
    /// newest epoch, while shards already collected keep their results.
    fn scatter(&self, shard_stmt: &SelectStmt, deadline: Option<Duration>) -> Result<Vec<Vec<Row>>> {
        // The statement's lifecycle spine: deadline-armed token shared by
        // every worker, every shard-local operator, and the watchdog that
        // flips it the instant the deadline fires.
        let stmt_ctx = StatementContext::with_limits(deadline, None);
        let _watchdog = Watchdog::arm(&stmt_ctx);
        let deadline = stmt_ctx.deadline();
        let mut pinned = self.pin_assignment();
        let mut pin = EpochPin::new(&self.monitor, pinned.epoch);
        let mut pending: Vec<ShardId> = self.fs.shards();
        let mut collected: BTreeMap<ShardId, Vec<Row>> = BTreeMap::new();
        let mut round = 0usize;
        // Convergence accounting: the first round is free; every extra
        // round must be paid for by an observed node death or an epoch
        // re-pin. (Bounding by membership sampled at statement start was
        // wrong: a node added mid-statement that then died could exhaust
        // the budget spuriously.)
        let mut deaths = 0usize;
        let mut repins = 0usize;
        while !pending.is_empty() {
            round += 1;
            if round > deaths + repins + 1 {
                return Err(DashError::Cluster(format!(
                    "scatter-gather did not converge after {} failover rounds \
                     ({deaths} node deaths, {repins} epoch re-pins observed)",
                    round - 1
                )));
            }
            // Chaos hook: force a full rebalance between failover rounds,
            // so tests can deterministically race a rebalance against an
            // in-flight statement. `Stall` sleeps first, then rebalances.
            if round > 1 {
                if let Some(action) = self.faults.evaluate(REBALANCE_DURING_SCATTER) {
                    if let FaultAction::Stall(d) = action {
                        std::thread::sleep(d);
                    }
                    self.rebalance()?;
                }
            }
            // Resolve this round's work against the pinned snapshot only.
            // A shard can transiently lack an owner while metadata is
            // damaged mid-membership-change: requeue it for the next
            // round instead of killing the whole statement.
            let mut work: Vec<(ShardId, NodeId, u64)> = Vec::with_capacity(pending.len());
            let mut orphans: Vec<ShardId> = Vec::new();
            for s in &pending {
                match pinned.map.get(s) {
                    Some(n) => work.push((*s, *n, pinned.epoch)),
                    None => orphans.push(*s),
                }
            }
            let (outcomes, timed_out) = self.run_round(shard_stmt, &work, deadline, &stmt_ctx)?;
            if timed_out {
                stmt_ctx.cancel();
                self.monitor.record_deadline_kill();
                self.monitor.record_statement_cancelled();
                self.monitor
                    .note_cancel_latency(stmt_ctx.cancel_latency_max_morsels());
                return Err(DashError::Cancelled);
            }
            let mut requeue: Vec<ShardId> = Vec::new();
            let mut dead: Vec<(NodeId, DashError)> = Vec::new();
            for ((shard, _, _), out) in work.iter().zip(outcomes) {
                match out {
                    Some(ShardOutcome::Rows(rows)) => {
                        collected.insert(*shard, rows);
                    }
                    Some(ShardOutcome::Fatal(e)) => return Err(e),
                    Some(ShardOutcome::NodeDown(n, cause)) => {
                        if !dead.iter().any(|(d, _)| *d == n) {
                            dead.push((n, cause));
                        }
                        requeue.push(*shard);
                    }
                    Some(ShardOutcome::Cancelled) | None => requeue.push(*shard),
                }
            }
            for (n, cause) in dead {
                // Quorum loss aborts the statement here; a node another
                // shard already reported (or that a concurrent statement
                // already buried) still counts as an observed death for
                // the convergence budget.
                match self.declare_dead(n) {
                    Ok(Some(_)) => {
                        deaths += 1;
                        self.monitor.record_failover();
                    }
                    Ok(None) => deaths += 1,
                    Err(e) => {
                        return Err(DashError::Cluster(format!("{e}; first failure: {cause}")))
                    }
                }
            }
            let had_orphans = !orphans.is_empty();
            pending = requeue;
            pending.append(&mut orphans);
            if pending.is_empty() {
                continue;
            }
            // Re-drive lost shards against the *post*-failover epoch;
            // everything already collected keeps its pinned-epoch rows.
            let fresh = self.pin_assignment();
            if fresh.epoch != pinned.epoch {
                self.monitor.record_stale_epoch_retries(pending.len() as u64);
                repins += 1;
                pinned = fresh;
                pin.repin(pinned.epoch);
            } else if had_orphans {
                // The published map itself is missing a shard and no
                // rebalance has happened: heal it with a reconciling
                // rebalance (the clustered filesystem is ground truth).
                self.rebalance()?;
                self.monitor.record_stale_epoch_retries(pending.len() as u64);
                repins += 1;
                pinned = self.pin_assignment();
                pin.repin(pinned.epoch);
            }
        }
        Ok(collected.into_values().collect())
    }

    /// One scatter round: run `work` across a scoped worker pool, gathering
    /// outcomes until done or `deadline`. On deadline the cancel flag stops
    /// in-flight workers (stalls wake every [`STALL_CHUNK`]); the scope
    /// still joins every thread before returning.
    ///
    /// Each work item carries the epoch it was resolved from; a round
    /// whose items span more than one epoch is a torn round — the exact
    /// bug epoch pinning removes — and trips a monitor counter kept as a
    /// regression tripwire.
    fn run_round(
        &self,
        shard_stmt: &SelectStmt,
        work: &[(ShardId, NodeId, u64)],
        deadline: Option<Instant>,
        stmt_ctx: &StatementContext,
    ) -> Result<(Vec<Option<ShardOutcome>>, bool)> {
        let epochs: BTreeSet<u64> = work.iter().map(|&(_, _, e)| e).collect();
        if epochs.len() > 1 {
            self.monitor.record_torn_epoch_round();
        }
        let cancel = AtomicBool::new(false);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, ShardOutcome)>();
        let width = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, 8);
        let n_workers = work.len().min(width);
        crossbeam::thread::scope(|scope| {
            let cancel = &cancel;
            let next = &next;
            for _ in 0..n_workers {
                let tx = tx.clone();
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= work.len() || cancel.load(Ordering::Relaxed) {
                        break;
                    }
                    let (shard, node, epoch) = work[i];
                    let out = self.attempt_shard(shard_stmt, shard, node, epoch, cancel, stmt_ctx);
                    if tx.send((i, out)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut outs: Vec<Option<ShardOutcome>> = (0..work.len()).map(|_| None).collect();
            let mut got = 0usize;
            let mut timed_out = false;
            while got < work.len() {
                let msg = match deadline {
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            timed_out = true;
                            break;
                        }
                        match rx.recv_timeout(d - now) {
                            Ok(m) => m,
                            Err(mpsc::RecvTimeoutError::Timeout) => {
                                timed_out = true;
                                break;
                            }
                            Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    None => match rx.recv() {
                        Ok(m) => m,
                        Err(_) => break,
                    },
                };
                outs[msg.0] = Some(msg.1);
                got += 1;
            }
            if timed_out {
                cancel.store(true, Ordering::SeqCst);
            }
            (outs, timed_out)
        })
        .map_err(|_| DashError::internal("a scatter worker panicked; round abandoned"))
    }

    /// Run one shard's statement on its assigned node, retrying transient
    /// faults with a short backoff. Exhausting the retry budget indicts
    /// the node, not the statement.
    fn attempt_shard(
        &self,
        stmt: &SelectStmt,
        shard: ShardId,
        node: NodeId,
        epoch: u64,
        cancel: &AtomicBool,
        stmt_ctx: &StatementContext,
    ) -> ShardOutcome {
        let mut last_err: Option<DashError> = None;
        for attempt in 0..SHARD_MAX_ATTEMPTS {
            if cancel.load(Ordering::Relaxed) || stmt_ctx.is_cancelled() {
                return ShardOutcome::Cancelled;
            }
            if attempt > 0 {
                self.monitor.record_shard_retry();
                std::thread::sleep(Duration::from_micros(200 * u64::from(attempt)));
            }
            // Simulated node crash: the whole node is gone, not just this
            // work unit — no local retry can help.
            if let Some(action) = self.faults.evaluate_scoped(NODE_CRASH, node.0) {
                match action {
                    FaultAction::Error(msg) => {
                        return ShardOutcome::NodeDown(
                            node,
                            DashError::Cluster(format!(
                                "{node} crashed while running {shard}: {msg}"
                            )),
                        )
                    }
                    FaultAction::Stall(d) => {
                        self.monitor.record_straggler();
                        if chunked_sleep(d, cancel, stmt_ctx) {
                            return ShardOutcome::Cancelled;
                        }
                    }
                }
            }
            // Per-shard transient fault (flaky interconnect, lost work
            // unit): consume a retry.
            match self.faults.evaluate_scoped(SHARD_EXEC, shard.0) {
                Some(FaultAction::Error(msg)) => {
                    last_err = Some(DashError::Cluster(format!(
                        "transient fault executing {shard} on {node}: {msg}"
                    )));
                    continue;
                }
                Some(FaultAction::Stall(d)) => {
                    self.monitor.record_straggler();
                    if chunked_sleep(d, cancel, stmt_ctx) {
                        return ShardOutcome::Cancelled;
                    }
                }
                None => {}
            }
            match self.execute_on_shard(stmt, shard, node, epoch, stmt_ctx) {
                Ok(rows) => return ShardOutcome::Rows(rows),
                Err(e) if is_transient(&e) => last_err = Some(e),
                Err(e) => return ShardOutcome::Fatal(e),
            }
        }
        let err = last_err
            .unwrap_or_else(|| DashError::Cluster(format!("{shard} failed with no error recorded")));
        ShardOutcome::NodeDown(node, err)
    }

    /// Mount a shard on its node (tagged with the statement's pinned
    /// epoch, so a stale-epoch statement cannot steal the mount from a
    /// post-rebalance owner) and execute the partial statement.
    fn execute_on_shard(
        &self,
        stmt: &SelectStmt,
        shard: ShardId,
        node: NodeId,
        epoch: u64,
        stmt_ctx: &StatementContext,
    ) -> Result<Vec<Row>> {
        let fsd = self.fs.mount_for_epoch(shard, node, epoch)?;
        let ctx = dash_exec::functions::EvalContext {
            now_micros: 0,
            sequences: None,
            statement: stmt_ctx.clone(),
            pipeline: dash_exec::pipeline::PipelineConfig::default(),
        };
        let plan =
            dash_sql::planner::plan_select(stmt, fsd.db.catalog().as_ref(), self.dialect, &ctx)?;
        let (batch, _) = dash_exec::plan::execute(&plan, &ctx)?;
        Ok(batch.to_rows())
    }

    // ---- HA & elasticity -------------------------------------------------------

    /// Mark `node` dead (if it is a live member), release its mounts, and
    /// rebalance. `Ok(None)` when the node is unknown or already down;
    /// quorum loss is an error *before* any state changes.
    fn declare_dead(&self, node: NodeId) -> Result<Option<RebalanceReport>> {
        {
            let mut nodes = self.nodes.write();
            let live = nodes.values().filter(|s| s.alive).count();
            let Some(st) = nodes.get_mut(&node) else {
                return Ok(None);
            };
            if !st.alive {
                return Ok(None);
            }
            if live <= 1 {
                return Err(DashError::Cluster(format!(
                    "cannot fail {node}: it is the last live node (quorum loss)"
                )));
            }
            st.alive = false;
        }
        self.fs.release_node(node);
        self.rebalance().map(Some)
    }

    /// Simulate a node failure: its shards re-associate with survivors
    /// (Figure 9). Returns the rebalance report.
    pub fn fail_node(&self, node: NodeId) -> Result<RebalanceReport> {
        {
            let nodes = self.nodes.read();
            let st = nodes
                .get(&node)
                .ok_or_else(|| DashError::not_found("node", node.to_string()))?;
            if !st.alive {
                return Err(DashError::Cluster(format!("{node} is already down")));
            }
        }
        self.declare_dead(node)?
            .ok_or_else(|| DashError::Cluster(format!("{node} vanished during failover")))
    }

    /// Elastic growth: add a node and rebalance shards onto it.
    pub fn add_node(&self, hw: HardwareSpec) -> Result<(NodeId, RebalanceReport)> {
        let id = {
            let mut nodes = self.nodes.write();
            let id = NodeId(nodes.keys().map(|n| n.0 + 1).max().unwrap_or(0));
            nodes.insert(
                id,
                NodeState {
                    hardware: hw,
                    alive: true,
                },
            );
            id
        };
        Ok((id, self.rebalance()?))
    }

    /// Elastic contraction: deliberately decommission a node. Unlike
    /// [`Cluster::fail_node`] (which keeps the dead node as a member so it
    /// can be repaired and restored), removal drops it from the membership
    /// map and releases its clustered-filesystem mounts — a later
    /// [`Cluster::restore_node`] cannot resurrect it.
    pub fn remove_node(&self, node: NodeId) -> Result<RebalanceReport> {
        {
            let mut nodes = self.nodes.write();
            let st = nodes
                .get(&node)
                .ok_or_else(|| DashError::not_found("node", node.to_string()))?;
            let live_after = nodes.values().filter(|s| s.alive).count() - usize::from(st.alive);
            if live_after == 0 {
                return Err(DashError::Cluster(format!(
                    "cannot remove {node}: no live nodes would remain (quorum loss)"
                )));
            }
            nodes.remove(&node);
        }
        self.fs.release_node(node);
        self.rebalance()
    }

    /// Reinstate a repaired node (errors for removed/unknown nodes).
    pub fn restore_node(&self, node: NodeId) -> Result<RebalanceReport> {
        {
            let mut nodes = self.nodes.write();
            let st = nodes
                .get_mut(&node)
                .ok_or_else(|| DashError::not_found("node", node.to_string()))?;
            st.alive = true;
        }
        self.rebalance()
    }

    /// Recompute the shard → node assignment over the live membership and
    /// re-associate moved shards through the clustered filesystem, then
    /// publish the new map under a bumped epoch. Each move passes the
    /// [`SHARD_MOVE`] failpoint; the epoch swap is all-or-nothing (a
    /// failed pass leaves the previous snapshot published), and pinned
    /// readers are never disturbed — they hold their own `Arc` snapshot.
    fn rebalance(&self) -> Result<RebalanceReport> {
        let live: Vec<NodeId> = self
            .nodes
            .read()
            .iter()
            .filter(|(_, st)| st.alive)
            .map(|(n, _)| *n)
            .collect();
        // Hold the write lock across compute+commit so concurrent
        // rebalances serialize and epochs stay monotonic.
        let mut current = self.assignment.write();
        let mut next: BTreeMap<ShardId, NodeId> = current.map.as_ref().clone();
        // Reconcile with the filesystem (ground truth): a shard present
        // on shared storage but missing from the map re-enters under the
        // unassigned sentinel, which rebalancing treats like a dead
        // node's shard and re-places.
        for s in self.fs.shards() {
            next.entry(s).or_insert(UNASSIGNED);
        }
        let next_epoch = current.epoch + 1;
        let report = balance_assignments(&mut next, &live, next_epoch)?;
        for (shard, node) in &next {
            if current.map.get(shard) == Some(node) {
                continue;
            }
            match self.faults.evaluate_scoped(SHARD_MOVE, shard.0) {
                Some(FaultAction::Error(msg)) => {
                    return Err(DashError::Cluster(format!(
                        "re-association of {shard} to {node} failed: {msg}"
                    )))
                }
                Some(FaultAction::Stall(d)) => std::thread::sleep(d),
                None => {}
            }
            self.fs.mount_for_epoch(*shard, *node, next_epoch)?;
        }
        *current = AssignmentEpoch {
            epoch: next_epoch,
            map: Arc::new(next),
        };
        self.monitor.record_epoch_bump();
        Ok(report)
    }
}

// ---- two-phase aggregation ---------------------------------------------------

/// How one original aggregate merges from partials.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum MergeOp {
    /// SUM the partials (COUNT and SUM both merge this way).
    Sum,
    /// MIN of partials.
    Min,
    /// MAX of partials.
    Max,
    /// AVG = SUM(sum partial at `.0`) / SUM(count partial at `.1`).
    Avg(usize, usize),
}

pub(crate) struct AggInfo {
    /// The statement shards run: projected group columns, then partial
    /// aggregates, then hidden group-by columns not in the projection.
    pub partial_stmt: SelectStmt,
    /// Number of leading (projected) group columns in the partial output.
    pub group_cols: usize,
    /// Merge op per original output column (group columns are `None`).
    pub merges: Vec<Option<MergeOp>>,
    /// All partial ordinals that form the grouping key (projected group
    /// columns plus hidden trailing ones).
    pub key_ordinals: Vec<usize>,
}

/// Inspect a SELECT: if it aggregates, build the partial statement and the
/// merge plan. Returns `None` for non-aggregating queries. Errors on
/// aggregates that do not decompose (MEDIAN, STDDEV, ...) or on expressions
/// *around* aggregates (supported shape: each projected item is a bare
/// group column or a bare aggregate call).
fn analyze_aggregation(stmt: &SelectStmt) -> Result<Option<AggInfo>> {
    let has_aggs = stmt
        .projection
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()));
    if !has_aggs && stmt.group_by.is_empty() {
        return Ok(None);
    }
    if stmt.having.is_some() {
        return Err(DashError::unsupported(
            "HAVING in distributed aggregation (filter in a subquery instead)",
        ));
    }
    let mut partial = stmt.clone();
    partial.projection = Vec::new();
    partial.order_by.clear();
    partial.limit = None;
    partial.offset = None;
    // Resolve GROUP BY ordinals against the *original* projection now —
    // the partial projection reorders columns.
    let mut group_exprs: Vec<AstExpr> = Vec::new();
    for g in &stmt.group_by {
        let resolved = match g {
            AstExpr::Lit(Datum::Int(n)) => {
                let idx = *n as usize;
                match stmt.projection.get(idx.wrapping_sub(1)) {
                    Some(SelectItem::Expr { expr, .. }) => expr.clone(),
                    _ => {
                        return Err(DashError::analysis(format!(
                            "GROUP BY position {idx} is out of range"
                        )))
                    }
                }
            }
            other => other.clone(),
        };
        group_exprs.push(resolved);
    }
    partial.group_by = group_exprs.clone();

    let mut merges: Vec<Option<MergeOp>> = Vec::new();
    let mut group_cols = 0usize;
    // First pass: group columns keep their position at the front.
    for item in &stmt.projection {
        let SelectItem::Expr { expr, alias } = item else {
            return Err(DashError::unsupported(
                "wildcards in distributed aggregation",
            ));
        };
        if !expr.contains_aggregate() {
            partial.projection.push(SelectItem::Expr {
                expr: expr.clone(),
                alias: alias.clone(),
            });
            merges.push(None);
            group_cols += 1;
        } else {
            merges.push(Some(MergeOp::Sum)); // placeholder, fixed below
        }
    }
    // Second pass: append partial aggregates after the group columns.
    let mut next_out = group_cols;
    for (i, item) in stmt.projection.iter().enumerate() {
        let SelectItem::Expr { expr, .. } = item else {
            return Err(DashError::internal(
                "projection item changed shape between aggregation passes",
            ));
        };
        if !expr.contains_aggregate() {
            continue;
        }
        let AstExpr::Func {
            name,
            args,
            distinct,
            star,
        } = expr
        else {
            return Err(DashError::unsupported(
                "expressions around aggregates in distributed queries",
            ));
        };
        if *distinct {
            return Err(DashError::unsupported(
                "DISTINCT aggregates in distributed queries",
            ));
        }
        let func = if *star {
            AggFunc::CountStar
        } else {
            AggFunc::from_name(name)
                .ok_or_else(|| DashError::not_found("aggregate function", name))?
        };
        let push_partial = |partial: &mut SelectStmt, e: AstExpr| {
            partial.projection.push(SelectItem::Expr {
                expr: e,
                alias: None,
            });
        };
        match func {
            AggFunc::CountStar | AggFunc::Count | AggFunc::Sum => {
                push_partial(&mut partial, expr.clone());
                merges[i] = Some(MergeOp::Sum);
                next_out += 1;
            }
            AggFunc::Min => {
                push_partial(&mut partial, expr.clone());
                merges[i] = Some(MergeOp::Min);
                next_out += 1;
            }
            AggFunc::Max => {
                push_partial(&mut partial, expr.clone());
                merges[i] = Some(MergeOp::Max);
                next_out += 1;
            }
            AggFunc::Avg => {
                // AVG(x) → SUM(x), COUNT(x).
                push_partial(
                    &mut partial,
                    AstExpr::Func {
                        name: "SUM".into(),
                        args: args.clone(),
                        distinct: false,
                        star: false,
                    },
                );
                push_partial(
                    &mut partial,
                    AstExpr::Func {
                        name: "COUNT".into(),
                        args: args.clone(),
                        distinct: false,
                        star: false,
                    },
                );
                merges[i] = Some(MergeOp::Avg(next_out, next_out + 1));
                next_out += 2;
            }
            other => {
                return Err(DashError::unsupported(format!(
                    "{other:?} does not decompose for distributed execution"
                )))
            }
        }
    }
    // Hidden group columns: GROUP BY expressions not already projected.
    let mut key_ordinals: Vec<usize> = (0..group_cols).collect();
    for g in &group_exprs {
        let projected = stmt.projection.iter().any(
            |p| matches!(p, SelectItem::Expr { expr, .. } if expr == g),
        );
        if !projected {
            partial.projection.push(SelectItem::Expr {
                expr: g.clone(),
                alias: None,
            });
            key_ordinals.push(next_out);
            next_out += 1;
        }
    }
    Ok(Some(AggInfo {
        partial_stmt: partial,
        group_cols,
        merges,
        key_ordinals,
    }))
}

fn merge_partials(partials: Vec<Vec<Row>>, info: &AggInfo) -> Result<Vec<Row>> {
    // Group partial rows by the full grouping key (projected + hidden).
    let mut groups: FxHashMap<Vec<Datum>, Vec<Row>> = FxHashMap::default();
    for row in partials.into_iter().flatten() {
        let key: Vec<Datum> = info
            .key_ordinals
            .iter()
            .map(|&i| row.get(i).clone())
            .collect();
        groups.entry(key).or_default().push(row);
    }
    let mut out = Vec::with_capacity(groups.len());
    for rows in groups.into_values() {
        // Groups are only created by pushing a row, so `rows` is never
        // empty; keep the invariant an error rather than a panic.
        let first = rows
            .first()
            .ok_or_else(|| DashError::internal("empty partial group during merge"))?;
        let mut result: Vec<Datum> = Vec::with_capacity(info.merges.len());
        // The j-th projected group column sits at partial ordinal j.
        let mut group_pos = 0usize;
        // Partial column index for each non-group output is encoded in the
        // merge op ordering: walk them in output order.
        let mut partial_idx = info.group_cols;
        for m in &info.merges {
            match m {
                None => {
                    result.push(first.get(group_pos).clone());
                    group_pos += 1;
                }
                Some(MergeOp::Sum) => {
                    result.push(fold_sum(&rows, partial_idx));
                    partial_idx += 1;
                }
                Some(MergeOp::Min) => {
                    result.push(fold_minmax(&rows, partial_idx, true));
                    partial_idx += 1;
                }
                Some(MergeOp::Max) => {
                    result.push(fold_minmax(&rows, partial_idx, false));
                    partial_idx += 1;
                }
                Some(MergeOp::Avg(sum_i, cnt_i)) => {
                    let sum = fold_sum(&rows, *sum_i);
                    let cnt = fold_sum(&rows, *cnt_i);
                    let v = match (sum.as_float(), cnt.as_int()) {
                        (Some(s), Some(c)) if c > 0 => Datum::Float(s / c as f64),
                        _ => Datum::Null,
                    };
                    result.push(v);
                    partial_idx += 2;
                }
            }
        }
        out.push(Row::new(result));
    }
    Ok(out)
}

fn fold_sum(rows: &[Row], idx: usize) -> Datum {
    let mut int_sum = 0i64;
    let mut float_sum = 0.0f64;
    let mut saw_int = false;
    let mut saw_float = false;
    for r in rows {
        match r.get(idx) {
            Datum::Int(v) => {
                int_sum += v;
                saw_int = true;
            }
            Datum::Float(f) => {
                float_sum += f;
                saw_float = true;
            }
            Datum::Null => {}
            other => {
                if let Some(f) = other.as_float() {
                    float_sum += f;
                    saw_float = true;
                }
            }
        }
    }
    if saw_float {
        Datum::Float(float_sum + int_sum as f64)
    } else if saw_int {
        Datum::Int(int_sum)
    } else {
        Datum::Null
    }
}

fn fold_minmax(rows: &[Row], idx: usize, min: bool) -> Datum {
    let mut best: Option<Datum> = None;
    for r in rows {
        let v = r.get(idx);
        if v.is_null() {
            continue;
        }
        best = Some(match best {
            None => v.clone(),
            Some(b) => {
                let take = if min {
                    v.sql_cmp(&b) == std::cmp::Ordering::Less
                } else {
                    v.sql_cmp(&b) == std::cmp::Ordering::Greater
                };
                if take {
                    v.clone()
                } else {
                    b
                }
            }
        });
    }
    best.unwrap_or(Datum::Null)
}

/// Resolve ORDER BY items to merged-output ordinals (ordinals and
/// projection positions only — coordinator sorting is positional).
fn resolve_order_keys(stmt: &SelectStmt, merged: &[Row]) -> Result<Vec<(usize, bool)>> {
    let width = merged.first().map_or(0, |r| r.len());
    let mut keys = Vec::new();
    for item in &stmt.order_by {
        let idx = match &item.expr {
            AstExpr::Lit(Datum::Int(n)) => (*n as usize).checked_sub(1),
            AstExpr::Column { name, .. } => stmt.projection.iter().position(|p| match p {
                SelectItem::Expr { alias: Some(a), .. } => a.eq_ignore_ascii_case(name),
                SelectItem::Expr {
                    expr: AstExpr::Column { name: cn, .. },
                    ..
                } => cn.eq_ignore_ascii_case(name),
                _ => false,
            }),
            _ => None,
        };
        match idx {
            Some(i) if width == 0 || i < width => keys.push((i, item.asc)),
            _ => {
                return Err(DashError::unsupported(
                    "distributed ORDER BY supports output ordinals and projected columns",
                ))
            }
        }
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_common::faults::FaultPolicy;
    use dash_common::types::DataType;
    use dash_common::{row, Field};

    fn sales_cluster(nodes: usize, shards_per_node: usize, rows: usize) -> Cluster {
        let c = Cluster::new(nodes, shards_per_node, HardwareSpec::laptop()).unwrap();
        let schema = Schema::new(vec![
            Field::not_null("id", DataType::Int64),
            Field::new("region", DataType::Utf8),
            Field::new("amount", DataType::Float64),
        ])
        .unwrap();
        c.create_table("sales", schema, Distribution::Hash("id".into()))
            .unwrap();
        let data: Vec<Row> = (0..rows)
            .map(|i| row![i as i64, format!("r{}", i % 3), (i % 10) as f64])
            .collect();
        c.load_rows("sales", data).unwrap();
        c
    }

    #[test]
    fn hash_distribution_spreads_rows() {
        let c = sales_cluster(4, 3, 12_000);
        // Every shard should hold a reasonable share.
        let mut counts = Vec::new();
        for shard in c.filesystem().shards() {
            let db = c.filesystem().mount(shard).unwrap().db;
            let mut s = db.connect();
            let n = s.query("SELECT COUNT(*) FROM sales").unwrap()[0]
                .get(0)
                .as_int()
                .unwrap();
            counts.push(n);
        }
        let total: i64 = counts.iter().sum();
        assert_eq!(total, 12_000);
        let expected = 12_000 / 12;
        for &n in &counts {
            assert!(
                (n - expected).abs() < expected / 2,
                "imbalanced shard: {n} vs {expected}"
            );
        }
    }

    #[test]
    fn distributed_scan_and_filter() {
        let c = sales_cluster(2, 4, 5000);
        let rows = c
            .query("SELECT id FROM sales WHERE id >= 4990 ORDER BY 1")
            .unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].get(0), &Datum::Int(4990));
    }

    #[test]
    fn two_phase_aggregation() {
        let c = sales_cluster(3, 2, 3000);
        let rows = c
            .query(
                "SELECT region, COUNT(*), SUM(amount), AVG(amount), MIN(id), MAX(id) \
                 FROM sales GROUP BY region ORDER BY region",
            )
            .unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.get(1), &Datum::Int(1000));
            // amounts cycle 0..9 => avg 4.5 per region ± regional skew.
            let avg = r.get(3).as_float().unwrap();
            assert!((avg - 4.5).abs() < 1.0, "avg {avg}");
        }
        let total_min = rows.iter().map(|r| r.get(4).as_int().unwrap()).min().unwrap();
        assert_eq!(total_min, 0);
        let total_max = rows.iter().map(|r| r.get(5).as_int().unwrap()).max().unwrap();
        assert_eq!(total_max, 2999);
    }

    #[test]
    fn global_aggregate_without_groups() {
        let c = sales_cluster(2, 2, 1000);
        let rows = c.query("SELECT COUNT(*), SUM(amount) FROM sales").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Datum::Int(1000));
    }

    #[test]
    fn replicated_tables_join_colocated() {
        let c = sales_cluster(2, 2, 1000);
        let dim = Schema::new(vec![
            Field::new("region", DataType::Utf8),
            Field::new("label", DataType::Utf8),
        ])
        .unwrap();
        c.create_table("regions", dim, Distribution::Replicated)
            .unwrap();
        c.load_rows(
            "regions",
            vec![row!["r0", "zero"], row!["r1", "one"], row!["r2", "two"]],
        )
        .unwrap();
        let rows = c
            .query(
                "SELECT label, COUNT(*) FROM sales JOIN regions ON sales.region = regions.region \
                 GROUP BY label ORDER BY label",
            )
            .unwrap();
        assert_eq!(rows.len(), 3);
        let total: i64 = rows.iter().map(|r| r.get(1).as_int().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn limit_pushdown_and_merge() {
        let c = sales_cluster(2, 2, 1000);
        let mut rows = c.query("SELECT id FROM sales ORDER BY 1 DESC FETCH FIRST 5 ROWS ONLY").unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows.remove(0).get(0), &Datum::Int(999));
    }

    #[test]
    fn failover_rebalances_like_figure_9() {
        // Figure 9: four servers, six shards each; losing server D leaves
        // A, B, C with eight shards each.
        let c = sales_cluster(4, 6, 0);
        assert_eq!(c.relative_query_cost(), 6.0);
        let report = c.fail_node(NodeId(3)).unwrap();
        assert_eq!(report.moved_shards, 6);
        let dist = c.shard_distribution();
        assert_eq!(dist.len(), 3);
        for (_, shards) in &dist {
            assert_eq!(shards.len(), 8, "8 shards each after failover");
        }
        assert_eq!(c.relative_query_cost(), 8.0);
        // Queries still return complete results.
        let c2 = sales_cluster(4, 6, 2400);
        c2.fail_node(NodeId(3)).unwrap();
        let rows = c2.query("SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(rows[0].get(0), &Datum::Int(2400));
    }

    #[test]
    fn elastic_growth_and_restore() {
        let c = sales_cluster(3, 8, 0); // 24 shards on 3 nodes
        let (new_node, report) = c.add_node(HardwareSpec::laptop()).unwrap();
        assert!(report.moved_shards > 0);
        let dist = c.shard_distribution();
        assert_eq!(dist.len(), 4);
        for (_, shards) in &dist {
            assert_eq!(shards.len(), 6, "24 shards over 4 nodes");
        }
        // Contract again.
        c.remove_node(new_node).unwrap();
        for (_, shards) in c.shard_distribution() {
            assert_eq!(shards.len(), 8);
        }
    }

    #[test]
    fn failing_last_node_errors() {
        let c = Cluster::new(1, 2, HardwareSpec::laptop()).unwrap();
        let err = c.fail_node(NodeId(0)).unwrap_err();
        assert_eq!(err.class(), "57011", "quorum loss is a cluster error: {err}");
        assert_eq!(c.live_nodes(), 1, "refused failover leaves the node up");
    }

    #[test]
    fn zero_sized_cluster_is_an_error_not_a_panic() {
        let e = Cluster::new(0, 4, HardwareSpec::laptop())
            .err()
            .expect("zero nodes must fail");
        assert_eq!(e.class(), "57011");
        let e = Cluster::new(3, 0, HardwareSpec::laptop())
            .err()
            .expect("zero shards must fail");
        assert_eq!(e.class(), "57011");
    }

    #[test]
    fn removed_node_is_decommissioned_for_good() {
        let c = sales_cluster(3, 2, 600);
        c.remove_node(NodeId(2)).unwrap();
        assert_eq!(c.live_nodes(), 2);
        // Membership entry is gone: restore cannot resurrect it.
        assert!(c.restore_node(NodeId(2)).is_err());
        // Its clustered-filesystem mounts were released and re-associated.
        for s in c.filesystem().shards() {
            assert_ne!(c.filesystem().mounted_by(s), Some(NodeId(2)));
        }
        // Data survives on the survivors.
        let rows = c.query("SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(rows[0].get(0), &Datum::Int(600));
        // Removing down to the last node is refused.
        c.remove_node(NodeId(1)).unwrap();
        assert!(c.remove_node(NodeId(0)).is_err());
    }

    #[test]
    fn assignment_epoch_bumps_on_every_membership_event() {
        let c = sales_cluster(3, 2, 300);
        assert_eq!(c.assignment_epoch(), 0, "fresh cluster publishes epoch 0");
        let r = c.fail_node(NodeId(2)).unwrap();
        assert_eq!(r.epoch, 1, "report carries the committed epoch");
        assert_eq!(c.assignment_epoch(), 1);
        let (id, r) = c.add_node(HardwareSpec::laptop()).unwrap();
        assert_eq!(r.epoch, 2);
        c.remove_node(id).unwrap();
        assert_eq!(c.assignment_epoch(), 3);
        assert_eq!(c.monitor().recovery().epoch_bumps, 3);
        // Moved shards' mounts are tagged with the epoch that moved them.
        let tagged = c
            .filesystem()
            .shards()
            .iter()
            .filter_map(|s| c.filesystem().mount_epoch(*s))
            .filter(|e| *e > 0)
            .count();
        assert!(tagged > 0, "rebalance moves re-tag mounts with the new epoch");
    }

    #[test]
    fn missing_assignment_requeues_and_heals_instead_of_killing() {
        let c = sales_cluster(2, 2, 400);
        // Damage the metadata: publish a map missing one shard, same epoch.
        {
            let mut guard = c.assignment.write();
            let mut m = guard.map.as_ref().clone();
            m.remove(&ShardId(0));
            *guard = AssignmentEpoch {
                epoch: guard.epoch,
                map: Arc::new(m),
            };
        }
        // The orphaned shard is requeued and healed by a reconciling
        // rebalance — the statement survives and loses no rows.
        let rows = c.query("SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(rows[0].get(0), &Datum::Int(400));
        let rec = c.monitor().recovery();
        assert!(rec.stale_epoch_retries >= 1, "{rec:?}");
        assert_eq!(rec.torn_epoch_rounds, 0, "{rec:?}");
        assert!(c.assignment_epoch() >= 1, "heal committed a new epoch");
        // The healed map is complete again.
        let snap = c.pin_assignment();
        assert!(snap.map.contains_key(&ShardId(0)));
    }

    #[test]
    fn per_call_deadline_overrides_but_never_writes_the_default() {
        let reg = FaultRegistry::new();
        let c = Cluster::with_faults(2, 2, HardwareSpec::laptop(), reg.clone()).unwrap();
        let schema = Schema::new(vec![Field::not_null("id", DataType::Int64)]).unwrap();
        c.create_table("t", schema, Distribution::Hash("id".into())).unwrap();
        c.load_rows("t", (0..100).map(|i| row![i as i64]).collect()).unwrap();
        // Cluster default: effectively unbounded.
        c.set_statement_deadline(Some(Duration::from_secs(60)));
        // A stalling shard plus a tight per-call deadline: only this call
        // is killed; the shared default is untouched.
        reg.arm(
            FaultRegistry::scoped(dash_common::faults::SHARD_EXEC, 0),
            FaultPolicy::Always,
            FaultAction::Stall(Duration::from_secs(5)),
        );
        let err = c
            .query_with_deadline("SELECT COUNT(*) FROM t", Some(Duration::from_millis(50)))
            .unwrap_err();
        assert_eq!(err.class(), "57014", "{err}");
        reg.disarm_all();
        // The default was not clobbered by the per-call override.
        let rows = c.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(rows[0].get(0), &Datum::Int(100));
        // And an explicit None ignores the default entirely.
        let rows = c
            .query_with_deadline("SELECT COUNT(*) FROM t", None)
            .unwrap();
        assert_eq!(rows[0].get(0), &Datum::Int(100));
    }

    #[test]
    fn unsupported_distributed_median_reports_cleanly() {
        let c = sales_cluster(2, 2, 100);
        let e = c.query("SELECT MEDIAN(amount) FROM sales").unwrap_err();
        assert!(e.to_string().contains("decompose"), "{e}");
    }
}

//! Reproduces the software-SIMD claim (§II.B.6):
//!
//! > "novel software-SIMD algorithms to apply predicates simultaneously on
//! > all values in a word, for any code size. It is not uncommon for tens
//! > of values to be packed into a single word."
//!
//! Sweeps the code width and compares three predicate evaluators on the
//! same compressed data: the word-parallel SWAR kernel, a code-at-a-time
//! scalar loop over the packed codes, and full decompress-then-compare
//! (the operate-on-compressed ablation).

use dash_bench::{report, section};
use dash_encoding::bitpack::BitPackedVec;
use dash_exec::simd::{eval_range, eval_range_scalar};
use std::time::Instant;

fn time<F: FnMut() -> usize>(mut f: F, reps: usize) -> (f64, usize) {
    // Warm.
    let mut out = f();
    let start = Instant::now();
    for _ in 0..reps {
        out = std::hint::black_box(f());
    }
    (start.elapsed().as_secs_f64() / reps as f64, out)
}

fn main() {
    println!("Software-SIMD reproduction — dashdb-local-rs");
    let n = 1_000_000usize;
    let reps = 20;
    section(&format!("range predicate over {n} codes ({reps} reps)"));
    println!(
        "  {:>6} {:>10} {:>12} {:>12} {:>14} {:>10} {:>12}",
        "width", "lanes/wd", "simd (ms)", "scalar (ms)", "decoded (ms)", "simd gain", "vs decode"
    );
    let mut widths_ok = 0;
    let sweep: &[u8] = &[1, 2, 3, 4, 5, 7, 8, 11, 13, 16, 17, 21, 32];
    for &width in sweep {
        let max = if width >= 63 { u64::MAX } else { (1u64 << width) - 1 };
        let codes: Vec<u64> = (0..n).map(|i| (i as u64 * 2654435761) & max).collect();
        let packed = BitPackedVec::from_codes(width, &codes);
        let lo = max / 4;
        let hi = max / 2;
        // Word-parallel SWAR.
        let (t_simd, c1) = time(|| eval_range(&packed, lo, hi).count_ones(), reps);
        // Code-at-a-time over packed codes.
        let (t_scalar, c2) = time(|| eval_range_scalar(&packed, lo, hi).count_ones(), reps);
        // Decompress first, then compare — the decode happens per scan,
        // so it belongs inside the timed region (this is the
        // operate-on-compressed ablation).
        let (t_dec, c3) = time(
            || {
                let decoded: Vec<u64> = packed.to_vec();
                decoded.iter().filter(|&&v| v >= lo && v <= hi).count()
            },
            reps,
        );
        assert_eq!(c1, c2);
        assert_eq!(c2, c3);
        let gain = t_scalar / t_simd;
        let vs_dec = t_dec / t_simd;
        if gain > 1.0 {
            widths_ok += 1;
        }
        println!(
            "  {:>6} {:>10} {:>12.3} {:>12.3} {:>14.3} {:>9.1}x {:>11.1}x",
            width,
            64 / width.max(1),
            t_simd * 1e3,
            t_scalar * 1e3,
            t_dec * 1e3,
            gain,
            vs_dec
        );
    }
    section("summary");
    report(
        "widths where word-parallel wins",
        format!("{widths_ok} of {}", sweep.len()),
    );
    report(
        "shape check (SIMD gain grows as width shrinks; works at ANY width incl. 3/5/7/11/13)",
        if widths_ok >= sweep.len() - 2 { "PASS" } else { "FAIL" },
    );
}

//! The MLlib substitute: GLM, logistic regression, k-means.
//!
//! Every algorithm is written map-reduce style over [`FeatureSet`]
//! partitions — per-partition partials combined at the driver — which is
//! both how Spark executes them and what lets the same code run once per
//! shard and merge across an MPP cluster (the "prepackaged Stored
//! Procedures ... like GLM" of §II.D).

use crate::dataset::FeatureSet;
use dash_common::{DashError, Result};

/// A fitted linear model: `y ≈ intercept + w · x`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
    /// Training iterations executed.
    pub iterations: usize,
}

impl LinearModel {
    /// Predict one observation.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept + dot(&self.weights, x)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Fit a Gaussian GLM (linear regression) by full-batch gradient descent.
///
/// Per iteration, each partition computes its gradient contribution
/// independently (the map); the driver sums them (the reduce) and steps.
pub fn linear_regression(
    data: &FeatureSet,
    iterations: usize,
    learning_rate: f64,
) -> Result<LinearModel> {
    let n = data.len();
    if n == 0 {
        return Err(DashError::exec("cannot fit a GLM on zero rows"));
    }
    let d = data.dim;
    let mut w = vec![0.0; d];
    let mut b = 0.0;
    // Feature scaling: normalize by per-dimension max |x| for stable steps.
    let scale = feature_scale(data);
    let mut iters = 0;
    for _ in 0..iterations {
        iters += 1;
        // Map: per-partition gradient partials.
        let mut grad_w = vec![0.0; d];
        let mut grad_b = 0.0;
        for (xs, ys) in &data.partitions {
            let (pw, pb) = partition_gradient(xs, ys, &w, b, &scale);
            for (g, p) in grad_w.iter_mut().zip(pw) {
                *g += p;
            }
            grad_b += pb;
        }
        // Reduce + step.
        let lr = learning_rate / n as f64;
        for (wi, g) in w.iter_mut().zip(&grad_w) {
            *wi -= lr * g;
        }
        b -= lr * grad_b;
    }
    // Un-scale the weights back to the raw feature space.
    let weights = w
        .iter()
        .zip(&scale)
        .map(|(wi, s)| if *s > 0.0 { wi / s } else { 0.0 })
        .collect();
    Ok(LinearModel {
        weights,
        intercept: b,
        iterations: iters,
    })
}

fn feature_scale(data: &FeatureSet) -> Vec<f64> {
    let mut scale = vec![0.0f64; data.dim];
    for (xs, _) in &data.partitions {
        for x in xs {
            for (s, v) in scale.iter_mut().zip(x) {
                *s = s.max(v.abs());
            }
        }
    }
    scale.iter().map(|&s| if s == 0.0 { 1.0 } else { s }).collect()
}

fn partition_gradient(
    xs: &[Vec<f64>],
    ys: &[f64],
    w: &[f64],
    b: f64,
    scale: &[f64],
) -> (Vec<f64>, f64) {
    let mut gw = vec![0.0; w.len()];
    let mut gb = 0.0;
    for (x, &y) in xs.iter().zip(ys) {
        let scaled: Vec<f64> = x.iter().zip(scale).map(|(v, s)| v / s).collect();
        let err = b + dot(w, &scaled) - y;
        for (g, xv) in gw.iter_mut().zip(&scaled) {
            *g += err * xv;
        }
        gb += err;
    }
    (gw, gb)
}

/// Fit a logistic regression (binary labels in {0, 1}) by gradient descent.
pub fn logistic_regression(
    data: &FeatureSet,
    iterations: usize,
    learning_rate: f64,
) -> Result<LinearModel> {
    let n = data.len();
    if n == 0 {
        return Err(DashError::exec("cannot fit on zero rows"));
    }
    let d = data.dim;
    let scale = feature_scale(data);
    let mut w = vec![0.0; d];
    let mut b = 0.0;
    for _ in 0..iterations {
        let mut gw = vec![0.0; d];
        let mut gb = 0.0;
        for (xs, ys) in &data.partitions {
            for (x, &y) in xs.iter().zip(ys) {
                let scaled: Vec<f64> = x.iter().zip(&scale).map(|(v, s)| v / s).collect();
                let p = sigmoid(b + dot(&w, &scaled));
                let err = p - y;
                for (g, xv) in gw.iter_mut().zip(&scaled) {
                    *g += err * xv;
                }
                gb += err;
            }
        }
        let lr = learning_rate / n as f64;
        for (wi, g) in w.iter_mut().zip(&gw) {
            *wi -= lr * g;
        }
        b -= lr * gb;
    }
    let weights = w
        .iter()
        .zip(&scale)
        .map(|(wi, s)| if *s > 0.0 { wi / s } else { 0.0 })
        .collect();
    Ok(LinearModel {
        weights,
        intercept: b,
        iterations,
    })
}

/// Sigmoid with clamping for numeric safety.
pub fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z.clamp(-30.0, 30.0)).exp())
}

/// A fitted k-means clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansModel {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations until convergence (or the cap).
    pub iterations: usize,
    /// Final within-cluster sum of squares.
    pub wcss: f64,
}

impl KMeansModel {
    /// Index of the nearest centroid.
    pub fn assign(&self, x: &[f64]) -> usize {
        nearest(&self.centroids, x).0
    }
}

fn nearest(centroids: &[Vec<f64>], x: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d: f64 = c.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// Lloyd's k-means, map-reduce style: per-partition (sum, count) partials
/// per cluster, merged at the driver each iteration. Deterministic
/// initialization: the k observations most spread along the first feature.
pub fn kmeans(data: &FeatureSet, k: usize, max_iterations: usize) -> Result<KMeansModel> {
    let n = data.len();
    if k == 0 || n < k {
        return Err(DashError::exec(format!(
            "kmeans needs at least k={k} rows, have {n}"
        )));
    }
    // Deterministic seeding: sort a sample by the first dimension and take
    // k evenly spaced observations.
    let mut sample: Vec<Vec<f64>> = data
        .partitions
        .iter()
        .flat_map(|(xs, _)| xs.iter().cloned())
        .collect();
    sample.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap_or(std::cmp::Ordering::Equal));
    let mut centroids: Vec<Vec<f64>> = (0..k)
        .map(|i| sample[i * (n - 1) / (k.max(2) - 1).max(1)].clone())
        .collect();
    let mut iterations = 0;
    let mut wcss = f64::INFINITY;
    for _ in 0..max_iterations {
        iterations += 1;
        // Map: per-partition accumulation.
        let dim = data.dim;
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        let mut new_wcss = 0.0;
        for (xs, _) in &data.partitions {
            for x in xs {
                let (c, d) = nearest(&centroids, x);
                counts[c] += 1;
                new_wcss += d;
                for (s, v) in sums[c].iter_mut().zip(x) {
                    *s += v;
                }
            }
        }
        // Reduce: recompute centroids.
        let mut moved = false;
        for c in 0..k {
            if counts[c] == 0 {
                continue; // keep the old centroid
            }
            let new_c: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            if new_c
                .iter()
                .zip(&centroids[c])
                .any(|(a, b)| (a - b).abs() > 1e-9)
            {
                moved = true;
            }
            centroids[c] = new_c;
        }
        wcss = new_wcss;
        if !moved {
            break;
        }
    }
    Ok(KMeansModel {
        centroids,
        iterations,
        wcss,
    })
}

/// Merge per-shard gradient partials — the cross-shard reduce used when
/// the same GLM runs once per MPP shard (collocated workers) and the
/// driver combines. Exposed so the integration benchmark can fit one model
/// across shards without moving raw rows.
pub fn merge_gradients(partials: &[(Vec<f64>, f64, usize)]) -> (Vec<f64>, f64, usize) {
    let dim = partials.first().map_or(0, |(g, _, _)| g.len());
    let mut gw = vec![0.0; dim];
    let mut gb = 0.0;
    let mut n = 0usize;
    for (pg, pb, pn) in partials {
        for (a, b) in gw.iter_mut().zip(pg) {
            *a += b;
        }
        gb += pb;
        n += pn;
    }
    (gw, gb, n)
}

/// One shard's gradient contribution for the current weights (used with
/// [`merge_gradients`] for cross-shard GLM training).
pub fn shard_gradient(data: &FeatureSet, w: &[f64], b: f64) -> (Vec<f64>, f64, usize) {
    let ones = vec![1.0; data.dim];
    let mut gw = vec![0.0; data.dim];
    let mut gb = 0.0;
    let mut n = 0usize;
    for (xs, ys) in &data.partitions {
        let (pw, pb) = partition_gradient(xs, ys, w, b, &ones);
        for (a, p) in gw.iter_mut().zip(pw) {
            *a += p;
        }
        gb += pb;
        n += xs.len();
    }
    (gw, gb, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use dash_common::types::DataType;
    use dash_common::{row, Field, Row, Schema};

    fn linear_data(n: usize, parts: usize) -> FeatureSet {
        // y = 3x + 2 with mild deterministic noise.
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float64),
            Field::new("y", DataType::Float64),
        ])
        .unwrap();
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                let x = i as f64 / 10.0;
                let noise = ((i * 7919) % 11) as f64 / 100.0 - 0.05;
                row![x, 3.0 * x + 2.0 + noise]
            })
            .collect();
        Dataset::from_rows(schema, rows, parts)
            .to_features(&[0], 1)
            .unwrap()
    }

    #[test]
    fn glm_recovers_line() {
        let data = linear_data(500, 4);
        let m = linear_regression(&data, 800, 0.5).unwrap();
        assert!((m.weights[0] - 3.0).abs() < 0.1, "slope {}", m.weights[0]);
        assert!((m.intercept - 2.0).abs() < 0.3, "intercept {}", m.intercept);
        assert!((m.predict(&[10.0]) - 32.0).abs() < 1.0);
    }

    #[test]
    fn glm_partition_invariance() {
        // Full-batch GD: gradients are sums, so partitioning must not
        // change the fit — the property that makes per-shard training valid.
        let a = linear_regression(&linear_data(300, 1), 200, 0.5).unwrap();
        let b = linear_regression(&linear_data(300, 8), 200, 0.5).unwrap();
        assert!((a.weights[0] - b.weights[0]).abs() < 1e-9);
        assert!((a.intercept - b.intercept).abs() < 1e-9);
    }

    #[test]
    fn glm_empty_errors() {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float64),
            Field::new("y", DataType::Float64),
        ])
        .unwrap();
        let fs = Dataset::from_rows(schema, vec![], 2).to_features(&[0], 1).unwrap();
        assert!(linear_regression(&fs, 10, 0.1).is_err());
    }

    #[test]
    fn logistic_separates_classes() {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float64),
            Field::new("y", DataType::Float64),
        ])
        .unwrap();
        let rows: Vec<Row> = (0..400)
            .map(|i| {
                let x = (i % 100) as f64 / 10.0;
                let y = if x > 5.0 { 1.0 } else { 0.0 };
                row![x, y]
            })
            .collect();
        let fs = Dataset::from_rows(schema, rows, 4).to_features(&[0], 1).unwrap();
        let m = logistic_regression(&fs, 2000, 2.0).unwrap();
        assert!(sigmoid(m.predict(&[9.0])) > 0.9);
        assert!(sigmoid(m.predict(&[1.0])) < 0.1);
    }

    #[test]
    fn kmeans_finds_clusters() {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float64),
            Field::new("y", DataType::Float64),
        ])
        .unwrap();
        // Three tight clusters around 0, 10, 20 (y is the dummy target).
        let rows: Vec<Row> = (0..300)
            .map(|i| {
                let center = (i % 3) as f64 * 10.0;
                let jitter = ((i * 31) % 7) as f64 / 10.0 - 0.3;
                row![center + jitter, 0.0f64]
            })
            .collect();
        let fs = Dataset::from_rows(schema, rows, 3).to_features(&[0], 1).unwrap();
        let m = kmeans(&fs, 3, 50).unwrap();
        let mut centers: Vec<f64> = m.centroids.iter().map(|c| c[0]).collect();
        centers.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((centers[0] - 0.0).abs() < 1.0, "{centers:?}");
        assert!((centers[1] - 10.0).abs() < 1.0);
        assert!((centers[2] - 20.0).abs() < 1.0);
        assert!(m.wcss < 300.0);
        assert!(kmeans(&fs, 0, 10).is_err());
    }

    #[test]
    fn cross_shard_gradient_merge_equals_single() {
        // Two shards' merged gradient == one combined set's gradient.
        let all = linear_data(200, 1);
        let w = vec![0.5];
        let b = 0.1;
        let (g_all, gb_all, n_all) = shard_gradient(&all, &w, b);
        // Split the same data into two "shards".
        let (xs, ys) = &all.partitions[0];
        let shard1 = FeatureSet {
            dim: 1,
            partitions: vec![(xs[..100].to_vec(), ys[..100].to_vec())],
        };
        let shard2 = FeatureSet {
            dim: 1,
            partitions: vec![(xs[100..].to_vec(), ys[100..].to_vec())],
        };
        let p1 = shard_gradient(&shard1, &w, b);
        let p2 = shard_gradient(&shard2, &w, b);
        let (g_m, gb_m, n_m) = merge_gradients(&[p1, p2]);
        assert!((g_all[0] - g_m[0]).abs() < 1e-9);
        assert!((gb_all - gb_m).abs() < 1e-9);
        assert_eq!(n_all, n_m);
    }
}

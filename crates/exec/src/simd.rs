//! Software-SIMD predicate evaluation (§II.B.6).
//!
//! "The BLU Acceleration technology in dashDB enhances these SIMD
//! instructions with novel software-SIMD algorithms to apply predicates
//! simultaneously on all values in a word, for any code size."
//!
//! Codes are packed `k = ⌊64/w⌋` per word (see
//! [`dash_encoding::bitpack::BitPackedVec`]). One 64-bit ALU operation
//! therefore touches up to 64 codes (w = 1). The comparisons below are
//! exact SWAR algorithms with **no cross-lane carry leakage**:
//!
//! * equality uses XOR + an in-lane OR-fold (⌈log₂ w⌉ shifts);
//! * unsigned less-than splits each lane at its MSB — the low parts are
//!   compared with a borrow-free subtraction (minuend is forced ≥ 2^(w-1),
//!   subtrahend < 2^(w-1), so no lane can borrow from its neighbour) and
//!   the MSBs resolve the rest with pure boolean logic.

use dash_encoding::bitmap::Bitmap;
use dash_encoding::bitpack::BitPackedVec;

/// Per-width constant masks used by the SWAR kernels.
#[derive(Debug, Clone, Copy)]
struct LaneMasks {
    /// Lanes per word.
    k: usize,
    /// Width in bits.
    w: u32,
    /// MSB of each lane.
    high: u64,
    /// All bits of all lanes (excludes the pad bits above lane k-1).
    all: u64,
}

fn masks(width: u8) -> LaneMasks {
    let w = width as u32;
    let k = (64 / w) as usize;
    let mut high = 0u64;
    let mut all = 0u64;
    let lane_mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
    for lane in 0..k {
        high |= (1u64 << (w - 1)) << (lane as u32 * w);
        all |= lane_mask << (lane as u32 * w);
    }
    LaneMasks { k, w, high, all }
}

/// Broadcast a code into every lane of a word.
fn broadcast(m: &LaneMasks, value: u64) -> u64 {
    let mut out = 0u64;
    for lane in 0..m.k {
        out |= value << (lane as u32 * m.w);
    }
    out
}

/// Per-lane `x == b` with the result in each lane's MSB position.
/// Derived from the two exact less-than kernels: eq ⇔ ¬(x<b) ∧ ¬(b<x).
#[inline]
fn lanes_eq(m: &LaneMasks, word: u64, bcast: u64) -> u64 {
    let lt = lanes_lt(m, word, bcast);
    let gt = lt_rev(m, word, bcast);
    (!(lt | gt)) & m.high
}

/// Per-lane unsigned `x < b` with the result in each lane's MSB position.
#[inline]
fn lanes_lt(m: &LaneMasks, word: u64, bcast: u64) -> u64 {
    let x = word & m.all;
    let y = bcast & m.all;
    let xl = x & !m.high;
    let yl = y & !m.high;
    // Low-part compare: ((xl | H) - yl) has per-lane MSB set ⇔ xl >= yl.
    // No borrow can cross lanes: minuend ≥ 2^(w-1) > subtrahend.
    let ge_low = ((xl | m.high).wrapping_sub(yl)) & m.high;
    let lt_low = (!ge_low) & m.high;
    // Combine with the MSBs: x < y ⇔ (¬xm ∧ ym) ∨ (xm == ym ∧ xl < yl).
    let cond1 = (!x) & y & m.high;
    let same = !(x ^ y) & m.high;
    cond1 | (same & lt_low)
}

/// Extract the per-lane MSB results of the first `n` lanes into a bitmap
/// appended at `out`'s current end.
#[inline]
fn extract(m: &LaneMasks, result: u64, n: usize, out: &mut Bitmap) {
    for lane in 0..n {
        let bit = (result >> (lane as u32 * m.w + (m.w - 1))) & 1;
        out.push(bit == 1);
    }
}

/// Evaluate `lo <= code <= hi` (inclusive, code domain) over every code in
/// the vector, one bit per code.
///
/// This is the hot kernel: for width `w` it does O(1) word operations per
/// `⌊64/w⌋` codes instead of one compare per code.
pub fn eval_range(codes: &BitPackedVec, lo: u64, hi: u64) -> Bitmap {
    let width = codes.width();
    if width == 0 {
        // Every code is 0: the range qualifies iff it includes 0.
        debug_assert!(lo <= hi, "caller must order the bounds");
        return if lo == 0 {
            Bitmap::ones(codes.len())
        } else {
            Bitmap::zeros(codes.len())
        };
    }
    if width == 64 {
        // One lane per word: direct compares.
        let mut out = Bitmap::zeros(0);
        for c in codes.iter() {
            out.push(c >= lo && c <= hi);
        }
        return out;
    }
    let m = masks(width);
    let max_code = (1u64 << width) - 1;
    let lo = lo.min(max_code);
    let hi = hi.min(max_code);
    let mut out = Bitmap::zeros(0);
    let bc_lo = broadcast(&m, lo);
    let bc_hi = broadcast(&m, hi);
    let words = codes.words();
    let full_words = codes.len() / m.k;
    for (wi, &word) in words.iter().enumerate() {
        // qualify ⇔ ¬(x < lo) ∧ ¬(hi < x)
        let below = lanes_lt(&m, word, bc_lo);
        let above = lt_rev(&m, word, bc_hi);
        let ok = (!(below | above)) & m.high;
        let lanes = if wi < full_words {
            m.k
        } else {
            codes.len() - full_words * m.k
        };
        extract(&m, ok, lanes, &mut out);
    }
    out
}

/// Per-lane `b < x` (i.e. x > b) in MSB position.
#[inline]
fn lt_rev(m: &LaneMasks, word: u64, bcast: u64) -> u64 {
    let x = word & m.all;
    let y = bcast & m.all;
    let xl = x & !m.high;
    let yl = y & !m.high;
    let ge_low = ((yl | m.high).wrapping_sub(xl)) & m.high; // yl >= xl
    let lt_low = (!ge_low) & m.high; // yl < xl
    let cond1 = (!y) & x & m.high; // ym=0, xm=1
    let same = !(x ^ y) & m.high;
    cond1 | (same & lt_low)
}

/// Evaluate `code == value` over every code, one bit per code.
pub fn eval_eq(codes: &BitPackedVec, value: u64) -> Bitmap {
    let width = codes.width();
    if width == 0 {
        return if value == 0 {
            Bitmap::ones(codes.len())
        } else {
            Bitmap::zeros(codes.len())
        };
    }
    if width == 64 {
        let mut out = Bitmap::zeros(0);
        for c in codes.iter() {
            out.push(c == value);
        }
        return out;
    }
    let max_code = (1u64 << width) - 1;
    if value > max_code {
        return Bitmap::zeros(codes.len());
    }
    let m = masks(width);
    let bc = broadcast(&m, value);
    let mut out = Bitmap::zeros(0);
    let full_words = codes.len() / m.k;
    for (wi, &word) in codes.words().iter().enumerate() {
        let ok = lanes_eq(&m, word, bc);
        let lanes = if wi < full_words {
            m.k
        } else {
            codes.len() - full_words * m.k
        };
        extract(&m, ok, lanes, &mut out);
    }
    out
}

/// Scalar reference implementation (decode each code, compare) — used by
/// tests for equivalence and by the ablation benchmark as the
/// "decompress-then-evaluate" baseline.
pub fn eval_range_scalar(codes: &BitPackedVec, lo: u64, hi: u64) -> Bitmap {
    let mut out = Bitmap::zeros(0);
    for c in codes.iter() {
        out.push(c >= lo && c <= hi);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn packed(width: u8, codes: &[u64]) -> BitPackedVec {
        BitPackedVec::from_codes(width, codes)
    }

    #[test]
    fn eq_small_width() {
        let codes: Vec<u64> = (0..200).map(|i| i % 4).collect();
        let v = packed(2, &codes);
        let bm = eval_eq(&v, 3);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(bm.get(i), c == 3, "at {i}");
        }
    }

    #[test]
    fn range_odd_width() {
        // Width 5: 12 lanes per word — "any code size".
        let codes: Vec<u64> = (0..100).map(|i| (i * 7) % 32).collect();
        let v = packed(5, &codes);
        let bm = eval_range(&v, 10, 20);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(bm.get(i), (10..=20).contains(&c), "at {i} code {c}");
        }
    }

    #[test]
    fn one_bit_codes() {
        let codes: Vec<u64> = (0..130).map(|i| i % 2).collect();
        let v = packed(1, &codes);
        let eq1 = eval_eq(&v, 1);
        assert_eq!(eq1.count_ones(), 65);
        let all = eval_range(&v, 0, 1);
        assert_eq!(all.count_ones(), 130);
    }

    #[test]
    fn width64_fallback() {
        let codes = vec![0u64, u64::MAX, 42, 1 << 63];
        let v = packed(64, &codes);
        let bm = eval_range(&v, 42, u64::MAX);
        assert_eq!(
            bm.iter_ones().collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn width0_constant() {
        let v = packed(0, &[0; 10]);
        assert_eq!(eval_eq(&v, 0).count_ones(), 10);
        assert_eq!(eval_eq(&v, 1).count_ones(), 0);
        assert_eq!(eval_range(&v, 0, 5).count_ones(), 10);
    }

    #[test]
    fn value_above_max_code() {
        let v = packed(3, &[1, 2, 3]);
        assert_eq!(eval_eq(&v, 99).count_ones(), 0);
    }

    #[test]
    fn boundary_codes_extremes() {
        // Max code in every lane, compare against max.
        for width in [3u8, 7, 9, 13, 21, 31, 33] {
            let max = (1u64 << width) - 1;
            let codes = vec![max, 0, max, 1, max - 1];
            let v = packed(width, &codes);
            let bm = eval_eq(&v, max);
            assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![0, 2], "w={width}");
            let ge = eval_range(&v, max - 1, max);
            assert_eq!(ge.iter_ones().collect::<Vec<_>>(), vec![0, 2, 4], "w={width}");
        }
    }

    proptest! {
        #[test]
        fn prop_matches_scalar(
            width in 1u8..=33,
            raw in prop::collection::vec(any::<u64>(), 1..300),
            lo_raw in any::<u64>(),
            hi_raw in any::<u64>(),
        ) {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let codes: Vec<u64> = raw.iter().map(|v| v & mask).collect();
            let v = packed(width, &codes);
            let lo = lo_raw & mask;
            let hi = hi_raw & mask;
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            prop_assert_eq!(eval_range(&v, lo, hi), eval_range_scalar(&v, lo, hi));
            let eq_val = lo;
            let simd_eq = eval_eq(&v, eq_val);
            let scalar_eq = eval_range_scalar(&v, eq_val, eq_val);
            prop_assert_eq!(simd_eq, scalar_eq);
        }
    }
}

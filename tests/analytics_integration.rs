//! Cross-crate integration: the analytics runtime against engine data —
//! transfer, datasets, ML, and SQL/analytics agreement on shared data.

use dashdb_local::analytics::dataset::Dataset;
use dashdb_local::analytics::ml::{kmeans, linear_regression, logistic_regression, sigmoid};
use dashdb_local::analytics::transfer::{read_table, read_table_then_filter, TransferMode};
use dashdb_local::analytics::Dispatcher;
use dashdb_local::common::Datum;
use dashdb_local::core::{Database, HardwareSpec};
use std::sync::Arc;

fn db_with_obs(n: usize) -> Arc<Database> {
    let db = Database::with_hardware(HardwareSpec::laptop());
    let mut s = db.connect();
    s.execute("CREATE TABLE obs (id BIGINT, x DOUBLE, y DOUBLE, seg INT)")
        .unwrap();
    let mut chunk = Vec::new();
    for i in 0..n {
        let x = (i % 500) as f64 / 5.0;
        chunk.push(format!(
            "({i}, {x}, {}, {})",
            4.0 * x - 3.0 + ((i % 7) as f64 / 10.0),
            i % 3
        ));
        if chunk.len() == 500 {
            s.execute(&format!("INSERT INTO obs VALUES {}", chunk.join(",")))
                .unwrap();
            chunk.clear();
        }
    }
    db
}

#[test]
fn sql_aggregate_matches_dataset_aggregate() {
    let db = db_with_obs(5000);
    let mut s = db.connect();
    let sql_sum = s.query("SELECT SUM(y) FROM obs").unwrap()[0]
        .get(0)
        .as_float()
        .unwrap();
    let (ds, stats) =
        read_table(&db, "obs", &["y"], None, TransferMode::Collocated, 8).unwrap();
    assert_eq!(stats.rows, 5000);
    let ds_sum = ds.sum_column(0);
    assert!((sql_sum - ds_sum).abs() < 1e-6, "{sql_sum} vs {ds_sum}");
}

#[test]
fn pushdown_equals_worker_filter() {
    let db = db_with_obs(3000);
    let (pushed, pushed_stats) = read_table(
        &db,
        "obs",
        &["id", "x"],
        Some("seg = 2"),
        TransferMode::Collocated,
        4,
    )
    .unwrap();
    let (filtered, full_stats) = read_table_then_filter(
        &db,
        "obs",
        &["id", "x", "seg"],
        |r| r.get(2).as_int() == Some(2),
        TransferMode::Collocated,
        4,
    )
    .unwrap();
    assert_eq!(pushed.count(), filtered.count());
    assert!(pushed_stats.bytes < full_stats.bytes / 2);
}

#[test]
fn glm_on_engine_data_recovers_model() {
    let db = db_with_obs(4000);
    let (ds, _) =
        read_table(&db, "obs", &["x", "y"], None, TransferMode::Collocated, 4).unwrap();
    let fs = ds.to_features(&[0], 1).unwrap();
    let m = linear_regression(&fs, 600, 1.0).unwrap();
    assert!((m.weights[0] - 4.0).abs() < 0.1, "slope {}", m.weights[0]);
    assert!((m.intercept + 3.0).abs() < 0.6, "intercept {}", m.intercept);
}

#[test]
fn kmeans_on_engine_data() {
    let db = Database::with_hardware(HardwareSpec::laptop());
    let mut s = db.connect();
    s.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)").unwrap();
    let mut values = Vec::new();
    for i in 0..600 {
        let c = (i % 2) as f64 * 50.0;
        values.push(format!("({}, 0.0)", c + (i % 9) as f64 / 3.0));
    }
    s.execute(&format!("INSERT INTO pts VALUES {}", values.join(",")))
        .unwrap();
    let (ds, _) = read_table(&db, "pts", &["x", "y"], None, TransferMode::Collocated, 3).unwrap();
    let fs = ds.to_features(&[0], 1).unwrap();
    let m = kmeans(&fs, 2, 30).unwrap();
    let mut cs: Vec<f64> = m.centroids.iter().map(|c| c[0]).collect();
    cs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!((cs[0] - 1.3).abs() < 1.5, "{cs:?}");
    assert!((cs[1] - 51.3).abs() < 1.5, "{cs:?}");
}

#[test]
fn logistic_on_engine_data() {
    let db = Database::with_hardware(HardwareSpec::laptop());
    let mut s = db.connect();
    s.execute("CREATE TABLE lab (x DOUBLE, label DOUBLE)").unwrap();
    let mut values = Vec::new();
    for i in 0..500 {
        let x = (i % 100) as f64;
        values.push(format!("({x}, {})", if x > 50.0 { 1.0 } else { 0.0 }));
    }
    s.execute(&format!("INSERT INTO lab VALUES {}", values.join(",")))
        .unwrap();
    let (ds, _) =
        read_table(&db, "lab", &["x", "label"], None, TransferMode::Collocated, 2).unwrap();
    let m = logistic_regression(&ds.to_features(&[0], 1).unwrap(), 1500, 2.0).unwrap();
    assert!(sigmoid(m.predict(&[90.0])) > 0.9);
    assert!(sigmoid(m.predict(&[10.0])) < 0.1);
}

#[test]
fn dataset_pipeline_over_transfer() {
    let db = db_with_obs(2000);
    let (ds, _) = read_table(&db, "obs", &["id", "seg"], None, TransferMode::Collocated, 6)
        .unwrap();
    let evens = ds.filter(|r| r.get(0).as_int().unwrap() % 2 == 0);
    assert_eq!(evens.count(), 1000);
    let seg_total = evens.aggregate(
        || 0i64,
        |acc, r| acc + r.get(1).as_int().unwrap(),
        |a, b| a + b,
    );
    let mut s = db.connect();
    let sql = s
        .query("SELECT SUM(seg) FROM obs WHERE MOD(id, 2) = 0")
        .unwrap();
    assert_eq!(sql[0].get(0), &Datum::Int(seg_total));
}

#[test]
fn dispatcher_runs_analytics_jobs() {
    let db = db_with_obs(1000);
    let dispatcher = Dispatcher::new(db.config().analytics_mb);
    let db2 = db.clone();
    let job = dispatcher.submit("carol", "glm", move || {
        let (ds, _) =
            read_table(&db2, "obs", &["x", "y"], None, TransferMode::Collocated, 2)?;
        let m = linear_regression(&ds.to_features(&[0], 1)?, 200, 1.0)?;
        Ok(format!("slope={:.2}", m.weights[0]))
    });
    match dispatcher.status("carol", job).unwrap() {
        dashdb_local::analytics::JobStatus::Done(s) => assert!(s.starts_with("slope=4")),
        other => panic!("unexpected status {other:?}"),
    }
    let _ = Dataset::from_rows(
        dashdb_local::common::Schema::empty(),
        vec![],
        1,
    );
}

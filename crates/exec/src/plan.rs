//! The physical operator tree and its (materialized) executor.
//!
//! Plans are built by the SQL planner (crate `dash-sql`) or directly by
//! embedding code, and executed bottom-up: each node materializes its
//! output batch. At reproduction scale this is simpler than a streaming
//! Volcano loop and the stride-based scan already bounds working memory
//! during the expensive phase.

use crate::agg::{hash_aggregate, AggExpr};
use crate::batch::Batch;
use crate::expr::Expr;
use crate::functions::EvalContext;
use crate::join::{hash_join, JoinType};
use crate::key::KeyMode;
use crate::scan::{scan, ScanConfig};
use crate::sort::{sort_batch, SortKey, SortOptions};
use crate::stats::ExecStats;
use dash_common::{DashError, Result, Row, Schema};
use dash_storage::table::ColumnTable;
use parking_lot::RwLock;
use std::sync::Arc;

/// A shared handle to a column table (the catalog owns these).
pub type SharedTable = Arc<RwLock<ColumnTable>>;

/// A physical query plan.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Columnar table scan with pushed-down predicates.
    ColumnScan {
        /// The table.
        table: SharedTable,
        /// Scan configuration (predicates, projection, pool).
        config: ScanConfig,
    },
    /// Literal rows (the `VALUES` clause, `SELECT ... FROM DUAL`).
    Values {
        /// Output schema.
        schema: Schema,
        /// The rows.
        rows: Vec<Row>,
    },
    /// Row filter by a boolean expression.
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// The predicate.
        predicate: Expr,
    },
    /// Expression projection.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// One expression per output column.
        exprs: Vec<Expr>,
        /// Output schema (names/types decided by the planner).
        schema: Schema,
    },
    /// Partitioned hash join.
    HashJoin {
        /// Probe side.
        left: Box<PhysicalPlan>,
        /// Build side.
        right: Box<PhysicalPlan>,
        /// Key pairs (left ordinal, right ordinal).
        on: Vec<(usize, usize)>,
        /// Join type.
        join_type: JoinType,
        /// Key path: `Encoded` hashes/probes fixed-width code words
        /// (operate on compressed); `Datum` is the general fallback.
        key_mode: KeyMode,
        /// Worker-pool width for partitioning and build+probe morsels.
        parallelism: usize,
    },
    /// Partitioned hash aggregation.
    HashAggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Group key expressions.
        group: Vec<Expr>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
        /// Output schema: group columns then aggregate columns.
        schema: Schema,
        /// Key path: `Encoded` groups on fixed-width code words when every
        /// key is a bare column; `Datum` is the general fallback.
        key_mode: KeyMode,
        /// Worker-pool width for key-eval and per-partition morsels.
        parallelism: usize,
    },
    /// Sort with optional LIMIT/OFFSET.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort keys (may be empty for pure LIMIT).
        keys: Vec<SortKey>,
        /// Row limit.
        limit: Option<usize>,
        /// Rows to skip.
        offset: usize,
        /// Worker-pool width for run generation, merge, and gather.
        parallelism: usize,
        /// Rows per parallel sort run (`DASH_SORT_RUN_ROWS`).
        run_rows: usize,
    },
    /// Concatenation of same-schema inputs (UNION ALL).
    UnionAll {
        /// Inputs.
        inputs: Vec<PhysicalPlan>,
    },
    /// Deduplicating union / SELECT DISTINCT.
    Distinct {
        /// Input plan.
        input: Box<PhysicalPlan>,
    },
    /// Append a 1-based BIGINT row-number column (Oracle ROWNUM).
    RowNumber {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Name of the appended column (usually "ROWNUM").
        name: String,
    },
    /// Cartesian product.
    CrossJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Oracle hierarchical query (`START WITH ... CONNECT BY PRIOR`).
    /// Appends a BIGINT `LEVEL` column.
    ConnectBy {
        /// Input rows (the whole relation).
        input: Box<PhysicalPlan>,
        /// Root predicate (START WITH).
        start_with: Expr,
        /// Parent-key column ordinal (the PRIOR side).
        parent: usize,
        /// Child-key column ordinal (rows join parents via
        /// `child_row[child] = parent_row[parent]`).
        child: usize,
    },
}

impl PhysicalPlan {
    /// The output schema of this plan node.
    pub fn schema(&self) -> Schema {
        match self {
            PhysicalPlan::ColumnScan { table, config } => {
                table.read().schema().project(&config.projection)
            }
            PhysicalPlan::Values { schema, .. } => schema.clone(),
            PhysicalPlan::Filter { input, .. } => input.schema(),
            PhysicalPlan::Project { schema, .. } => schema.clone(),
            PhysicalPlan::HashJoin {
                left,
                right,
                join_type,
                ..
            } => match join_type {
                JoinType::Inner | JoinType::Left => left.schema().join(&right.schema()),
                JoinType::Semi | JoinType::Anti => left.schema(),
            },
            PhysicalPlan::HashAggregate { schema, .. } => schema.clone(),
            PhysicalPlan::Sort { input, .. } => input.schema(),
            PhysicalPlan::UnionAll { inputs } => inputs
                .first()
                .map(|p| p.schema())
                .unwrap_or_else(|| Schema::new_unchecked(Vec::new())),
            PhysicalPlan::Distinct { input } => input.schema(),
            PhysicalPlan::RowNumber { input, name } => {
                let mut fields = input.schema().fields().to_vec();
                fields.push(dash_common::Field::not_null(
                    name.clone(),
                    dash_common::DataType::Int64,
                ));
                Schema::new_unchecked(fields)
            }
            PhysicalPlan::CrossJoin { left, right } => left.schema().join(&right.schema()),
            PhysicalPlan::ConnectBy { input, .. } => {
                let mut fields = input.schema().fields().to_vec();
                fields.push(dash_common::Field::not_null(
                    "LEVEL",
                    dash_common::DataType::Int64,
                ));
                Schema::new_unchecked(fields)
            }
        }
    }

    /// One-line-per-node EXPLAIN rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PhysicalPlan::ColumnScan { table, config } => {
                let t = table.read();
                out.push_str(&format!(
                    "{pad}ColumnScan {} preds={} proj={:?} skipping={}\n",
                    t.name(),
                    config.predicates.len(),
                    config.projection,
                    !config.disable_skipping,
                ));
            }
            PhysicalPlan::Values { rows, .. } => {
                out.push_str(&format!("{pad}Values rows={}\n", rows.len()));
            }
            PhysicalPlan::Filter { input, .. } => {
                out.push_str(&format!("{pad}Filter\n"));
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                out.push_str(&format!("{pad}Project cols={}\n", exprs.len()));
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                on,
                join_type,
                key_mode,
                parallelism,
            } => {
                out.push_str(&format!(
                    "{pad}HashJoin {join_type:?} on={on:?} keys={key_mode:?} par={parallelism}\n"
                ));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysicalPlan::HashAggregate { input, group, aggs, key_mode, .. } => {
                out.push_str(&format!(
                    "{pad}HashAggregate groups={} aggs={} keys={key_mode:?}\n",
                    group.len(),
                    aggs.len()
                ));
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::Sort {
                input,
                keys,
                limit,
                offset,
                parallelism,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}Sort keys={} limit={limit:?} offset={offset} par={parallelism}\n",
                    keys.len()
                ));
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::UnionAll { inputs } => {
                out.push_str(&format!("{pad}UnionAll inputs={}\n", inputs.len()));
                for i in inputs {
                    i.explain_into(out, depth + 1);
                }
            }
            PhysicalPlan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::RowNumber { input, name } => {
                out.push_str(&format!("{pad}RowNumber as {name}\n"));
                input.explain_into(out, depth + 1);
            }
            PhysicalPlan::CrossJoin { left, right } => {
                out.push_str(&format!("{pad}CrossJoin\n"));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysicalPlan::ConnectBy { input, parent, child, .. } => {
                out.push_str(&format!("{pad}ConnectBy parent={parent} child={child}\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// Execute a plan to completion.
///
/// Pipelineable shapes (scan → filter/project/probe chains with an
/// optional aggregate and sort at the root) run through the query-wide
/// morsel scheduler in [`crate::pipeline`]; everything else — and every
/// plan when `DASH_PIPELINE=off` — uses the materialized operator-at-a-time
/// executor below.
pub fn execute(plan: &PhysicalPlan, ctx: &EvalContext) -> Result<(Batch, ExecStats)> {
    if let Some(res) = crate::pipeline::try_execute(plan, ctx) {
        let (batch, mut stats) = res?;
        stats.rows_out = batch.len() as u64;
        return Ok((batch, stats));
    }
    let mut stats = ExecStats::default();
    let batch = exec_node(plan, ctx, &mut stats)?;
    stats.rows_out = batch.len() as u64;
    Ok((batch, stats))
}

/// Charge a materialized intermediate batch against the statement budget
/// for the duration of the operator consuming it, and record its size in
/// the peak-bytes counter. This is what makes the materialized executor's
/// O(intermediate result) peak visible — and comparable to the pipeline
/// scheduler's O(morsels in flight) peak — through both `ExecStats` and
/// [`dash_common::StatementContext::budget_high_water`].
fn charge_intermediate(
    batch: &Batch,
    ctx: &EvalContext,
    stats: &mut ExecStats,
) -> Result<dash_common::BudgetLease> {
    let mut lease = dash_common::BudgetLease::new(&ctx.statement);
    lease.charge(batch.approx_bytes()).inspect_err(|_| {
        stats.budget_rejections += 1;
    })?;
    stats.peak_inflight_bytes = stats.peak_inflight_bytes.max(lease.held());
    Ok(lease)
}

fn exec_node(plan: &PhysicalPlan, ctx: &EvalContext, stats: &mut ExecStats) -> Result<Batch> {
    match plan {
        PhysicalPlan::ColumnScan { table, config } => {
            let t = table.read();
            let (batch, s) = scan(&t, config, ctx)?;
            *stats += s;
            Ok(batch)
        }
        PhysicalPlan::Values { schema, rows } => Batch::from_rows(schema.clone(), rows),
        PhysicalPlan::Filter { input, predicate } => {
            let child = exec_node(input, ctx, stats)?;
            let mut keep = Vec::new();
            for row in 0..child.len() {
                if row % 4096 == 0 {
                    ctx.statement.check()?;
                }
                if predicate.eval_predicate(&child, row, ctx)? {
                    keep.push(row);
                }
            }
            Ok(child.take(&keep))
        }
        PhysicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let child = exec_node(input, ctx, stats)?;
            let mut rows: Vec<Row> = Vec::with_capacity(child.len());
            for row in 0..child.len() {
                if row % 4096 == 0 {
                    ctx.statement.check()?;
                }
                let mut vals = Vec::with_capacity(exprs.len());
                for e in exprs {
                    vals.push(e.eval(&child, row, ctx)?);
                }
                rows.push(Row::new(vals));
            }
            // Coerce expression outputs to the declared column types.
            let rows: Result<Vec<Row>> = rows.into_iter().map(|r| r.coerce(schema)).collect();
            Batch::from_rows(schema.clone(), &rows?)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            on,
            join_type,
            key_mode,
            parallelism,
        } => {
            let l = exec_node(left, ctx, stats)?;
            let r = exec_node(right, ctx, stats)?;
            hash_join(&l, &r, on, *join_type, *key_mode, *parallelism, &ctx.statement, stats)
        }
        PhysicalPlan::HashAggregate {
            input,
            group,
            aggs,
            schema,
            key_mode,
            parallelism,
        } => {
            // Fused star-join aggregation: aggregate while probing instead
            // of materializing the join output.
            if let PhysicalPlan::HashJoin {
                left,
                right,
                on,
                join_type: JoinType::Inner,
                key_mode: join_key_mode,
                parallelism: join_parallelism,
            } = &**input
            {
                let l = exec_node(left, ctx, stats)?;
                let r = exec_node(right, ctx, stats)?;
                if let Some(result) = crate::agg::try_fused_join_aggregate(
                    &l,
                    &r,
                    on,
                    group,
                    aggs,
                    schema,
                ) {
                    // The fused path keys on Datums while probing.
                    stats.datum_key_rows += (l.len() + r.len()) as u64;
                    return result;
                }
                let joined = hash_join(
                    &l,
                    &r,
                    on,
                    JoinType::Inner,
                    *join_key_mode,
                    *join_parallelism,
                    &ctx.statement,
                    stats,
                )?;
                let _lease = charge_intermediate(&joined, ctx, stats)?;
                return hash_aggregate(
                    &joined,
                    group,
                    aggs,
                    schema.clone(),
                    ctx,
                    *key_mode,
                    *parallelism,
                    stats,
                );
            }
            let child = exec_node(input, ctx, stats)?;
            let _lease = charge_intermediate(&child, ctx, stats)?;
            hash_aggregate(&child, group, aggs, schema.clone(), ctx, *key_mode, *parallelism, stats)
        }
        PhysicalPlan::Sort {
            input,
            keys,
            limit,
            offset,
            parallelism,
            run_rows,
        } => {
            let child = exec_node(input, ctx, stats)?;
            let opts = SortOptions {
                limit: *limit,
                offset: *offset,
                parallelism: *parallelism,
                run_rows: *run_rows,
            };
            sort_batch(&child, keys, &opts, ctx, stats)
        }
        PhysicalPlan::UnionAll { inputs } => {
            let schema = inputs
                .first()
                .ok_or_else(|| DashError::internal("UnionAll with no inputs"))?
                .schema();
            let batches: Result<Vec<Batch>> = inputs
                .iter()
                .map(|p| exec_node(p, ctx, stats))
                .collect();
            Batch::concat(schema, &batches?)
        }
        PhysicalPlan::Distinct { input } => {
            let child = exec_node(input, ctx, stats)?;
            let mut seen = dash_common::fxhash::FxHashSet::default();
            let mut keep = Vec::new();
            for i in 0..child.len() {
                if i % 4096 == 0 {
                    ctx.statement.check()?;
                }
                if seen.insert(child.row(i)) {
                    keep.push(i);
                }
            }
            Ok(child.take(&keep))
        }
        PhysicalPlan::RowNumber { input, .. } => {
            let child = exec_node(input, ctx, stats)?;
            let schema = plan.schema();
            let rows: Vec<Row> = (0..child.len())
                .map(|i| {
                    let mut r = child.row(i);
                    r.0.push(dash_common::Datum::Int(i as i64 + 1));
                    r
                })
                .collect();
            Batch::from_rows(schema, &rows)
        }
        PhysicalPlan::CrossJoin { left, right } => {
            let l = exec_node(left, ctx, stats)?;
            let r = exec_node(right, ctx, stats)?;
            crate::join::cross_join(&l, &r)
        }
        PhysicalPlan::ConnectBy {
            input,
            start_with,
            parent,
            child,
        } => {
            let rows = exec_node(input, ctx, stats)?;
            let schema = plan.schema();
            // Parent key -> child row indices.
            let mut by_parent: dash_common::fxhash::FxHashMap<dash_common::Datum, Vec<usize>> =
                dash_common::fxhash::FxHashMap::default();
            for i in 0..rows.len() {
                let k = rows.value(i, *child);
                if !k.is_null() {
                    by_parent.entry(k).or_default().push(i);
                }
            }
            let mut out: Vec<Row> = Vec::new();
            let mut frontier: Vec<usize> = Vec::new();
            let mut visited = vec![false; rows.len()];
            for (i, seen) in visited.iter_mut().enumerate() {
                if start_with.eval_predicate(&rows, i, ctx)? {
                    frontier.push(i);
                    *seen = true;
                }
            }
            let mut level = 1i64;
            while !frontier.is_empty() && level < 128 {
                ctx.statement.check()?;
                let mut next = Vec::new();
                for &i in &frontier {
                    let mut r = rows.row(i);
                    r.0.push(dash_common::Datum::Int(level));
                    out.push(r);
                    let pk = rows.value(i, *parent);
                    if let Some(children) = by_parent.get(&pk) {
                        for &c in children {
                            if !visited[c] {
                                visited[c] = true;
                                next.push(c);
                            }
                        }
                    }
                }
                frontier = next;
                level += 1;
            }
            Batch::from_rows(schema, &out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::expr::CmpOp;
    use crate::scan::ColumnPredicate;
    use dash_common::types::DataType;
    use dash_common::{row, Field};
    use dash_storage::table::STRIDE;

    fn make_table() -> SharedTable {
        let schema = Schema::new(vec![
            Field::not_null("id", DataType::Int64),
            Field::new("grp", DataType::Utf8),
            Field::new("amount", DataType::Float64),
        ])
        .unwrap();
        let mut t = ColumnTable::new("T", schema);
        let rows: Vec<Row> = (0..STRIDE * 2)
            .map(|i| row![i as i64, format!("g{}", i % 3), (i % 10) as f64])
            .collect();
        t.load_rows(rows).unwrap();
        Arc::new(RwLock::new(t))
    }

    fn dim_table() -> SharedTable {
        let schema = Schema::new(vec![
            Field::not_null("grp", DataType::Utf8),
            Field::new("label", DataType::Utf8),
        ])
        .unwrap();
        let mut t = ColumnTable::new("D", schema);
        t.load_rows(vec![
            row!["g0", "zero"],
            row!["g1", "one"],
            row!["g2", "two"],
        ])
        .unwrap();
        Arc::new(RwLock::new(t))
    }

    fn ctx() -> EvalContext {
        EvalContext::default()
    }

    #[test]
    fn scan_filter_project_pipeline() {
        let t = make_table();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::ColumnScan {
                    table: t.clone(),
                    config: ScanConfig::full(0, vec![0, 1, 2]),
                }),
                predicate: Expr::Cmp(
                    CmpOp::Lt,
                    Box::new(Expr::col(0)),
                    Box::new(Expr::lit(10i64)),
                ),
            }),
            exprs: vec![
                Expr::col(0),
                Expr::Arith(
                    crate::expr::ArithOp::Mul,
                    Box::new(Expr::col(2)),
                    Box::new(Expr::lit(2.0f64)),
                ),
            ],
            schema: Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("double_amount", DataType::Float64),
            ])
            .unwrap(),
        };
        let (batch, _) = execute(&plan, &ctx()).unwrap();
        assert_eq!(batch.len(), 10);
        assert_eq!(batch.row(3), row![3i64, 6.0f64]);
    }

    #[test]
    fn join_aggregate_sort_pipeline() {
        // SELECT d.label, count(*), sum(amount) FROM t JOIN d USING(grp)
        // GROUP BY label ORDER BY label
        let t = make_table();
        let d = dim_table();
        let join = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::ColumnScan {
                table: t,
                config: ScanConfig::full(0, vec![0, 1, 2]),
            }),
            right: Box::new(PhysicalPlan::ColumnScan {
                table: d,
                config: ScanConfig::full(1, vec![0, 1]),
            }),
            on: vec![(1, 0)],
            join_type: JoinType::Inner,
            key_mode: KeyMode::Encoded,
            parallelism: 2,
        };
        let agg = PhysicalPlan::HashAggregate {
            input: Box::new(join),
            group: vec![Expr::col(4)], // label
            aggs: vec![
                AggExpr {
                    func: AggFunc::CountStar,
                    args: vec![],
                    distinct: false,
                },
                AggExpr {
                    func: AggFunc::Sum,
                    args: vec![Expr::col(2)],
                    distinct: false,
                },
            ],
            schema: Schema::new(vec![
                Field::new("label", DataType::Utf8),
                Field::new("cnt", DataType::Int64),
                Field::new("total", DataType::Float64),
            ])
            .unwrap(),
            key_mode: KeyMode::Encoded,
            parallelism: 2,
        };
        let plan = PhysicalPlan::Sort {
            input: Box::new(agg),
            keys: vec![SortKey::asc(0)],
            limit: None,
            offset: 0,
            parallelism: 2,
            run_rows: crate::sort::DEFAULT_SORT_RUN_ROWS,
        };
        let (batch, stats) = execute(&plan, &ctx()).unwrap();
        assert_eq!(batch.len(), 3);
        let labels: Vec<String> = batch.to_rows().iter().map(|r| r.get(0).render()).collect();
        assert_eq!(labels, vec!["one", "two", "zero"]);
        let total: i64 = batch
            .to_rows()
            .iter()
            .map(|r| r.get(1).as_int().unwrap())
            .sum();
        assert_eq!(total, (STRIDE * 2) as i64);
        assert_eq!(stats.rows_out, 3);
    }

    #[test]
    fn pushed_predicates_vs_filter_agree() {
        let t = make_table();
        let pushed = PhysicalPlan::ColumnScan {
            table: t.clone(),
            config: ScanConfig {
                predicates: vec![ColumnPredicate::eq(1, "g1")],
                ..ScanConfig::full(0, vec![0, 1])
            },
        };
        let filtered = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::ColumnScan {
                table: t,
                config: ScanConfig::full(0, vec![0, 1]),
            }),
            predicate: Expr::Cmp(
                CmpOp::Eq,
                Box::new(Expr::col(1)),
                Box::new(Expr::lit("g1")),
            ),
        };
        let (a, _) = execute(&pushed, &ctx()).unwrap();
        let (b, _) = execute(&filtered, &ctx()).unwrap();
        assert_eq!(a.to_rows(), b.to_rows());
    }

    #[test]
    fn union_and_distinct() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
        let v1 = PhysicalPlan::Values {
            schema: schema.clone(),
            rows: vec![row![1i64], row![2i64]],
        };
        let v2 = PhysicalPlan::Values {
            schema: schema.clone(),
            rows: vec![row![2i64], row![3i64]],
        };
        let union = PhysicalPlan::UnionAll {
            inputs: vec![v1, v2],
        };
        let (all, _) = execute(&union, &ctx()).unwrap();
        assert_eq!(all.len(), 4);
        let distinct = PhysicalPlan::Distinct {
            input: Box::new(union),
        };
        let (ded, _) = execute(&distinct, &ctx()).unwrap();
        assert_eq!(ded.len(), 3);
    }

    #[test]
    fn explain_renders_tree() {
        let t = make_table();
        let plan = PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::ColumnScan {
                table: t,
                config: ScanConfig::full(0, vec![0]),
            }),
            keys: vec![SortKey::asc(0)],
            limit: Some(5),
            offset: 0,
            parallelism: 1,
            run_rows: crate::sort::DEFAULT_SORT_RUN_ROWS,
        };
        let e = plan.explain();
        assert!(e.contains("Sort"));
        assert!(e.contains("ColumnScan T"));
    }
}

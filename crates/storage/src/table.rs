//! Column-organized tables.
//!
//! A [`ColumnTable`] stores each column as a sequence of encoded blocks,
//! one per *stride* of [`STRIDE`] tuples. Incoming rows buffer in an open
//! (uncompressed) stride; when it fills, each column's slice is encoded and
//! the synopsis is extended. The first sealed stride triggers encoding
//! analysis; a bulk [`ColumnTable::load_rows`] analyzes the full data set
//! first (the LOAD path, which is how the paper's workloads arrive).
//!
//! Deletes mark a per-stride visibility bitmap; updates are delete+append —
//! the standard column-store write model, and the reason the engine "always
//! scans the data" rather than maintaining secondary indexes.

use crate::stats::TableStats;
use crate::synopsis::Synopsis;
use dash_common::ids::Tsn;
use dash_common::txn::{is_pending, pending, pending_owner, SnapshotView, TxnId, TS_NEVER};
use dash_common::{DashError, Datum, Result, Row, Schema};
use dash_encoding::bitmap::Bitmap;
use dash_encoding::column::{ColumnCompressor, ColumnEncoding, ColumnValues};
use dash_encoding::dict::FreqDict;
use dash_encoding::EncodedBlock;
use std::sync::Arc;

/// Tuples per stride — the paper collects skipping metadata "for
/// (approximately) 1K tuples".
pub const STRIDE: usize = 1024;

/// Per-column storage state.
#[derive(Debug, Clone)]
struct ColumnState {
    encoding: Option<ColumnEncoding>,
    blocks: Vec<EncodedBlock>,
    /// Shared handle on the string dictionary inside `encoding`, when the
    /// column is dictionary-coded. Cached so scans can attach it to output
    /// batches (the operate-on-compressed key path) without cloning the
    /// dictionary per query.
    str_dict: Option<Arc<FreqDict<Arc<str>>>>,
}

/// A column-organized table.
#[derive(Debug, Clone)]
pub struct ColumnTable {
    name: String,
    schema: Schema,
    columns: Vec<ColumnState>,
    /// Open (not yet encoded) stride, one buffer per column.
    open: Vec<ColumnValues>,
    open_rows: usize,
    /// Per sealed stride: deleted-rows bitmap (None = no deletes).
    deleted: Vec<Option<Bitmap>>,
    /// Deleted flags for the open stride.
    open_deleted: Vec<bool>,
    synopsis: Synopsis,
    compressor: ColumnCompressor,
    live_rows: u64,
    /// Per-row insert timestamp words, indexed by TSN. See
    /// [`dash_common::txn`] for the word encoding. `0` = pre-history
    /// (visible to all snapshots), which is what the non-transactional
    /// [`ColumnTable::insert`]/[`ColumnTable::load_rows`] paths stamp.
    insert_ts: Vec<u64>,
    /// Per-row delete timestamp words, indexed by TSN. [`TS_NEVER`] =
    /// live; `0` = deleted pre-history (non-transactional delete).
    delete_ts: Vec<u64>,
}

impl ColumnTable {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> ColumnTable {
        let ncols = schema.len();
        let open = schema
            .fields()
            .iter()
            .map(|f| ColumnValues::empty_for(f.data_type))
            .collect();
        ColumnTable {
            name: name.into(),
            schema: schema.clone(),
            columns: vec![
                ColumnState {
                    encoding: None,
                    blocks: Vec::new(),
                    str_dict: None,
                };
                ncols
            ],
            open,
            open_rows: 0,
            deleted: Vec::new(),
            open_deleted: Vec::new(),
            synopsis: Synopsis::new(ncols),
            compressor: ColumnCompressor::new(),
            live_rows: 0,
            insert_ts: Vec::new(),
            delete_ts: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows ever appended (including deleted); TSNs range `0..total`.
    pub fn total_rows(&self) -> u64 {
        (self.deleted.len() * STRIDE + self.open_rows) as u64
    }

    /// Rows visible to scans.
    pub fn live_rows(&self) -> u64 {
        self.live_rows
    }

    /// Number of sealed strides.
    pub fn sealed_strides(&self) -> usize {
        self.deleted.len()
    }

    /// The synopsis (data-skipping metadata).
    pub fn synopsis(&self) -> &Synopsis {
        &self.synopsis
    }

    /// The encoding of column `col`, if analysis has run.
    pub fn encoding(&self, col: usize) -> Option<&ColumnEncoding> {
        self.columns[col].encoding.as_ref()
    }

    /// Shared handle on the frequency dictionary backing string column
    /// `col`, if it is dictionary-coded. Joins and aggregates use this to
    /// key on packed dictionary codes instead of string bytes.
    pub fn str_dict(&self, col: usize) -> Option<&Arc<FreqDict<Arc<str>>>> {
        self.columns[col].str_dict.as_ref()
    }

    /// The encoded block of column `col` in sealed stride `stride`.
    pub fn block(&self, col: usize, stride: usize) -> &EncodedBlock {
        &self.columns[col].blocks[stride]
    }

    /// Delete bitmap for a sealed stride (bit set = deleted).
    pub fn stride_deleted(&self, stride: usize) -> Option<&Bitmap> {
        self.deleted[stride].as_ref()
    }

    /// The open stride's values for column `col`.
    pub fn open_values(&self, col: usize) -> &ColumnValues {
        &self.open[col]
    }

    /// Deleted flags for the open stride.
    pub fn open_deleted(&self) -> &[bool] {
        &self.open_deleted
    }

    /// Rows in the open stride.
    pub fn open_len(&self) -> usize {
        self.open_rows
    }

    /// The compressor (shared so exec can decode blocks consistently).
    pub fn compressor(&self) -> &ColumnCompressor {
        &self.compressor
    }

    /// Append one row (validated + coerced against the schema),
    /// non-transactionally: the row is immediately visible to every
    /// snapshot (pre-history timestamp `0`).
    pub fn insert(&mut self, row: Row) -> Result<Tsn> {
        self.append_row(row, 0, TS_NEVER, true)
    }

    /// Shared append path. `latest_visible` controls the latest-committed
    /// visibility bit (clear = visible to non-snapshot scans) and whether
    /// the row counts as live.
    fn append_row(&mut self, row: Row, ins: u64, del: u64, latest_visible: bool) -> Result<Tsn> {
        let row = row.coerce(&self.schema)?;
        let tsn = Tsn(self.total_rows());
        for (i, d) in row.values().iter().enumerate() {
            self.open[i].push_datum(self.schema.field(i).data_type, d)?;
        }
        self.open_deleted.push(!latest_visible);
        self.insert_ts.push(ins);
        self.delete_ts.push(del);
        self.open_rows += 1;
        if latest_visible {
            self.live_rows += 1;
        }
        if self.open_rows == STRIDE {
            self.seal_open_stride()?;
        }
        Ok(tsn)
    }

    /// Bulk load: analyze encodings over the *entire* data set first (best
    /// compression), then encode stride by stride. Replaces prior contents.
    pub fn load_rows(&mut self, rows: Vec<Row>) -> Result<u64> {
        // Stage all values per column.
        let mut staged: Vec<ColumnValues> = self
            .schema
            .fields()
            .iter()
            .map(|f| ColumnValues::empty_for(f.data_type))
            .collect();
        let mut count = 0u64;
        for row in rows {
            let row = row.coerce(&self.schema)?;
            for (i, d) in row.values().iter().enumerate() {
                staged[i].push_datum(self.schema.field(i).data_type, d)?;
            }
            count += 1;
        }
        self.reset();
        // Global analysis.
        for (i, values) in staged.iter().enumerate() {
            let enc = self.compressor.analyze(values);
            self.columns[i].str_dict = str_dict_of(&enc);
            self.columns[i].encoding = Some(enc);
        }
        // Encode full strides.
        let n = count as usize;
        let full = n / STRIDE;
        for s in 0..full {
            let range = s * STRIDE..(s + 1) * STRIDE;
            for (i, values) in staged.iter().enumerate() {
                let enc = self.columns[i]
                    .encoding
                    .as_ref()
                    .ok_or_else(|| DashError::internal("column missing encoding after analysis"))?;
                let block = self.compressor.encode_block(enc, values, range.clone());
                self.synopsis
                    .push_stride(i, self.compressor.block_min_max(enc, &block), block.null_count() > 0);
                self.columns[i].blocks.push(block);
            }
            self.deleted.push(None);
        }
        // Remainder stays in the open stride.
        for (i, values) in staged.into_iter().enumerate() {
            self.open[i] = tail_of(values, full * STRIDE);
        }
        self.open_rows = n - full * STRIDE;
        self.open_deleted = vec![false; self.open_rows];
        self.live_rows = count;
        // Bulk-loaded rows are pre-history: visible to every snapshot.
        self.insert_ts = vec![0; n];
        self.delete_ts = vec![TS_NEVER; n];
        Ok(count)
    }

    fn reset(&mut self) {
        for c in &mut self.columns {
            c.encoding = None;
            c.str_dict = None;
            c.blocks.clear();
        }
        for (i, f) in self.schema.fields().iter().enumerate() {
            self.open[i] = ColumnValues::empty_for(f.data_type);
        }
        self.open_rows = 0;
        self.open_deleted.clear();
        self.deleted.clear();
        self.synopsis = Synopsis::new(self.schema.len());
        self.live_rows = 0;
        self.insert_ts.clear();
        self.delete_ts.clear();
    }

    fn seal_open_stride(&mut self) -> Result<()> {
        debug_assert_eq!(self.open_rows, STRIDE);
        for i in 0..self.columns.len() {
            if self.columns[i].encoding.is_none() {
                // First seal: analyze on what we have.
                let enc = self.compressor.analyze(&self.open[i]);
                self.columns[i].str_dict = str_dict_of(&enc);
                self.columns[i].encoding = Some(enc);
            }
        }
        for i in 0..self.columns.len() {
            let enc = self.columns[i]
                .encoding
                .as_ref()
                .ok_or_else(|| DashError::internal("column missing encoding after analysis"))?;
            let block = self
                .compressor
                .encode_block(enc, &self.open[i], 0..STRIDE);
            self.synopsis.push_stride(
                i,
                self.compressor.block_min_max(enc, &block),
                block.null_count() > 0,
            );
            self.columns[i].blocks.push(block);
            self.open[i] = ColumnValues::empty_for(self.schema.field(i).data_type);
        }
        // Carry open-stride deletes into the sealed bitmap.
        let any_deleted = self.open_deleted.iter().any(|&d| d);
        self.deleted.push(if any_deleted {
            Some(Bitmap::from_bools(self.open_deleted.iter().copied()))
        } else {
            None
        });
        self.open_deleted.clear();
        self.open_rows = 0;
        Ok(())
    }

    /// Whether the row at `tsn` is deleted (or out of range).
    pub fn is_deleted(&self, tsn: Tsn) -> bool {
        let pos = tsn.0 as usize;
        let stride = pos / STRIDE;
        let off = pos % STRIDE;
        if stride < self.deleted.len() {
            self.deleted[stride].as_ref().is_some_and(|b| b.get(off))
        } else if stride == self.deleted.len() && off < self.open_rows {
            self.open_deleted[off]
        } else {
            true
        }
    }

    /// Mark a row deleted, non-transactionally (the delete is immediately
    /// visible to every snapshot). Returns `Ok(true)` if the row was live,
    /// `Ok(false)` if it was already deleted, and an error if `tsn` is out
    /// of range — the distinction lets WAL replay assert log/store
    /// consistency instead of silently skipping bad positions.
    pub fn delete(&mut self, tsn: Tsn) -> Result<bool> {
        let pos = self.checked_pos(tsn, "delete")?;
        if !self.mark_latest_deleted(pos) {
            return Ok(false);
        }
        self.delete_ts[pos] = 0;
        Ok(true)
    }

    /// Set the latest-committed deleted bit for `pos`. Returns false if it
    /// was already set. Caller guarantees `pos < total_rows`.
    fn mark_latest_deleted(&mut self, pos: usize) -> bool {
        let stride = pos / STRIDE;
        let off = pos % STRIDE;
        if stride < self.deleted.len() {
            let bm = self.deleted[stride].get_or_insert_with(|| Bitmap::zeros(STRIDE));
            if bm.get(off) {
                return false;
            }
            bm.set(off);
        } else {
            if self.open_deleted[off] {
                return false;
            }
            self.open_deleted[off] = true;
        }
        self.live_rows -= 1;
        true
    }

    /// Clear the latest-committed deleted bit for `pos` (a pending insert
    /// becoming committed). Caller guarantees the bit is currently set.
    fn clear_latest_deleted(&mut self, pos: usize) {
        let stride = pos / STRIDE;
        let off = pos % STRIDE;
        if stride < self.deleted.len() {
            if let Some(bm) = self.deleted[stride].as_mut() {
                bm.unset(off);
            }
        } else {
            self.open_deleted[off] = false;
        }
        self.live_rows += 1;
    }

    /// Fetch the (possibly deleted) row at `tsn`. Decodes the containing
    /// stride's blocks — a point access, used by UPDATE and result fetch.
    pub fn get_row(&self, tsn: Tsn) -> Result<Row> {
        let pos = tsn.0 as usize;
        let stride = pos / STRIDE;
        let off = pos % STRIDE;
        let mut out = Vec::with_capacity(self.schema.len());
        if stride < self.deleted.len() {
            for (i, f) in self.schema.fields().iter().enumerate() {
                let enc = self.columns[i]
                    .encoding
                    .as_ref()
                    .ok_or_else(|| DashError::internal("sealed stride without encoding"))?;
                let block = &self.columns[i].blocks[stride];
                let decoded = self.compressor.decode_block(enc, block);
                out.push(decoded.datum_at(f.data_type, off));
            }
        } else if stride == self.deleted.len() && off < self.open_rows {
            for (i, f) in self.schema.fields().iter().enumerate() {
                out.push(self.open[i].datum_at(f.data_type, off));
            }
        } else {
            return Err(DashError::exec(format!("TSN {tsn} out of range")));
        }
        Ok(Row::new(out))
    }

    /// Update a row: delete + re-append with `new_values` applied at the
    /// given column ordinals. Returns the new TSN.
    pub fn update(&mut self, tsn: Tsn, changes: &[(usize, Datum)]) -> Result<Tsn> {
        let mut row = self.get_row(tsn)?;
        if !self.delete(tsn)? {
            return Err(DashError::exec(format!("row {tsn} already deleted")));
        }
        for (col, val) in changes {
            row.0[*col] = val.clone();
        }
        self.insert(row)
    }

    // ------------------------------------------------------------------
    // MVCC: transactional writes, commit/abort stamping, WAL replay, and
    // snapshot visibility. The latest-committed bitmap (`deleted` /
    // `open_deleted`) stays authoritative for non-snapshot scans: pending
    // inserts keep their bit SET (invisible) until commit, pending deletes
    // leave it CLEAR until commit, and `live_rows` moves only at commit.
    // ------------------------------------------------------------------

    /// Append a row on behalf of an in-flight transaction. The row is
    /// invisible to everyone but `txn` until [`ColumnTable::commit_insert`].
    pub fn mvcc_insert(&mut self, row: Row, txn: TxnId) -> Result<Tsn> {
        self.append_row(row, pending(txn), TS_NEVER, false)
    }

    /// Mark a row deleted on behalf of an in-flight transaction, applying
    /// the first-writer-wins rule against the reader's snapshot.
    ///
    /// Returns `Ok(true)` if the pending delete was recorded, `Ok(false)`
    /// if the row is already deleted in `txn`'s own view (skip it), a
    /// [`DashError::WriteConflict`] if a concurrent transaction got there
    /// first, and an out-of-range error for an invalid TSN.
    pub fn mvcc_delete(&mut self, tsn: Tsn, txn: TxnId, snapshot_ts: u64) -> Result<bool> {
        let pos = self.checked_pos(tsn, "mvcc delete")?;
        let cur = self.delete_ts[pos];
        if cur == TS_NEVER {
            self.delete_ts[pos] = pending(txn);
            Ok(true)
        } else if is_pending(cur) {
            if pending_owner(cur) == txn {
                // Already deleted earlier in this same transaction.
                Ok(false)
            } else {
                Err(DashError::write_conflict(format!(
                    "row {tsn} in table \"{}\" is being written by concurrent {}",
                    self.name,
                    pending_owner(cur)
                )))
            }
        } else if cur > snapshot_ts {
            // A concurrent transaction committed a delete of this row
            // after our snapshot began: first writer wins.
            Err(DashError::write_conflict(format!(
                "row {tsn} in table \"{}\" was deleted by a concurrent commit (ts {cur})",
                self.name
            )))
        } else {
            // Deleted at or before our snapshot — nothing left to delete.
            Ok(false)
        }
    }

    /// Commit a pending insert at timestamp `ts`: the row becomes visible
    /// to snapshots at or after `ts` and to latest-committed scans.
    pub fn commit_insert(&mut self, tsn: Tsn, ts: u64) -> Result<()> {
        let pos = self.checked_pos(tsn, "commit insert")?;
        if !is_pending(self.insert_ts[pos]) {
            return Err(DashError::internal(format!(
                "commit_insert of {tsn}: insert word not pending"
            )));
        }
        self.insert_ts[pos] = ts;
        self.clear_latest_deleted(pos);
        Ok(())
    }

    /// Roll back a pending insert: the row position becomes a permanently
    /// invisible placeholder (positions are never reused — TSNs must stay
    /// stable for the WAL).
    pub fn abort_insert(&mut self, tsn: Tsn) -> Result<()> {
        let pos = self.checked_pos(tsn, "abort insert")?;
        self.insert_ts[pos] = TS_NEVER;
        Ok(())
    }

    /// Commit a pending delete at timestamp `ts`: the row disappears from
    /// snapshots at or after `ts` and from latest-committed scans.
    pub fn commit_delete(&mut self, tsn: Tsn, ts: u64) -> Result<()> {
        let pos = self.checked_pos(tsn, "commit delete")?;
        self.delete_ts[pos] = ts;
        if !self.mark_latest_deleted(pos) {
            return Err(DashError::internal(format!(
                "commit_delete of {tsn}: row already latest-deleted"
            )));
        }
        Ok(())
    }

    /// Roll back a pending delete: the row stays live.
    pub fn abort_delete(&mut self, tsn: Tsn) -> Result<()> {
        let pos = self.checked_pos(tsn, "abort delete")?;
        self.delete_ts[pos] = TS_NEVER;
        Ok(())
    }

    /// Recovery/checkpoint restore: append a row at exactly `tsn` with
    /// explicit timestamp words. Errors if `tsn` is not the next position —
    /// that means the log and the store disagree about history.
    pub fn restore_row(&mut self, tsn: Tsn, row: Row, ins: u64, del: u64) -> Result<()> {
        if tsn.0 != self.total_rows() {
            return Err(DashError::internal(format!(
                "log/store inconsistency: restore of {tsn} but table \"{}\" has {} rows",
                self.name,
                self.total_rows()
            )));
        }
        // No transaction is in flight during recovery, so a word is either
        // a committed timestamp or TS_NEVER.
        let visible = ins != TS_NEVER && del == TS_NEVER;
        self.append_row(row, ins, del, visible)?;
        Ok(())
    }

    /// Recovery: re-apply a committed delete at timestamp `ts`. Errors on
    /// out-of-range TSNs and on rows already deleted — both indicate the
    /// log and the store disagree.
    pub fn replay_delete(&mut self, tsn: Tsn, ts: u64) -> Result<()> {
        let pos = self.checked_pos(tsn, "replay delete")?;
        if !self.mark_latest_deleted(pos) {
            return Err(DashError::internal(format!(
                "log/store inconsistency: replayed delete of already-deleted {tsn}"
            )));
        }
        self.delete_ts[pos] = ts;
        Ok(())
    }

    /// Is the row at `tsn` visible to `snap`? Out-of-range rows are not.
    pub fn row_visible(&self, tsn: Tsn, snap: &SnapshotView) -> bool {
        let pos = tsn.0 as usize;
        pos < self.insert_ts.len() && snap.visible(self.insert_ts[pos], self.delete_ts[pos])
    }

    /// Rows of sealed stride `stride` that `snap` must NOT see, as a
    /// bitmap (bit set = invisible), or `None` when the whole stride is
    /// visible. The snapshot-scan analogue of [`ColumnTable::stride_deleted`].
    pub fn stride_invisible(&self, stride: usize, snap: &SnapshotView) -> Option<Bitmap> {
        let base = stride * STRIDE;
        let mut bm: Option<Bitmap> = None;
        for off in 0..STRIDE {
            let pos = base + off;
            if !snap.visible(self.insert_ts[pos], self.delete_ts[pos]) {
                bm.get_or_insert_with(|| Bitmap::zeros(STRIDE)).set(off);
            }
        }
        bm
    }

    /// Per-row insert timestamp words (indexed by TSN) — checkpoint input.
    pub fn insert_ts_words(&self) -> &[u64] {
        &self.insert_ts
    }

    /// Per-row delete timestamp words (indexed by TSN) — checkpoint input.
    pub fn delete_ts_words(&self) -> &[u64] {
        &self.delete_ts
    }

    /// Does any row carry a pending (uncommitted) timestamp word? True
    /// while transactions are in flight; checkpoints refuse to run then.
    pub fn has_pending(&self) -> bool {
        self.insert_ts.iter().chain(self.delete_ts.iter()).any(|&w| is_pending(w))
    }

    /// Bounds-check a TSN, returning its row position.
    fn checked_pos(&self, tsn: Tsn, what: &str) -> Result<usize> {
        let pos = tsn.0 as usize;
        if (pos as u64) < self.total_rows() {
            Ok(pos)
        } else {
            Err(DashError::exec(format!(
                "{what} of {tsn} out of range (table \"{}\" has {} rows)",
                self.name,
                self.total_rows()
            )))
        }
    }

    /// Decode one column of one sealed stride.
    pub fn decode_stride(&self, col: usize, stride: usize) -> Result<ColumnValues> {
        let enc = self.columns[col]
            .encoding
            .as_ref()
            .ok_or_else(|| DashError::internal("sealed stride without encoding"))?;
        Ok(self
            .compressor
            .decode_block(enc, &self.columns[col].blocks[stride]))
    }

    /// Compressed bytes across all sealed blocks (user data only).
    pub fn compressed_bytes(&self) -> usize {
        self.columns
            .iter()
            .flat_map(|c| c.blocks.iter())
            .map(|b| b.size_bytes())
            .sum()
    }

    /// Basic statistics for the planner.
    pub fn stats(&self) -> TableStats {
        let mut ndv = Vec::with_capacity(self.schema.len());
        for c in &self.columns {
            ndv.push(match &c.encoding {
                Some(ColumnEncoding::IntDict { dict, .. }) => Some(dict.len() as u64),
                Some(ColumnEncoding::StrDict { dict, .. }) => Some(dict.len() as u64),
                _ => None,
            });
        }
        TableStats {
            live_rows: self.live_rows,
            total_rows: self.total_rows(),
            sealed_strides: self.sealed_strides(),
            compressed_bytes: self.compressed_bytes(),
            synopsis_bytes: self.synopsis.size_bytes(),
            column_ndv: ndv,
        }
    }
}

/// Shared dictionary handle for a freshly analyzed encoding, if any.
fn str_dict_of(enc: &ColumnEncoding) -> Option<Arc<FreqDict<Arc<str>>>> {
    match enc {
        ColumnEncoding::StrDict { dict, .. } => Some(Arc::new(dict.clone())),
        _ => None,
    }
}

fn tail_of(values: ColumnValues, from: usize) -> ColumnValues {
    match values {
        ColumnValues::Int(v) => ColumnValues::Int(v[from..].to_vec()),
        ColumnValues::Float(v) => ColumnValues::Float(v[from..].to_vec()),
        ColumnValues::Str(v) => ColumnValues::Str(v[from..].to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_common::types::DataType;
    use dash_common::{row, Field};

    fn test_table() -> ColumnTable {
        let schema = Schema::new(vec![
            Field::not_null("id", DataType::Int64),
            Field::new("region", DataType::Utf8),
            Field::new("amount", DataType::Float64),
        ])
        .unwrap();
        ColumnTable::new("T", schema)
    }

    fn fill(t: &mut ColumnTable, n: usize) {
        for i in 0..n {
            t.insert(row![
                i as i64,
                format!("region-{}", i % 4),
                i as f64 * 1.5
            ])
            .unwrap();
        }
    }

    #[test]
    fn insert_seals_strides() {
        let mut t = test_table();
        fill(&mut t, STRIDE * 2 + 100);
        assert_eq!(t.sealed_strides(), 2);
        assert_eq!(t.open_len(), 100);
        assert_eq!(t.live_rows(), (STRIDE * 2 + 100) as u64);
    }

    #[test]
    fn get_row_roundtrip_sealed_and_open() {
        let mut t = test_table();
        fill(&mut t, STRIDE + 10);
        let sealed = t.get_row(Tsn(5)).unwrap();
        assert_eq!(sealed.get(0), &Datum::Int(5));
        assert_eq!(sealed.get(1).as_str(), Some("region-1"));
        let open = t.get_row(Tsn(STRIDE as u64 + 3)).unwrap();
        assert_eq!(open.get(0), &Datum::Int(STRIDE as i64 + 3));
        assert!(t.get_row(Tsn(99_999)).is_err());
    }

    #[test]
    fn delete_and_visibility() {
        let mut t = test_table();
        fill(&mut t, STRIDE + 10);
        assert!(t.delete(Tsn(3)).unwrap());
        assert!(!t.delete(Tsn(3)).unwrap(), "double delete is a no-op");
        assert!(t.is_deleted(Tsn(3)));
        assert!(
            t.delete(Tsn(STRIDE as u64 + 1)).unwrap(),
            "open-stride delete"
        );
        assert_eq!(t.live_rows(), (STRIDE + 10 - 2) as u64);
        // Out-of-range TSN is an error, not a silent false.
        assert!(t.delete(Tsn(999_999)).is_err());
    }

    #[test]
    fn open_stride_deletes_survive_sealing() {
        let mut t = test_table();
        fill(&mut t, 10);
        t.delete(Tsn(4)).unwrap();
        fill(&mut t, STRIDE - 10); // seals the stride
        assert_eq!(t.sealed_strides(), 1);
        assert!(t.is_deleted(Tsn(4)));
        assert!(t.stride_deleted(0).unwrap().get(4));
    }

    #[test]
    fn update_is_delete_plus_append() {
        let mut t = test_table();
        fill(&mut t, 5);
        let new_tsn = t.update(Tsn(2), &[(2, Datum::Float(99.0))]).unwrap();
        assert!(t.is_deleted(Tsn(2)));
        let row = t.get_row(new_tsn).unwrap();
        assert_eq!(row.get(0), &Datum::Int(2), "unchanged column kept");
        assert_eq!(row.get(2), &Datum::Float(99.0));
        assert_eq!(t.live_rows(), 5);
    }

    #[test]
    fn load_rows_analyzes_globally() {
        let mut t = test_table();
        let rows: Vec<Row> = (0..3000)
            .map(|i| row![i as i64, format!("region-{}", i % 4), 0.5f64])
            .collect();
        t.load_rows(rows).unwrap();
        assert_eq!(t.live_rows(), 3000);
        assert_eq!(t.sealed_strides(), 2);
        assert_eq!(t.open_len(), 3000 - 2 * STRIDE);
        // Low-cardinality string column gets a dictionary.
        assert_eq!(t.encoding(1).unwrap().name(), "prefix+frequency-dict");
        // Verify a row decodes correctly.
        let r = t.get_row(Tsn(2048)).unwrap();
        assert_eq!(r.get(0), &Datum::Int(2048));
    }

    #[test]
    fn synopsis_tracks_strides() {
        let mut t = test_table();
        fill(&mut t, STRIDE * 3);
        assert_eq!(t.synopsis().stride_count(), 3);
        // id column: stride 0 covers 0..1023.
        let (lo, hi) = t.synopsis().stride_range(0, 0).unwrap();
        use dash_encoding::order::ordered_to_i64;
        assert_eq!(ordered_to_i64(lo), 0);
        assert_eq!(ordered_to_i64(hi), (STRIDE - 1) as i64);
    }

    #[test]
    fn compression_beats_raw() {
        let mut t = test_table();
        let rows: Vec<Row> = (0..STRIDE * 4)
            .map(|i| row![i as i64, format!("region-{}", i % 4), (i % 7) as f64])
            .collect();
        t.load_rows(rows).unwrap();
        let raw = STRIDE * 4 * (8 + 10 + 8);
        assert!(
            t.compressed_bytes() * 2 < raw,
            "compressed {} raw {raw}",
            t.compressed_bytes()
        );
    }

    #[test]
    fn mvcc_insert_commit_abort() {
        let mut t = test_table();
        fill(&mut t, 5);
        let txn = TxnId(1);
        let tsn = t.mvcc_insert(row![100i64, "region-x", 1.0f64], txn).unwrap();
        // Pending: invisible to latest scans and to other snapshots, but
        // visible to the writing transaction.
        assert!(t.is_deleted(tsn));
        assert_eq!(t.live_rows(), 5);
        assert!(!t.row_visible(tsn, &SnapshotView::at(u64::MAX >> 1)));
        let mine = SnapshotView { ts: 0, txn: Some(txn) };
        assert!(t.row_visible(tsn, &mine));
        // Commit at ts 7.
        t.commit_insert(tsn, 7).unwrap();
        assert!(!t.is_deleted(tsn));
        assert_eq!(t.live_rows(), 6);
        assert!(t.row_visible(tsn, &SnapshotView::at(7)));
        assert!(!t.row_visible(tsn, &SnapshotView::at(6)));
        // Abort path leaves a permanent placeholder.
        let tsn2 = t.mvcc_insert(row![101i64, "region-y", 2.0f64], TxnId(2)).unwrap();
        t.abort_insert(tsn2).unwrap();
        assert!(t.is_deleted(tsn2));
        assert_eq!(t.live_rows(), 6);
        assert!(!t.row_visible(tsn2, &SnapshotView::at(u64::MAX >> 1)));
    }

    #[test]
    fn mvcc_delete_first_writer_wins() {
        let mut t = test_table();
        fill(&mut t, 5);
        let (a, b) = (TxnId(1), TxnId(2));
        assert!(t.mvcc_delete(Tsn(2), a, 0).unwrap());
        // Second deleter conflicts while the first is pending...
        let e = t.mvcc_delete(Tsn(2), b, 0).unwrap_err();
        assert_eq!(e.class(), "40001");
        // ...and still conflicts after the first commits (snapshot 0 < 5).
        t.commit_delete(Tsn(2), 5).unwrap();
        assert_eq!(t.live_rows(), 4);
        let e = t.mvcc_delete(Tsn(2), b, 0).unwrap_err();
        assert_eq!(e.class(), "40001");
        // A later snapshot that already saw the delete just skips the row.
        assert!(!t.mvcc_delete(Tsn(2), b, 5).unwrap());
        // Abort releases the pending mark.
        assert!(t.mvcc_delete(Tsn(3), a, 5).unwrap());
        t.abort_delete(Tsn(3)).unwrap();
        assert!(t.mvcc_delete(Tsn(3), b, 5).unwrap());
        assert_eq!(t.live_rows(), 4, "pending delete does not change live count");
    }

    #[test]
    fn restore_and_replay_enforce_consistency() {
        let mut t = test_table();
        t.restore_row(Tsn(0), row![1i64, "a", 1.0f64], 3, TS_NEVER).unwrap();
        t.restore_row(Tsn(1), row![2i64, "b", 2.0f64], TS_NEVER, TS_NEVER)
            .unwrap();
        assert_eq!(t.live_rows(), 1, "aborted placeholder is not live");
        // Gap in positions is a log/store inconsistency.
        assert!(t.restore_row(Tsn(5), row![9i64, "z", 0.0f64], 4, TS_NEVER).is_err());
        t.replay_delete(Tsn(0), 6).unwrap();
        assert_eq!(t.live_rows(), 0);
        assert!(t.replay_delete(Tsn(0), 7).is_err(), "double replay detected");
        assert!(t.replay_delete(Tsn(99), 7).is_err(), "out of range detected");
        // Visibility honors restored words: visible in [3, 6).
        assert!(t.row_visible(Tsn(0), &SnapshotView::at(3)));
        assert!(!t.row_visible(Tsn(0), &SnapshotView::at(6)));
        assert!(!t.has_pending());
    }

    #[test]
    fn stride_invisible_masks() {
        let mut t = test_table();
        fill(&mut t, STRIDE);
        let txn = TxnId(9);
        assert!(t.mvcc_delete(Tsn(10), txn, 0).unwrap());
        t.commit_delete(Tsn(10), 4).unwrap();
        // Before the delete's commit ts: everything visible.
        assert!(t.stride_invisible(0, &SnapshotView::at(3)).is_none());
        // At/after: exactly row 10 is masked.
        let bm = t.stride_invisible(0, &SnapshotView::at(4)).unwrap();
        assert!(bm.get(10));
        assert_eq!(bm.count_ones(), 1);
    }

    #[test]
    fn stats_report() {
        let mut t = test_table();
        fill(&mut t, STRIDE * 2);
        let s = t.stats();
        assert_eq!(s.live_rows, (STRIDE * 2) as u64);
        assert_eq!(s.sealed_strides, 2);
        assert!(s.synopsis_bytes > 0);
        assert_eq!(s.column_ndv[1], Some(4));
    }
}

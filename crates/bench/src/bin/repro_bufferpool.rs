//! Reproduces the buffer-pool claim (§II.B.5):
//!
//! > "A novel probabilistic algorithm for buffer pool replacement
//! > determines which pages to victimize ... found to produce cache
//! > efficiency rates for Big Data style scanning within a few percentiles
//! > of optimal."
//!
//! Three workload shapes, four online policies, one clairvoyant oracle.

use dash_bench::{report, section};
use dash_storage::bufferpool::{optimal_hit_ratio, simulate, PageKey, Policy};

fn scan_trace(pages: u32, cycles: usize) -> Vec<PageKey> {
    let mut t = Vec::new();
    for _ in 0..cycles {
        for p in 0..pages {
            t.push(PageKey::new(0, 0, p));
        }
    }
    t
}

/// Hot columns + cyclic cold scans — the "hot pages of hot columns" case.
fn mixed_trace(hot: u32, cold: u32, rounds: usize) -> Vec<PageKey> {
    let mut t = Vec::new();
    for round in 0..rounds {
        for h in 0..hot {
            t.push(PageKey::new(0, 0, h));
        }
        for c in 0..cold / 10 {
            t.push(PageKey::new(0, 1, (round as u32 * (cold / 10) + c) % cold));
        }
    }
    t
}

/// Two tables scanned alternately (multi-query interleaving).
fn interleaved_trace(pages_a: u32, pages_b: u32, cycles: usize) -> Vec<PageKey> {
    let mut t = Vec::new();
    for _ in 0..cycles {
        for p in 0..pages_a {
            t.push(PageKey::new(1, 0, p));
        }
        for p in 0..pages_b {
            t.push(PageKey::new(2, 0, p));
        }
    }
    t
}

fn run_case(name: &str, trace: &[PageKey], capacity: usize) {
    section(&format!("{name} (capacity {capacity} pages, {} accesses)", trace.len()));
    let opt = optimal_hit_ratio(trace, capacity);
    report("Belady optimal", format!("{:.1}%", opt * 100.0));
    let mut rw_ratio = 0.0;
    for (label, policy) in [
        ("LRU", Policy::Lru),
        ("MRU", Policy::Mru),
        ("random", Policy::Random),
        ("randomized-weight (dashDB)", Policy::RandomizedWeight),
    ] {
        let stats = simulate(trace, capacity, policy);
        if policy == Policy::RandomizedWeight {
            rw_ratio = stats.hit_ratio();
        }
        report(
            label,
            format!(
                "{:.1}% hits ({} evictions)",
                stats.hit_ratio() * 100.0,
                stats.evictions
            ),
        );
    }
    let gap = (opt - rw_ratio) * 100.0;
    report(
        "gap to optimal (paper: a few percentiles)",
        format!("{gap:.1} points"),
    );
    report("shape check (gap <= 8 points)", if gap <= 8.0 { "PASS" } else { "FAIL" });
}

fn main() {
    println!("Buffer pool reproduction — dashdb-local-rs (US patent 9,037,803 model)");
    // The paper's headline case: repeated Big Data scans larger than RAM.
    run_case("cyclic scan, data 2x cache", &scan_trace(2000, 12), 1000);
    run_case("cyclic scan, data 4x cache", &scan_trace(4000, 8), 1000);
    // Hot columns must be retained against cold churn.
    run_case(
        "hot columns + cold churn",
        &mixed_trace(300, 3000, 150),
        500,
    );
    // Interleaved table scans.
    run_case(
        "interleaved scans of two tables",
        &interleaved_trace(1500, 900, 10),
        1200,
    );
}

//! Statement monitoring counters.
//!
//! The Docker image ships a web console with database monitoring history;
//! this is the counter store behind such a console: per-statement-kind
//! counts and cumulative wall time, cheap enough to update on every
//! statement.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// One statement-kind's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KindStats {
    /// Statements executed.
    pub count: u64,
    /// Statements that failed.
    pub errors: u64,
    /// Cumulative execution wall time.
    pub total_time: Duration,
    /// Slowest single statement.
    pub max_time: Duration,
}

/// Recovery-path counters: what the resilient scatter-gather did to keep
/// a statement alive (retries, failovers) or to kill it cleanly
/// (deadline). The console view behind the Figure 9 repro.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Per-shard attempts retried after a transient fault.
    pub shard_retries: u64,
    /// Nodes declared dead and failed over mid-statement.
    pub failovers: u64,
    /// Shard attempts that stalled (injected or real stragglers).
    pub stragglers: u64,
    /// Statements cancelled because the per-statement deadline passed.
    pub deadline_kills: u64,
    /// Committed assignment-epoch bumps (every rebalance swap — failover,
    /// elastic grow/shrink, forced chaos rebalances). Metadata churn, not
    /// necessarily statement-visible.
    pub epoch_bumps: u64,
    /// Pending shards a statement re-drove under a newer assignment epoch
    /// than the one it had pinned (post-failover re-pin).
    pub stale_epoch_retries: u64,
    /// Scatter rounds whose work list mixed shards resolved from two
    /// different assignment epochs. Epoch pinning makes this structurally
    /// impossible; the counter is a regression tripwire and must stay 0.
    pub torn_epoch_rounds: u64,
    /// Statements that observed cancellation (deadline or external kill)
    /// and terminated with a classified `Cancelled` error.
    pub statements_cancelled: u64,
    /// Memory-budget reservations refused across all statements.
    pub budget_rejections: u64,
    /// Worst preemption latency any statement observed, in morsels
    /// completed after its token flipped. The claim-check contract bounds
    /// this at 1 per worker.
    pub cancel_latency_max_morsels: u64,
}

impl RecoveryStats {
    /// True when no recovery action was ever taken.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryStats::default()
    }
}

/// Transaction and durability counters: the console view behind the WAL,
/// crash-recovery, and snapshot-isolation subsystem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Transactions committed (explicit COMMIT and autocommit statements).
    pub txn_commits: u64,
    /// Transactions rolled back (explicit ROLLBACK, errors, session close).
    pub txn_aborts: u64,
    /// First-writer-wins conflicts raised (SQLSTATE 40001). A conflicted
    /// transaction also counts as an abort once it rolls back.
    pub txn_conflicts: u64,
    /// WAL records applied during the last crash recovery.
    pub wal_records_replayed: u64,
    /// Bytes of torn tail truncated from the WAL during the last recovery.
    pub recovery_truncated_bytes: u64,
    /// Commit batches flushed by a group-commit leader. One batch may
    /// carry many commits; `txn_commits / group_commit_batches` is the
    /// average group size.
    pub group_commit_batches: u64,
    /// Physical WAL syncs spent on the commit path. Group commit's whole
    /// point is `wal_fsyncs < txn_commits` under concurrency.
    pub wal_fsyncs: u64,
    /// Snapshot checkpoints completed.
    pub checkpoints: u64,
    /// WAL generation files reclaimed after a durable checkpoint.
    pub wal_segments_recycled: u64,
}

impl TxnStats {
    /// True when no transaction activity was recorded.
    pub fn is_clean(&self) -> bool {
        *self == TxnStats::default()
    }
}

/// Operate-on-compressed counters: how many join/group key evaluations ran
/// directly on encoded code words versus falling back to `Datum`
/// comparisons, and how much re-encoding the code-domain path paid for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyPathStats {
    /// Input rows whose join/group keys were hashed and compared as
    /// fixed-width encoded words (no `Datum` in the loop).
    pub encoded_key_rows: u64,
    /// Input rows that fell back to materialized `Datum` keys (cross-type
    /// keys, computed expressions, mixed encodings).
    pub datum_key_rows: u64,
    /// Build/partial-side rows translated into the other side's code
    /// domain instead of decoding the larger side.
    pub keys_reencoded_rows: u64,
}

impl KeyPathStats {
    /// True when no keyed operator has run.
    pub fn is_clean(&self) -> bool {
        *self == KeyPathStats::default()
    }
}

/// Pipeline-scheduler counters: how many query-wide pipelines ran, how
/// many breakers (builds, agg merges, sort seals) split them, and the
/// in-flight peaks the morsel window actually reached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Pipelines driven to completion by the morsel scheduler.
    pub pipelines_run: u64,
    /// Pipeline breakers encountered (hash-join builds, aggregate merges,
    /// sort seals).
    pub pipeline_breakers: u64,
    /// Highest number of morsels simultaneously in flight in any drive.
    pub peak_inflight_morsels: u64,
    /// Highest bytes simultaneously resident (in-flight morsels plus
    /// frozen build tables) in any drive.
    pub peak_inflight_bytes: u64,
}

impl PipelineStats {
    /// True when no pipeline has run.
    pub fn is_clean(&self) -> bool {
        *self == PipelineStats::default()
    }
}

/// The monitoring store.
#[derive(Clone, Default)]
pub struct Monitor {
    inner: Arc<Mutex<BTreeMap<&'static str, KindStats>>>,
    recovery: Arc<Mutex<RecoveryStats>>,
    txn: Arc<Mutex<TxnStats>>,
    key_path: Arc<Mutex<KeyPathStats>>,
    pipeline: Arc<Mutex<PipelineStats>>,
    /// Assignment epochs still pinned by in-flight statements:
    /// epoch -> number of statements holding it. The lowest key is the GC
    /// watermark — no snapshot at or above it may be reclaimed.
    epoch_pins: Arc<Mutex<BTreeMap<u64, usize>>>,
}

impl Monitor {
    /// Fresh store.
    pub fn new() -> Monitor {
        Monitor::default()
    }

    /// Record one executed statement.
    pub fn record(&self, kind: &'static str, elapsed: Duration, ok: bool) {
        let mut m = self.inner.lock();
        let e = m.entry(kind).or_default();
        e.count += 1;
        if !ok {
            e.errors += 1;
        }
        e.total_time += elapsed;
        e.max_time = e.max_time.max(elapsed);
    }

    /// Counters for one statement kind.
    pub fn stats(&self, kind: &str) -> KindStats {
        self.inner.lock().get(kind).copied().unwrap_or_default()
    }

    /// Snapshot of every kind, sorted by name.
    pub fn snapshot(&self) -> Vec<(&'static str, KindStats)> {
        self.inner.lock().iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Total statements across kinds.
    pub fn total_statements(&self) -> u64 {
        self.inner.lock().values().map(|v| v.count).sum()
    }

    /// Record a retried shard attempt.
    pub fn record_shard_retry(&self) {
        self.recovery.lock().shard_retries += 1;
    }

    /// Record a mid-statement node failover.
    pub fn record_failover(&self) {
        self.recovery.lock().failovers += 1;
    }

    /// Record a stalled (straggling) shard attempt.
    pub fn record_straggler(&self) {
        self.recovery.lock().stragglers += 1;
    }

    /// Record a statement killed by the per-statement deadline.
    pub fn record_deadline_kill(&self) {
        self.recovery.lock().deadline_kills += 1;
    }

    /// Record one committed assignment-epoch bump (a rebalance swap).
    pub fn record_epoch_bump(&self) {
        self.recovery.lock().epoch_bumps += 1;
    }

    /// Record `n` pending shards re-pinned to a newer assignment epoch.
    pub fn record_stale_epoch_retries(&self, n: u64) {
        self.recovery.lock().stale_epoch_retries += n;
    }

    /// Record a scatter round that mixed two assignment epochs (a bug).
    pub fn record_torn_epoch_round(&self) {
        self.recovery.lock().torn_epoch_rounds += 1;
    }

    /// Record a statement that terminated on its cancellation token
    /// (deadline fired or it was killed externally).
    pub fn record_statement_cancelled(&self) {
        self.recovery.lock().statements_cancelled += 1;
    }

    /// Record `n` refused memory-budget reservations.
    pub fn record_budget_rejections(&self, n: u64) {
        self.recovery.lock().budget_rejections += n;
    }

    /// Fold one statement's worst observed preemption latency (in morsels
    /// completed after its token flipped) into the store-wide maximum.
    pub fn note_cancel_latency(&self, morsels: u64) {
        let mut r = self.recovery.lock();
        r.cancel_latency_max_morsels = r.cancel_latency_max_morsels.max(morsels);
    }

    /// A statement pinned assignment epoch `epoch` (scatter snapshot taken).
    pub fn record_epoch_pin(&self, epoch: u64) {
        *self.epoch_pins.lock().entry(epoch).or_insert(0) += 1;
    }

    /// A statement released its pin on `epoch` (finished, failed, or
    /// re-pinned to a newer epoch after a failover).
    pub fn record_epoch_unpin(&self, epoch: u64) {
        let mut pins = self.epoch_pins.lock();
        if let Some(n) = pins.get_mut(&epoch) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&epoch);
            }
        }
    }

    /// Epochs currently pinned by in-flight statements, ascending, with
    /// the number of statements holding each.
    pub fn pinned_epochs(&self) -> Vec<(u64, usize)> {
        self.epoch_pins.lock().iter().map(|(e, n)| (*e, *n)).collect()
    }

    /// The epoch-history GC watermark: the lowest epoch still pinned by an
    /// in-flight statement. Snapshots older than this are reclaimable;
    /// `None` means nothing is pinned (everything old is reclaimable).
    pub fn epoch_gc_watermark(&self) -> Option<u64> {
        self.epoch_pins.lock().keys().next().copied()
    }

    /// Snapshot of the recovery counters.
    pub fn recovery(&self) -> RecoveryStats {
        *self.recovery.lock()
    }

    /// Record a committed transaction.
    pub fn record_txn_commit(&self) {
        self.txn.lock().txn_commits += 1;
    }

    /// Record a rolled-back transaction.
    pub fn record_txn_abort(&self) {
        self.txn.lock().txn_aborts += 1;
    }

    /// Record a first-writer-wins conflict (SQLSTATE 40001).
    pub fn record_txn_conflict(&self) {
        self.txn.lock().txn_conflicts += 1;
    }

    /// Record the outcome of a crash recovery: WAL records applied and
    /// torn-tail bytes truncated.
    pub fn record_recovery(&self, records_replayed: u64, truncated_bytes: u64) {
        let mut t = self.txn.lock();
        t.wal_records_replayed += records_replayed;
        t.recovery_truncated_bytes += truncated_bytes;
    }

    /// Record one group-commit batch: the leader flushed `fsyncs`
    /// physical syncs (0 or 1 per batch, policy-dependent) covering the
    /// whole group.
    pub fn record_group_commit(&self, fsyncs: u64) {
        let mut t = self.txn.lock();
        t.group_commit_batches += 1;
        t.wal_fsyncs += fsyncs;
    }

    /// Record a completed snapshot checkpoint and how many old WAL
    /// generation files it recycled.
    pub fn record_checkpoint(&self, segments_recycled: u64) {
        let mut t = self.txn.lock();
        t.checkpoints += 1;
        t.wal_segments_recycled += segments_recycled;
    }

    /// Snapshot of the transaction/durability counters.
    pub fn txn(&self) -> TxnStats {
        *self.txn.lock()
    }

    /// Fold one statement's key-path counters into the store: rows keyed
    /// on encoded words, rows keyed on `Datum`s, and rows re-encoded into
    /// the other side's code domain.
    pub fn record_key_path(&self, encoded: u64, datum: u64, reencoded: u64) {
        let mut k = self.key_path.lock();
        k.encoded_key_rows += encoded;
        k.datum_key_rows += datum;
        k.keys_reencoded_rows += reencoded;
    }

    /// Snapshot of the operate-on-compressed key-path counters.
    pub fn key_path(&self) -> KeyPathStats {
        *self.key_path.lock()
    }

    /// Fold one statement's pipeline-scheduler counters into the store:
    /// pipelines run, breakers crossed, and the in-flight peaks (morsels
    /// and bytes) its drives reached.
    pub fn record_pipeline(&self, run: u64, breakers: u64, peak_morsels: u64, peak_bytes: u64) {
        let mut p = self.pipeline.lock();
        p.pipelines_run += run;
        p.pipeline_breakers += breakers;
        p.peak_inflight_morsels = p.peak_inflight_morsels.max(peak_morsels);
        p.peak_inflight_bytes = p.peak_inflight_bytes.max(peak_bytes);
    }

    /// Snapshot of the pipeline-scheduler counters.
    pub fn pipeline(&self) -> PipelineStats {
        *self.pipeline.lock()
    }

    /// Render the monitoring history as a small report.
    pub fn report(&self) -> String {
        let mut out = String::from("statement     count   errors   total_ms   max_ms\n");
        for (k, s) in self.snapshot() {
            out.push_str(&format!(
                "{:<12} {:>6} {:>8} {:>10.1} {:>8.1}\n",
                k,
                s.count,
                s.errors,
                s.total_time.as_secs_f64() * 1e3,
                s.max_time.as_secs_f64() * 1e3,
            ));
        }
        let r = self.recovery();
        if !r.is_clean() {
            out.push_str(&format!(
                "recovery: {} shard retries, {} failovers, {} stragglers, {} deadline kills, \
                 {} epoch bumps, {} stale-epoch retries, {} torn-epoch rounds, \
                 {} statements cancelled, {} budget rejections, \
                 cancel latency <= {} morsel(s)\n",
                r.shard_retries,
                r.failovers,
                r.stragglers,
                r.deadline_kills,
                r.epoch_bumps,
                r.stale_epoch_retries,
                r.torn_epoch_rounds,
                r.statements_cancelled,
                r.budget_rejections,
                r.cancel_latency_max_morsels,
            ));
        }
        let t = self.txn();
        if !t.is_clean() {
            out.push_str(&format!(
                "txn: {} commits, {} aborts, {} conflicts, \
                 {} wal records replayed, {} bytes truncated in recovery\n",
                t.txn_commits,
                t.txn_aborts,
                t.txn_conflicts,
                t.wal_records_replayed,
                t.recovery_truncated_bytes,
            ));
            if t.group_commit_batches > 0 || t.checkpoints > 0 {
                out.push_str(&format!(
                    "durability: {} group-commit batches, {} wal fsyncs, \
                     {} checkpoints, {} wal segments recycled\n",
                    t.group_commit_batches,
                    t.wal_fsyncs,
                    t.checkpoints,
                    t.wal_segments_recycled,
                ));
            }
        }
        let k = self.key_path();
        if !k.is_clean() {
            out.push_str(&format!(
                "key path: {} rows on encoded keys, {} rows on datum keys, \
                 {} rows re-encoded\n",
                k.encoded_key_rows, k.datum_key_rows, k.keys_reencoded_rows,
            ));
        }
        let p = self.pipeline();
        if !p.is_clean() {
            out.push_str(&format!(
                "pipelines: {} run, {} breakers, peak {} morsels / {} bytes in flight\n",
                p.pipelines_run,
                p.pipeline_breakers,
                p.peak_inflight_morsels,
                p.peak_inflight_bytes,
            ));
        }
        let pins = self.pinned_epochs();
        if !pins.is_empty() {
            let wm = self.epoch_gc_watermark().unwrap_or(0);
            out.push_str(&format!(
                "epoch pins (gc watermark {wm}):{}\n",
                pins.iter()
                    .map(|(e, n)| format!(" e{e}x{n}"))
                    .collect::<String>()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let m = Monitor::new();
        m.record("SELECT", Duration::from_millis(10), true);
        m.record("SELECT", Duration::from_millis(30), false);
        m.record("INSERT", Duration::from_millis(1), true);
        let s = m.stats("SELECT");
        assert_eq!(s.count, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.max_time, Duration::from_millis(30));
        assert_eq!(m.total_statements(), 3);
        let rep = m.report();
        assert!(rep.contains("SELECT"));
        assert!(rep.contains("INSERT"));
    }

    #[test]
    fn unknown_kind_is_zero() {
        let m = Monitor::new();
        assert_eq!(m.stats("DROP"), KindStats::default());
    }

    #[test]
    fn recovery_counters_accumulate_and_share() {
        let m = Monitor::new();
        assert!(m.recovery().is_clean());
        let clone = m.clone();
        clone.record_shard_retry();
        clone.record_shard_retry();
        m.record_failover();
        m.record_straggler();
        m.record_deadline_kill();
        m.record_epoch_bump();
        m.record_stale_epoch_retries(3);
        let r = m.recovery();
        assert_eq!(r.shard_retries, 2);
        assert_eq!(r.failovers, 1);
        assert_eq!(r.stragglers, 1);
        assert_eq!(r.deadline_kills, 1);
        assert_eq!(r.epoch_bumps, 1);
        assert_eq!(r.stale_epoch_retries, 3);
        assert_eq!(r.torn_epoch_rounds, 0, "tripwire never fires in tests");
        assert!(m.report().contains("recovery:"));
    }

    #[test]
    fn cancellation_counters_accumulate() {
        let m = Monitor::new();
        m.record_statement_cancelled();
        m.record_budget_rejections(2);
        m.note_cancel_latency(1);
        m.note_cancel_latency(0); // max, not last-write
        let r = m.recovery();
        assert_eq!(r.statements_cancelled, 1);
        assert_eq!(r.budget_rejections, 2);
        assert_eq!(r.cancel_latency_max_morsels, 1);
        assert!(!r.is_clean());
        let rep = m.report();
        assert!(rep.contains("1 statements cancelled"));
        assert!(rep.contains("2 budget rejections"));
    }

    #[test]
    fn key_path_counters_accumulate_and_report() {
        let m = Monitor::new();
        assert!(m.key_path().is_clean());
        m.record_key_path(100, 7, 3);
        m.record_key_path(50, 0, 0);
        let k = m.key_path();
        assert_eq!(k.encoded_key_rows, 150);
        assert_eq!(k.datum_key_rows, 7);
        assert_eq!(k.keys_reencoded_rows, 3);
        let rep = m.report();
        assert!(rep.contains("key path: 150 rows on encoded keys, 7 rows on datum keys, 3 rows re-encoded"));
    }

    #[test]
    fn pipeline_counters_accumulate_and_report() {
        let m = Monitor::new();
        assert!(m.pipeline().is_clean());
        m.record_pipeline(2, 3, 8, 4096);
        m.record_pipeline(1, 1, 4, 8192); // peaks take the max, sums add
        let p = m.pipeline();
        assert_eq!(p.pipelines_run, 3);
        assert_eq!(p.pipeline_breakers, 4);
        assert_eq!(p.peak_inflight_morsels, 8);
        assert_eq!(p.peak_inflight_bytes, 8192);
        let rep = m.report();
        assert!(rep.contains("pipelines: 3 run, 4 breakers, peak 8 morsels / 8192 bytes in flight"));
    }

    #[test]
    fn txn_counters_accumulate_and_report() {
        let m = Monitor::new();
        assert!(m.txn().is_clean());
        let clone = m.clone();
        clone.record_txn_commit();
        clone.record_txn_commit();
        m.record_txn_abort();
        m.record_txn_conflict();
        m.record_recovery(17, 5);
        m.record_group_commit(1);
        m.record_group_commit(0);
        m.record_checkpoint(3);
        let t = m.txn();
        assert_eq!(t.txn_commits, 2);
        assert_eq!(t.txn_aborts, 1);
        assert_eq!(t.txn_conflicts, 1);
        assert_eq!(t.wal_records_replayed, 17);
        assert_eq!(t.recovery_truncated_bytes, 5);
        assert_eq!(t.group_commit_batches, 2);
        assert_eq!(t.wal_fsyncs, 1);
        assert_eq!(t.checkpoints, 1);
        assert_eq!(t.wal_segments_recycled, 3);
        let rep = m.report();
        assert!(rep.contains("txn: 2 commits, 1 aborts, 1 conflicts"));
        assert!(rep.contains("17 wal records replayed"));
        assert!(rep.contains("durability: 2 group-commit batches, 1 wal fsyncs, 1 checkpoints, 3 wal segments recycled"));
    }

    #[test]
    fn epoch_pin_registry_tracks_watermark() {
        let m = Monitor::new();
        assert_eq!(m.epoch_gc_watermark(), None);
        assert!(m.pinned_epochs().is_empty());
        m.record_epoch_pin(3);
        m.record_epoch_pin(3);
        m.record_epoch_pin(5);
        assert_eq!(m.epoch_gc_watermark(), Some(3));
        assert_eq!(m.pinned_epochs(), vec![(3, 2), (5, 1)]);
        assert!(m.report().contains("epoch pins (gc watermark 3): e3x2 e5x1"));
        m.record_epoch_unpin(3);
        assert_eq!(m.epoch_gc_watermark(), Some(3), "one pin still holds 3");
        m.record_epoch_unpin(3);
        assert_eq!(m.epoch_gc_watermark(), Some(5), "watermark advances");
        m.record_epoch_unpin(5);
        assert_eq!(m.epoch_gc_watermark(), None);
        // Unpinning an unknown epoch is a no-op, not a panic.
        m.record_epoch_unpin(99);
        assert!(m.pinned_epochs().is_empty());
    }
}

//! Query-wide pipelined morsel scheduler.
//!
//! The materialized executor in [`crate::plan`] runs one operator at a
//! time: the scan materializes every surviving row, then the join consumes
//! that batch, then the aggregate consumes the join's output. Peak memory
//! is O(largest intermediate result) even though each row is only touched
//! once per operator.
//!
//! This module decomposes a plan into **pipelines** broken at pipeline
//! breakers — hash-join builds, the aggregate merge, and the sort seal —
//! and drives each non-breaker chain one *morsel* at a time: a scan stride
//! flows through filter → project → join-probe → aggregate-partial as one
//! unit of work while other strides are in other stages. Build sides
//! complete (materialized, via the ordinary executor) before their probe
//! pipeline starts; morsel results fold **in morsel-index order** at the
//! sink, so the output is byte-identical at any parallelism:
//!
//! * probe output is probe-row-major within each morsel ([`JoinBuild`]),
//! * aggregate groups surface in first-appearance order across the
//!   in-order fold — the serial scan's first-appearance order,
//! * partial states merge with order-insensitive combines (sums, min/max,
//!   Chan's moment formulas), so any morsel split yields the same finals.
//!
//! Peak memory drops to O(morsels in flight): the scheduler admits at most
//! `DASH_PIPELINE_INFLIGHT` unfolded morsels (default `parallelism * 4`),
//! each carrying a [`BudgetLease`] for its bytes, and the statement's
//! deadline/cancellation token is checked at every pipeline step.

use crate::agg::{self, AggAccumulator, AggExpr};
use crate::batch::Batch;
use crate::expr::Expr;
use crate::functions::EvalContext;
use crate::join::{JoinBuild, JoinType};
use crate::key::KeyMode;
use crate::plan::{self, PhysicalPlan, SharedTable};
use crate::pool;
use crate::scan::ScanConfig;
use crate::scan::ScanSource;
use crate::sort::{sort_batch, SortKey, SortOptions};
use crate::stats::ExecStats;
use dash_common::{BudgetLease, Result, Schema};

/// Pipeline-scheduler knobs, resolved from `DASH_PIPELINE` /
/// `DASH_PIPELINE_INFLIGHT` by autoconfiguration and carried on the
/// [`EvalContext`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Run pipelineable plans through the morsel scheduler (`true` unless
    /// `DASH_PIPELINE=off`). Disabled plans use the materialized executor.
    pub enabled: bool,
    /// Max morsels simultaneously claimed-but-unfolded per pipeline drive;
    /// `0` = auto (`parallelism * 4`). This bounds the pipelined peak
    /// memory at O(window · morsel bytes).
    pub inflight: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            enabled: true,
            inflight: 0,
        }
    }
}

/// The structural decomposition of a pipelineable plan, borrowed from the
/// plan tree. Built without executing anything, so an unsupported shape
/// falls back to the materialized executor at zero cost.
struct ChainShape<'p> {
    table: &'p SharedTable,
    config: &'p ScanConfig,
    /// Non-breaker operators in source→sink order.
    raw_ops: Vec<RawOp<'p>>,
    agg: Option<AggShape<'p>>,
    /// Whole-result operators above the aggregate (projections mapping the
    /// agg output to the select list, the sealing sort), in top-down plan
    /// order; applied to the folded result bottom-up.
    post: Vec<PostOp<'p>>,
    /// Widest parallelism any node in the chain requested.
    parallelism: usize,
}

/// A whole-result operator applied after the morsel fold.
enum PostOp<'p> {
    Project {
        exprs: &'p [Expr],
        schema: &'p Schema,
    },
    Sort(SortShape<'p>),
}

enum RawOp<'p> {
    Filter(&'p Expr),
    Project {
        exprs: &'p [Expr],
        schema: &'p Schema,
    },
    /// Hash-join probe; `build` is the plan of the build (right) side,
    /// executed to completion before the probe pipeline is released.
    Probe {
        build: &'p PhysicalPlan,
        on: &'p [(usize, usize)],
        join_type: JoinType,
        key_mode: KeyMode,
        parallelism: usize,
    },
}

struct AggShape<'p> {
    group: &'p [Expr],
    aggs: &'p [AggExpr],
    schema: &'p Schema,
}

struct SortShape<'p> {
    keys: &'p [SortKey],
    opts: SortOptions,
}

/// Decompose `plan` into a pipeline chain, or `None` when any node cannot
/// stream (Values/Union/Distinct/RowNumber/CrossJoin/ConnectBy sources,
/// DISTINCT aggregates, or a Sort/Aggregate buried mid-chain). The planner
/// emits select-list projections *above* the aggregate; those (and the
/// sealing sort) become whole-result post ops rather than morsel stages.
fn decompose(plan: &PhysicalPlan) -> Option<ChainShape<'_>> {
    let mut node = plan;
    let mut parallelism = 1usize;
    // Collect the Sort/Project prefix above the aggregate, top-down. At
    // most one sort: a second one means a shape we don't stream.
    let mut post: Vec<PostOp<'_>> = Vec::new();
    loop {
        match node {
            PhysicalPlan::Sort {
                input,
                keys,
                limit,
                offset,
                parallelism: par,
                run_rows,
            } if !post.iter().any(|p| matches!(p, PostOp::Sort(_))) => {
                post.push(PostOp::Sort(SortShape {
                    keys,
                    opts: SortOptions {
                        limit: *limit,
                        offset: *offset,
                        parallelism: *par,
                        run_rows: *run_rows,
                    },
                }));
                parallelism = parallelism.max(*par);
                node = input;
            }
            PhysicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                post.push(PostOp::Project { exprs, schema });
                node = input;
            }
            _ => break,
        }
    }
    let mut aggshape = None;
    if let PhysicalPlan::HashAggregate {
        input,
        group,
        aggs,
        schema,
        parallelism: par,
        ..
    } = node
    {
        // DISTINCT aggregates cannot merge per-morsel partials (their
        // seen-sets overlap across morsels) — materialized path only.
        if !agg::supports_partial(aggs) {
            return None;
        }
        aggshape = Some(AggShape {
            group,
            aggs,
            schema,
        });
        parallelism = parallelism.max(*par);
        node = input;
    }
    let mut raw_ops = Vec::new();
    if aggshape.is_none() {
        // No aggregate under the prefix: projections below the sort feed it
        // row-at-a-time, so they stream per morsel instead of running as
        // whole-result post ops.
        let split = post
            .iter()
            .rposition(|p| matches!(p, PostOp::Sort(_)))
            .map_or(0, |i| i + 1);
        for p in post.drain(split..) {
            if let PostOp::Project { exprs, schema } = p {
                raw_ops.push(RawOp::Project { exprs, schema });
            }
        }
    }
    let (table, config) = loop {
        match node {
            PhysicalPlan::Filter { input, predicate } => {
                raw_ops.push(RawOp::Filter(predicate));
                node = input;
            }
            PhysicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                raw_ops.push(RawOp::Project { exprs, schema });
                node = input;
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                on,
                join_type,
                key_mode,
                parallelism: par,
            } => {
                raw_ops.push(RawOp::Probe {
                    build: right,
                    on,
                    join_type: *join_type,
                    key_mode: *key_mode,
                    parallelism: *par,
                });
                parallelism = parallelism.max(*par);
                node = left;
            }
            PhysicalPlan::ColumnScan { table, config } => break (table, config),
            _ => return None,
        }
    };
    parallelism = parallelism.max(config.parallelism);
    raw_ops.reverse(); // source → sink
    Some(ChainShape {
        table,
        config,
        raw_ops,
        agg: aggshape,
        post,
        parallelism,
    })
}

/// A frozen per-morsel operator (build sides already executed).
enum Op<'p> {
    Filter(&'p Expr),
    Project {
        exprs: &'p [Expr],
        schema: &'p Schema,
    },
    Probe(Box<JoinBuild>),
}

/// What one morsel produced, plus its stats and the budget lease covering
/// its bytes while it waits for (or undergoes) the in-order fold.
struct MorselItem {
    payload: Payload,
    stats: ExecStats,
    lease: BudgetLease,
}

enum Payload {
    Batch(Batch),
    Partial(agg::AggPartial),
}

/// Try to run `plan` through the pipeline scheduler. `None` means the
/// shape is not pipelineable (or the scheduler is disabled) and the caller
/// should use the materialized executor. `Some(Err(..))` is a real
/// execution error — no silent fallback after work has started.
pub(crate) fn try_execute(
    plan: &PhysicalPlan,
    ctx: &EvalContext,
) -> Option<Result<(Batch, ExecStats)>> {
    if !ctx.pipeline.enabled {
        return None;
    }
    let shape = decompose(plan)?;
    Some(run_chain(shape, ctx))
}

fn run_chain(shape: ChainShape<'_>, ctx: &EvalContext) -> Result<(Batch, ExecStats)> {
    let mut stats = ExecStats::default();
    let parallelism = shape.parallelism.max(1);

    // Freeze the chain: execute every build side (a pipeline breaker each)
    // before its probe joins the per-morsel path. Build sides recurse
    // through `plan::execute`, so a pipelineable build side runs its own
    // pipeline.
    let guard = shape.table.read();
    let source = ScanSource::new(&guard, shape.config)?;
    stats += source.base_stats();
    let mut schema = source.out_schema().clone();
    let mut breakers = 0u64;
    let mut ops: Vec<Op<'_>> = Vec::with_capacity(shape.raw_ops.len());
    for raw in &shape.raw_ops {
        match raw {
            RawOp::Filter(p) => ops.push(Op::Filter(p)),
            RawOp::Project { exprs, schema: s } => {
                ops.push(Op::Project { exprs, schema: s });
                schema = (*s).clone();
            }
            RawOp::Probe {
                build,
                on,
                join_type,
                key_mode,
                parallelism: jp,
            } => {
                let (built, bstats) = plan::execute(build, ctx)?;
                stats += bstats;
                breakers += 1;
                let jb = JoinBuild::new(
                    built,
                    &schema,
                    on.to_vec(),
                    *join_type,
                    *key_mode,
                    *jp,
                    &ctx.statement,
                    &mut stats,
                )?;
                schema = jb.out_schema().clone();
                ops.push(Op::Probe(Box::new(jb)));
            }
        }
    }
    // The build-side recursion sets rows_out for its own root; the
    // pipeline's caller overwrites it with the final row count.
    stats.rows_out = 0;
    // Frozen build tables stay resident for the whole morsel drive, so
    // they are part of the pipelined peak alongside in-flight morsels.
    let build_held: u64 = ops
        .iter()
        .map(|op| match op {
            Op::Probe(jb) => jb.held_bytes(),
            _ => 0,
        })
        .sum();

    let window = if ctx.pipeline.inflight == 0 {
        parallelism * 4
    } else {
        ctx.pipeline.inflight
    };
    let n = source.morsel_count();

    let work = |mi: usize| -> Result<MorselItem> {
        let (mut batch, mut mstats) = source.morsel(mi, ctx)?;
        for op in &ops {
            // Deadline/cancel observed at every pipeline step, not just at
            // morsel boundaries.
            ctx.statement.check()?;
            batch = apply_op(op, batch, ctx, &mut mstats)?;
        }
        let mut lease = BudgetLease::new(&ctx.statement);
        let payload = match &shape.agg {
            Some(a) => {
                let partial = agg::aggregate_morsel(&batch, a.group, a.aggs, ctx)?;
                lease.charge(partial.approx_bytes()).inspect_err(|_| {
                    mstats.budget_rejections += 1;
                })?;
                Payload::Partial(partial)
            }
            None => {
                lease.charge(batch.approx_bytes()).inspect_err(|_| {
                    mstats.budget_rejections += 1;
                })?;
                Payload::Batch(batch)
            }
        };
        Ok(MorselItem {
            payload,
            stats: mstats,
            lease,
        })
    };
    let bytes_of = |item: &MorselItem| item.lease.held().max(1);

    let mut collected: Vec<Batch> = Vec::new();
    let mut leases: Vec<BudgetLease> = Vec::new();
    let mut acc = AggAccumulator::new();
    let mut fold_stats = ExecStats::default();
    let run = pool::run_morsels_fold(
        n,
        parallelism,
        window,
        &ctx.statement,
        work,
        bytes_of,
        |_mi, item: MorselItem| {
            fold_stats += item.stats;
            match item.payload {
                Payload::Batch(b) => {
                    collected.push(b);
                    // Collected output is still resident: its lease lives
                    // until the concat at pipeline end.
                    leases.push(item.lease);
                }
                // The partial merges into the accumulator and its lease
                // releases as the item drops here.
                Payload::Partial(p) => {
                    acc.merge(p)?;
                    fold_stats.peak_inflight_bytes =
                        fold_stats.peak_inflight_bytes.max(acc.approx_bytes());
                }
            }
            Ok(())
        },
    )?;
    stats += fold_stats;
    stats.note_parallel_phase(run.morsels_dispatched, run.workers_used);
    stats.peak_inflight_morsels = stats.peak_inflight_morsels.max(run.peak_inflight_morsels);
    stats.peak_inflight_bytes = stats
        .peak_inflight_bytes
        .max(run.peak_inflight_bytes + build_held);
    let post_sorts = shape
        .post
        .iter()
        .filter(|p| matches!(p, PostOp::Sort(_)))
        .count() as u64;
    stats.pipelines_run += 1;
    stats.pipeline_breakers += breakers + u64::from(shape.agg.is_some()) + post_sorts;

    let mut batch = match shape.agg {
        Some(a) => {
            stats.encoded_key_rows += acc.encoded_rows;
            stats.datum_key_rows += acc.datum_rows;
            acc.finish(a.group, a.aggs, a.schema.clone(), &schema)?
        }
        None => Batch::concat_columnar(schema, collected)?,
    };
    drop(leases);
    // Whole-result operators above the fold, applied bottom-up: the
    // select-list projection over the agg output, then the sealing sort.
    for p in shape.post.iter().rev() {
        match p {
            PostOp::Project { exprs, schema } => {
                batch = project_batch(&batch, exprs, schema, ctx)?;
            }
            PostOp::Sort(s) => {
                batch = sort_batch(&batch, s.keys, &s.opts, ctx, &mut stats)?;
            }
        }
    }
    Ok((batch, stats))
}

/// Evaluate a projection over a whole batch (shared by the per-morsel
/// [`Op::Project`] stage and post-fold select-list projections).
fn project_batch(batch: &Batch, exprs: &[Expr], schema: &Schema, ctx: &EvalContext) -> Result<Batch> {
    let mut rows: Vec<dash_common::Row> = Vec::with_capacity(batch.len());
    for row in 0..batch.len() {
        let mut vals = Vec::with_capacity(exprs.len());
        for e in exprs {
            vals.push(e.eval(batch, row, ctx)?);
        }
        rows.push(dash_common::Row::new(vals));
    }
    let rows: Result<Vec<dash_common::Row>> = rows.into_iter().map(|r| r.coerce(schema)).collect();
    Batch::from_rows(schema.clone(), &rows?)
}

/// Apply one non-breaker operator to a morsel's batch (serial within the
/// morsel — the pipeline's parallelism is across morsels).
fn apply_op(
    op: &Op<'_>,
    batch: Batch,
    ctx: &EvalContext,
    mstats: &mut ExecStats,
) -> Result<Batch> {
    match op {
        Op::Filter(predicate) => {
            let mut keep = Vec::new();
            for row in 0..batch.len() {
                if predicate.eval_predicate(&batch, row, ctx)? {
                    keep.push(row);
                }
            }
            Ok(batch.take(&keep))
        }
        Op::Project { exprs, schema } => project_batch(&batch, exprs, schema, ctx),
        Op::Probe(build) => build.probe_morsel(&batch, &ctx.statement, mstats),
    }
}

/// Render the pipeline decomposition of `plan` for EXPLAIN, or `None`
/// when the plan would run on the materialized executor. One line per
/// pipeline, numbered in execution order (build sides first).
pub fn describe(plan: &PhysicalPlan) -> Option<Vec<String>> {
    decompose(plan)?;
    let mut lines = Vec::new();
    let mut next = 0usize;
    describe_into(plan, &mut lines, &mut next);
    Some(lines)
}

fn describe_into(plan: &PhysicalPlan, lines: &mut Vec<String>, next: &mut usize) {
    let Some(shape) = decompose(plan) else {
        let id = *next;
        *next += 1;
        lines.push(format!("pipeline {id}: materialize {}", node_label(plan)));
        return;
    };
    // Build sides run first, each as its own pipeline (or materialized
    // sub-plan).
    for raw in &shape.raw_ops {
        if let RawOp::Probe { build, .. } = raw {
            describe_into(build, lines, next);
        }
    }
    let id = *next;
    *next += 1;
    let mut stages = vec![format!("scan {}", shape.table.read().name())];
    for raw in &shape.raw_ops {
        stages.push(match raw {
            RawOp::Filter(_) => "filter".to_string(),
            RawOp::Project { .. } => "project".to_string(),
            RawOp::Probe { join_type, .. } => format!("probe[{join_type:?}]"),
        });
    }
    if shape.agg.is_some() {
        stages.push("agg-partial".to_string());
    }
    let mut line = format!("pipeline {id}: {}", stages.join("→"));
    let mut sinks = Vec::new();
    if shape.agg.is_some() {
        sinks.push("agg merge");
    }
    for p in shape.post.iter().rev() {
        sinks.push(match p {
            PostOp::Project { .. } => "project",
            PostOp::Sort(_) => "sort seal",
        });
    }
    if !sinks.is_empty() {
        line.push_str(&format!(" ⇒ {}", sinks.join(" ⇒ ")));
    }
    lines.push(line);
}

fn node_label(plan: &PhysicalPlan) -> &'static str {
    match plan {
        PhysicalPlan::ColumnScan { .. } => "ColumnScan",
        PhysicalPlan::Values { .. } => "Values",
        PhysicalPlan::Filter { .. } => "Filter",
        PhysicalPlan::Project { .. } => "Project",
        PhysicalPlan::HashJoin { .. } => "HashJoin",
        PhysicalPlan::HashAggregate { .. } => "HashAggregate",
        PhysicalPlan::Sort { .. } => "Sort",
        PhysicalPlan::UnionAll { .. } => "UnionAll",
        PhysicalPlan::Distinct { .. } => "Distinct",
        PhysicalPlan::RowNumber { .. } => "RowNumber",
        PhysicalPlan::CrossJoin { .. } => "CrossJoin",
        PhysicalPlan::ConnectBy { .. } => "ConnectBy",
    }
}

//! Physical scalar expressions.
//!
//! Expressions are evaluated against [`Batch`]es position-by-position with
//! SQL three-valued logic. The fast path for simple comparison predicates
//! bypasses this module entirely (the scan evaluates them on compressed
//! codes via [`crate::simd`]); what remains here are the *residual*
//! expressions — arithmetic, function calls, CASE, LIKE, IN — applied to
//! the already-filtered survivors.

use crate::batch::Batch;
use crate::functions::{EvalContext, ScalarFunction};
use dash_common::row::coerce_datum;
use dash_common::{DashError, DataType, Datum, Result};
use std::fmt;
use std::sync::Arc;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an ordering.
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less | Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less | Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater | Equal)
        )
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integer remainder)
    Rem,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Rem => "%",
        };
        write!(f, "{s}")
    }
}

/// A physical scalar expression over a batch's columns (by ordinal).
#[derive(Debug, Clone)]
pub enum Expr {
    /// Input column by ordinal.
    Col(usize),
    /// Literal value.
    Lit(Datum),
    /// Binary comparison with three-valued logic.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical AND over 2+ operands (三-valued).
    And(Vec<Expr>),
    /// Logical OR over 2+ operands.
    Or(Vec<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// `IS NULL` (negated=false) / `IS NOT NULL` (negated=true).
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for IS NOT NULL.
        negated: bool,
    },
    /// Scalar function call.
    Func(Arc<ScalarFunction>, Vec<Expr>),
    /// `CASE [operand] WHEN .. THEN .. ELSE .. END`.
    Case {
        /// Simple-CASE operand (`CASE x WHEN v ...`); `None` for searched.
        operand: Option<Box<Expr>>,
        /// (when, then) branches.
        branches: Vec<(Expr, Expr)>,
        /// ELSE expression.
        otherwise: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)` (also PostgreSQL `expr::type`).
    Cast(Box<Expr>, DataType),
    /// SQL LIKE with `%` and `_` wildcards.
    Like {
        /// Value.
        expr: Box<Expr>,
        /// Pattern (literal).
        pattern: String,
        /// NOT LIKE.
        negated: bool,
    },
    /// `expr IN (list)` over literal lists.
    InList {
        /// Value.
        expr: Box<Expr>,
        /// Candidates.
        list: Vec<Datum>,
        /// NOT IN.
        negated: bool,
    },
    /// Sequence NEXTVAL — advances the named sequence per evaluation.
    SeqNext(String),
    /// Sequence CURRVAL — reads the named sequence without advancing.
    SeqCurr(String),
}

impl Expr {
    /// Convenience: boxed column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Convenience: literal.
    pub fn lit(d: impl Into<Datum>) -> Expr {
        Expr::Lit(d.into())
    }

    /// Evaluate at one row of a batch.
    pub fn eval(&self, batch: &Batch, row: usize, ctx: &EvalContext) -> Result<Datum> {
        match self {
            Expr::Col(i) => Ok(batch.value(row, *i)),
            Expr::Lit(d) => Ok(d.clone()),
            Expr::Cmp(op, l, r) => {
                let lv = l.eval(batch, row, ctx)?;
                let rv = r.eval(batch, row, ctx)?;
                if lv.is_null() || rv.is_null() {
                    return Ok(Datum::Null);
                }
                Ok(Datum::Bool(op.matches(lv.sql_cmp(&rv))))
            }
            Expr::Arith(op, l, r) => {
                let lv = l.eval(batch, row, ctx)?;
                let rv = r.eval(batch, row, ctx)?;
                eval_arith(*op, &lv, &rv)
            }
            Expr::Neg(e) => {
                let v = e.eval(batch, row, ctx)?;
                Ok(match v {
                    Datum::Null => Datum::Null,
                    Datum::Int(i) => Datum::Int(-i),
                    Datum::Float(f) => Datum::Float(-f),
                    Datum::Decimal(d, s) => Datum::Decimal(-d, s),
                    other => {
                        return Err(DashError::exec(format!("cannot negate {other:?}")))
                    }
                })
            }
            Expr::And(parts) => {
                // 3VL AND: false dominates, then null, then true.
                let mut saw_null = false;
                for p in parts {
                    match p.eval(batch, row, ctx)? {
                        Datum::Bool(false) => return Ok(Datum::Bool(false)),
                        Datum::Null => saw_null = true,
                        Datum::Bool(true) => {}
                        other => {
                            return Err(DashError::exec(format!(
                                "AND operand is not boolean: {other:?}"
                            )))
                        }
                    }
                }
                Ok(if saw_null { Datum::Null } else { Datum::Bool(true) })
            }
            Expr::Or(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match p.eval(batch, row, ctx)? {
                        Datum::Bool(true) => return Ok(Datum::Bool(true)),
                        Datum::Null => saw_null = true,
                        Datum::Bool(false) => {}
                        other => {
                            return Err(DashError::exec(format!(
                                "OR operand is not boolean: {other:?}"
                            )))
                        }
                    }
                }
                Ok(if saw_null { Datum::Null } else { Datum::Bool(false) })
            }
            Expr::Not(e) => Ok(match e.eval(batch, row, ctx)? {
                Datum::Null => Datum::Null,
                Datum::Bool(b) => Datum::Bool(!b),
                other => {
                    return Err(DashError::exec(format!(
                        "NOT operand is not boolean: {other:?}"
                    )))
                }
            }),
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(batch, row, ctx)?;
                Ok(Datum::Bool(v.is_null() != *negated))
            }
            Expr::Func(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(batch, row, ctx)?);
                }
                if vals.len() < f.min_args || vals.len() > f.max_args {
                    return Err(DashError::analysis(format!(
                        "{} takes {}..{} arguments, got {}",
                        f.name,
                        f.min_args,
                        if f.max_args == usize::MAX {
                            "N".to_string()
                        } else {
                            f.max_args.to_string()
                        },
                        vals.len()
                    )));
                }
                f.eval.call(&vals, ctx)
            }
            Expr::Case {
                operand,
                branches,
                otherwise,
            } => {
                let op_val = match operand {
                    Some(o) => Some(o.eval(batch, row, ctx)?),
                    None => None,
                };
                for (when, then) in branches {
                    let hit = match &op_val {
                        Some(v) => {
                            let w = when.eval(batch, row, ctx)?;
                            v.sql_eq(&w).unwrap_or(false)
                        }
                        None => matches!(when.eval(batch, row, ctx)?, Datum::Bool(true)),
                    };
                    if hit {
                        return then.eval(batch, row, ctx);
                    }
                }
                match otherwise {
                    Some(e) => e.eval(batch, row, ctx),
                    None => Ok(Datum::Null),
                }
            }
            Expr::Cast(e, ty) => {
                let v = e.eval(batch, row, ctx)?;
                coerce_datum(v, *ty)
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(batch, row, ctx)?;
                match v {
                    Datum::Null => Ok(Datum::Null),
                    Datum::Str(s) => Ok(Datum::Bool(like_match(&s, pattern) != *negated)),
                    other => Err(DashError::exec(format!("LIKE on non-string {other:?}"))),
                }
            }
            Expr::SeqNext(name) => match &ctx.sequences {
                Some(s) => Ok(Datum::Int(s.next_value(name)?)),
                None => Err(DashError::exec("no sequence source in this context")),
            },
            Expr::SeqCurr(name) => match &ctx.sequences {
                Some(s) => Ok(Datum::Int(s.current_value(name)?)),
                None => Err(DashError::exec("no sequence source in this context")),
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(batch, row, ctx)?;
                if v.is_null() {
                    return Ok(Datum::Null);
                }
                let mut saw_null = false;
                for cand in list {
                    match v.sql_eq(cand) {
                        Some(true) => return Ok(Datum::Bool(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(if saw_null {
                    Datum::Null
                } else {
                    Datum::Bool(*negated)
                })
            }
        }
    }

    /// Evaluate as a predicate at one row: `true` only for `TRUE`
    /// (NULL and FALSE both reject the row).
    pub fn eval_predicate(&self, batch: &Batch, row: usize, ctx: &EvalContext) -> Result<bool> {
        Ok(matches!(self.eval(batch, row, ctx)?, Datum::Bool(true)))
    }

    /// Column ordinals referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Expr::Lit(_) => {}
            Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) => {
                l.referenced_columns(out);
                r.referenced_columns(out);
            }
            Expr::Neg(e) | Expr::Not(e) | Expr::Cast(e, _) => e.referenced_columns(out),
            Expr::And(v) | Expr::Or(v) => {
                for e in v {
                    e.referenced_columns(out);
                }
            }
            Expr::IsNull { expr, .. }
            | Expr::Like { expr, .. }
            | Expr::InList { expr, .. } => expr.referenced_columns(out),
            Expr::SeqNext(_) | Expr::SeqCurr(_) => {}
            Expr::Func(_, args) => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            Expr::Case {
                operand,
                branches,
                otherwise,
            } => {
                if let Some(o) = operand {
                    o.referenced_columns(out);
                }
                for (w, t) in branches {
                    w.referenced_columns(out);
                    t.referenced_columns(out);
                }
                if let Some(e) = otherwise {
                    e.referenced_columns(out);
                }
            }
        }
    }
}

fn eval_arith(op: ArithOp, l: &Datum, r: &Datum) -> Result<Datum> {
    use Datum::*;
    if l.is_null() || r.is_null() {
        return Ok(Null);
    }
    // Date arithmetic: date ± int days.
    match (op, l, r) {
        (ArithOp::Add, Date(d), Int(n)) | (ArithOp::Add, Int(n), Date(d)) => {
            return Ok(Date(d + *n as i32));
        }
        (ArithOp::Sub, Date(d), Int(n)) => return Ok(Date(d - *n as i32)),
        (ArithOp::Sub, Date(a), Date(b)) => return Ok(Int((*a - *b) as i64)),
        _ => {}
    }
    // Integer fast path (with overflow checks).
    if let (Int(a), Int(b)) = (l, r) {
        return Ok(match op {
            ArithOp::Add => Int(a
                .checked_add(*b)
                .ok_or_else(|| DashError::exec("integer overflow in +"))?),
            ArithOp::Sub => Int(a
                .checked_sub(*b)
                .ok_or_else(|| DashError::exec("integer overflow in -"))?),
            ArithOp::Mul => Int(a
                .checked_mul(*b)
                .ok_or_else(|| DashError::exec("integer overflow in *"))?),
            ArithOp::Div => {
                if *b == 0 {
                    return Err(DashError::exec("division by zero"));
                }
                Int(a / b)
            }
            ArithOp::Rem => {
                if *b == 0 {
                    return Err(DashError::exec("division by zero"));
                }
                Int(a % b)
            }
        });
    }
    // Everything else promotes to f64.
    let a = l
        .as_float()
        .ok_or_else(|| DashError::exec(format!("non-numeric operand {l:?}")))?;
    let b = r
        .as_float()
        .ok_or_else(|| DashError::exec(format!("non-numeric operand {r:?}")))?;
    Ok(match op {
        ArithOp::Add => Float(a + b),
        ArithOp::Sub => Float(a - b),
        ArithOp::Mul => Float(a * b),
        ArithOp::Div => {
            if b == 0.0 {
                return Err(DashError::exec("division by zero"));
            }
            Float(a / b)
        }
        ArithOp::Rem => {
            if b == 0.0 {
                return Err(DashError::exec("division by zero"));
            }
            Float(a % b)
        }
    })
}

/// SQL LIKE matching (`%` = any run, `_` = any char). Case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    // Dynamic programming over chars; patterns are short so this is fine.
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    let (n, m) = (sc.len(), pc.len());
    let mut dp = vec![false; n + 1];
    dp[0] = true;
    for (j, &p) in pc.iter().enumerate() {
        let _ = j;
        let mut prev_diag = dp[0];
        if p == '%' {
            // dp[i] |= dp[i-1] forward propagate; dp[0] unchanged.
            for i in 1..=n {
                dp[i] = dp[i] || dp[i - 1];
            }
        } else {
            dp[0] = false;
            for i in 1..=n {
                let cur = dp[i];
                dp[i] = prev_diag && (p == '_' || sc[i - 1] == p);
                prev_diag = cur;
            }
        }
        let _ = m;
    }
    dp[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::FunctionRegistry;
    use dash_common::dialect::Dialect;
    use dash_common::types::DataType;
    use dash_common::{row, Field, Schema};

    fn batch() -> Batch {
        let schema = Schema::new(vec![
            Field::not_null("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
            Field::new("c", DataType::Float64),
        ])
        .unwrap();
        Batch::from_rows(
            schema,
            &[
                row![1i64, "apple", 1.5f64],
                row![2i64, Datum::Null, 2.5f64],
                row![3i64, "banana", Datum::Null],
            ],
        )
        .unwrap()
    }

    fn ctx() -> EvalContext {
        EvalContext::default()
    }

    #[test]
    fn comparisons_and_3vl() {
        let b = batch();
        let e = Expr::Cmp(CmpOp::Gt, Box::new(Expr::col(0)), Box::new(Expr::lit(1i64)));
        assert_eq!(e.eval(&b, 0, &ctx()).unwrap(), Datum::Bool(false));
        assert_eq!(e.eval(&b, 1, &ctx()).unwrap(), Datum::Bool(true));
        // NULL propagates.
        let e = Expr::Cmp(CmpOp::Eq, Box::new(Expr::col(1)), Box::new(Expr::lit("x")));
        assert_eq!(e.eval(&b, 1, &ctx()).unwrap(), Datum::Null);
    }

    #[test]
    fn and_or_three_valued() {
        let b = batch();
        // (c > 0) AND (b = 'banana'): row 2 has c NULL -> NULL AND true -> NULL.
        let e = Expr::And(vec![
            Expr::Cmp(CmpOp::Gt, Box::new(Expr::col(2)), Box::new(Expr::lit(0f64))),
            Expr::Cmp(
                CmpOp::Eq,
                Box::new(Expr::col(1)),
                Box::new(Expr::lit("banana")),
            ),
        ]);
        assert_eq!(e.eval(&b, 2, &ctx()).unwrap(), Datum::Null);
        assert!(!e.eval_predicate(&b, 2, &ctx()).unwrap());
        // FALSE AND NULL -> FALSE (short-circuit dominance).
        let e = Expr::And(vec![
            Expr::lit(false),
            Expr::Cmp(CmpOp::Eq, Box::new(Expr::col(1)), Box::new(Expr::lit("x"))),
        ]);
        assert_eq!(e.eval(&b, 1, &ctx()).unwrap(), Datum::Bool(false));
        // TRUE OR NULL -> TRUE.
        let e = Expr::Or(vec![
            Expr::lit(true),
            Expr::Cmp(CmpOp::Eq, Box::new(Expr::col(1)), Box::new(Expr::lit("x"))),
        ]);
        assert_eq!(e.eval(&b, 1, &ctx()).unwrap(), Datum::Bool(true));
    }

    #[test]
    fn arithmetic() {
        let b = batch();
        let e = Expr::Arith(
            ArithOp::Mul,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(10i64)),
        );
        assert_eq!(e.eval(&b, 2, &ctx()).unwrap(), Datum::Int(30));
        let e = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(0i64)),
        );
        assert!(e.eval(&b, 0, &ctx()).is_err());
        // Mixed int/float promotes.
        let e = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::col(0)),
            Box::new(Expr::col(2)),
        );
        assert_eq!(e.eval(&b, 0, &ctx()).unwrap(), Datum::Float(2.5));
        assert_eq!(e.eval(&b, 2, &ctx()).unwrap(), Datum::Null);
    }

    #[test]
    fn date_arithmetic() {
        let schema = Schema::new(vec![Field::new("d", DataType::Date)]).unwrap();
        let b = Batch::from_rows(schema, &[row![Datum::Date(100)]]).unwrap();
        let e = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(7i64)),
        );
        assert_eq!(e.eval(&b, 0, &ctx()).unwrap(), Datum::Date(107));
        let e = Expr::Arith(
            ArithOp::Sub,
            Box::new(Expr::col(0)),
            Box::new(Expr::Lit(Datum::Date(90))),
        );
        assert_eq!(e.eval(&b, 0, &ctx()).unwrap(), Datum::Int(10));
    }

    #[test]
    fn case_expressions() {
        let b = batch();
        // Searched CASE.
        let e = Expr::Case {
            operand: None,
            branches: vec![(
                Expr::Cmp(CmpOp::Gt, Box::new(Expr::col(0)), Box::new(Expr::lit(2i64))),
                Expr::lit("big"),
            )],
            otherwise: Some(Box::new(Expr::lit("small"))),
        };
        assert_eq!(e.eval(&b, 0, &ctx()).unwrap(), Datum::str("small"));
        assert_eq!(e.eval(&b, 2, &ctx()).unwrap(), Datum::str("big"));
        // Simple CASE without ELSE -> NULL.
        let e = Expr::Case {
            operand: Some(Box::new(Expr::col(0))),
            branches: vec![(Expr::lit(99i64), Expr::lit("x"))],
            otherwise: None,
        };
        assert_eq!(e.eval(&b, 0, &ctx()).unwrap(), Datum::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("banana", "ban%"));
        assert!(like_match("banana", "%ana"));
        assert!(like_match("banana", "b_n_n_"));
        assert!(like_match("banana", "%"));
        assert!(!like_match("banana", "ban"));
        assert!(!like_match("", "_"));
        assert!(like_match("", "%"));
        assert!(like_match("a%b", "a%b")); // literal traversal via % wildcard
    }

    #[test]
    fn in_list_three_valued() {
        let b = batch();
        let e = Expr::InList {
            expr: Box::new(Expr::col(0)),
            list: vec![Datum::Int(1), Datum::Null],
            negated: false,
        };
        assert_eq!(e.eval(&b, 0, &ctx()).unwrap(), Datum::Bool(true));
        // 2 IN (1, NULL) -> NULL (unknown).
        assert_eq!(e.eval(&b, 1, &ctx()).unwrap(), Datum::Null);
    }

    #[test]
    fn function_calls_and_arity() {
        let b = batch();
        let reg = FunctionRegistry::builtin();
        let upper = reg.resolve("UPPER", Dialect::Ansi).unwrap();
        let e = Expr::Func(upper.clone(), vec![Expr::col(1)]);
        assert_eq!(e.eval(&b, 0, &ctx()).unwrap(), Datum::str("APPLE"));
        assert_eq!(e.eval(&b, 1, &ctx()).unwrap(), Datum::Null);
        let bad = Expr::Func(upper, vec![Expr::col(1), Expr::col(1)]);
        assert!(bad.eval(&b, 0, &ctx()).is_err());
    }

    #[test]
    fn cast_and_is_null() {
        let b = batch();
        let e = Expr::Cast(Box::new(Expr::col(0)), DataType::Utf8);
        assert_eq!(e.eval(&b, 0, &ctx()).unwrap(), Datum::str("1"));
        let e = Expr::IsNull {
            expr: Box::new(Expr::col(1)),
            negated: false,
        };
        assert_eq!(e.eval(&b, 1, &ctx()).unwrap(), Datum::Bool(true));
        let e = Expr::IsNull {
            expr: Box::new(Expr::col(1)),
            negated: true,
        };
        assert_eq!(e.eval(&b, 1, &ctx()).unwrap(), Datum::Bool(false));
    }

    #[test]
    fn referenced_columns_collects() {
        let e = Expr::And(vec![
            Expr::Cmp(CmpOp::Eq, Box::new(Expr::col(2)), Box::new(Expr::lit(1i64))),
            Expr::Arith(ArithOp::Add, Box::new(Expr::col(0)), Box::new(Expr::col(2))),
        ]);
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 2]);
    }
}

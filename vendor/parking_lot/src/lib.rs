//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `parking_lot` APIs it uses are provided here on top of
//! `std::sync`. Semantics match for correct programs; the one deliberate
//! difference is poisoning: like real parking_lot, a panic while holding a
//! guard does **not** poison the lock (poison errors are unwrapped away).

#![deny(missing_docs)]

use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutex with parking_lot's panic-free `lock()` signature.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `&mut guard` wait API.
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_mut_guard(guard, |g| self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        let mut timed_out = false;
        take_mut_guard(guard, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

/// Run `f` on the owned guard behind `&mut`, putting the result back.
///
/// std's condvar consumes the guard by value; parking_lot's takes `&mut`.
/// Bridging needs a temporary move. If `f` panics there is no guard to put
/// back, so abort rather than leave a dangling reference.
fn take_mut_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    unsafe {
        let old = std::ptr::read(slot);
        let abort_on_unwind = AbortOnDrop;
        let new = f(old);
        std::mem::forget(abort_on_unwind);
        std::ptr::write(slot, new);
    }
}

struct AbortOnDrop;

impl Drop for AbortOnDrop {
    fn drop(&mut self) {
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_one();
        t.join().unwrap();
    }
}

//! Edge cases for the analyzer/planner: the shapes that break naive SQL
//! implementations.

use dashdb_local::common::dialect::Dialect;
use dashdb_local::common::Datum;
use dashdb_local::core::{Database, HardwareSpec, Session};

fn session() -> Session {
    Database::with_hardware(HardwareSpec::laptop()).connect()
}

#[test]
fn self_join_with_aliases() {
    let mut s = session();
    s.execute("CREATE TABLE emp (id INT, mgr INT, name VARCHAR(10))").unwrap();
    s.execute(
        "INSERT INTO emp VALUES (1, NULL, 'ceo'), (2, 1, 'vp'), (3, 2, 'eng')",
    )
    .unwrap();
    let rows = s
        .query(
            "SELECT e.name, m.name FROM emp e JOIN emp m ON e.mgr = m.id ORDER BY e.id",
        )
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get(0).as_str(), Some("vp"));
    assert_eq!(rows[0].get(1).as_str(), Some("ceo"));
}

#[test]
fn empty_tables_everywhere() {
    let mut s = session();
    s.execute("CREATE TABLE e (x INT, y VARCHAR(5))").unwrap();
    assert_eq!(s.query("SELECT * FROM e").unwrap().len(), 0);
    assert_eq!(
        s.query("SELECT COUNT(*), SUM(x) FROM e").unwrap()[0],
        dashdb_local::common::row![0i64, Datum::Null]
    );
    assert_eq!(s.query("SELECT x FROM e GROUP BY x").unwrap().len(), 0);
    assert_eq!(
        s.query("SELECT * FROM e a JOIN e b ON a.x = b.x").unwrap().len(),
        0
    );
    assert_eq!(
        s.query("SELECT x FROM e UNION SELECT x FROM e").unwrap().len(),
        0
    );
    assert_eq!(s.query("SELECT x FROM e ORDER BY y DESC").unwrap().len(), 0);
    // DML on empty tables.
    assert_eq!(s.execute("UPDATE e SET x = 1").unwrap().affected, 0);
    assert_eq!(s.execute("DELETE FROM e").unwrap().affected, 0);
}

#[test]
fn group_by_expression_and_multi_key() {
    let mut s = session();
    s.execute("CREATE TABLE t (a INT, b INT, v DOUBLE)").unwrap();
    s.execute("INSERT INTO t VALUES (1, 1, 10), (1, 2, 20), (2, 1, 30), (13, 1, 40)")
        .unwrap();
    // Expression key (generic agg path).
    let rows = s
        .query("SELECT MOD(a, 12), SUM(v) FROM t GROUP BY MOD(a, 12) ORDER BY 1")
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get(1), &Datum::Float(70.0)); // a=1 and a=13
    // Multi-column key.
    let rows = s
        .query("SELECT a, b, COUNT(*) FROM t GROUP BY a, b ORDER BY a, b")
        .unwrap();
    assert_eq!(rows.len(), 4);
}

#[test]
fn rownum_in_projection_and_where() {
    let mut s = session();
    s.execute("CREATE TABLE t (x INT)").unwrap();
    s.execute("INSERT INTO t VALUES (30), (10), (20)").unwrap();
    s.set_dialect(Dialect::Oracle);
    let rows = s.query("SELECT ROWNUM, x FROM t WHERE ROWNUM <= 2").unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get(0), &Datum::Int(1));
    assert_eq!(rows[1].get(0), &Datum::Int(2));
    // ROWNUM after a real filter numbers the passing rows.
    let rows = s
        .query("SELECT ROWNUM, x FROM t WHERE x > 10 AND ROWNUM <= 1")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(0), &Datum::Int(1));
}

#[test]
fn connect_by_cycle_terminates() {
    let mut s = session();
    s.execute("CREATE TABLE g (node VARCHAR(2), parent VARCHAR(2))").unwrap();
    // a -> b -> c -> a cycle plus a root.
    s.execute("INSERT INTO g VALUES ('r', NULL), ('a', 'r'), ('b', 'a'), ('c', 'b'), ('a2', 'c')")
        .unwrap();
    s.set_dialect(Dialect::Oracle);
    let rows = s
        .query(
            "SELECT node, LEVEL FROM g START WITH parent IS NULL \
             CONNECT BY PRIOR node = parent ORDER BY LEVEL",
        )
        .unwrap();
    assert_eq!(rows.len(), 5, "visited-set must stop re-expansion");
    assert_eq!(rows[4].get(1), &Datum::Int(5));
}

#[test]
fn union_mixed_numeric_types() {
    let mut s = session();
    s.execute("CREATE TABLE a (x INT)").unwrap();
    s.execute("CREATE TABLE b (x DOUBLE)").unwrap();
    s.execute("INSERT INTO a VALUES (1)").unwrap();
    s.execute("INSERT INTO b VALUES (1.0), (2.5)").unwrap();
    let rows = s
        .query("SELECT x FROM a UNION SELECT x FROM b ORDER BY 1")
        .unwrap();
    // 1 and 1.0 compare equal -> dedup to 2 rows.
    assert_eq!(rows.len(), 2);
    // Arity mismatch rejected.
    assert!(s.query("SELECT x FROM a UNION SELECT x, x FROM b").is_err());
}

#[test]
fn in_subquery_empty_and_not_in() {
    let mut s = session();
    s.execute("CREATE TABLE t (x INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    s.execute("CREATE TABLE keep (x INT)").unwrap();
    assert_eq!(
        s.query("SELECT x FROM t WHERE x IN (SELECT x FROM keep)").unwrap().len(),
        0,
        "IN over an empty subquery matches nothing"
    );
    assert_eq!(
        s.query("SELECT x FROM t WHERE x NOT IN (SELECT x FROM keep)").unwrap().len(),
        3,
        "NOT IN over an empty subquery matches everything"
    );
    s.execute("INSERT INTO keep VALUES (2), (NULL)").unwrap();
    // NOT IN with NULL in the list: three-valued logic rejects everything.
    assert_eq!(
        s.query("SELECT x FROM t WHERE x NOT IN (SELECT x FROM keep)").unwrap().len(),
        0
    );
}

#[test]
fn scalar_subquery_cardinality_enforced() {
    let mut s = session();
    s.execute("CREATE TABLE t (x INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    let e = s.query("SELECT (SELECT x FROM t) FROM t").unwrap_err();
    assert!(e.to_string().contains("more than one row"), "{e}");
    // Empty scalar subquery is NULL.
    s.execute("CREATE TABLE empty_t (x INT)").unwrap();
    let rows = s.query("SELECT (SELECT x FROM empty_t) FROM t").unwrap();
    assert!(rows[0].get(0).is_null());
}

#[test]
fn qualified_wildcards_in_joins() {
    let mut s = session();
    s.execute("CREATE TABLE l (a INT, b INT)").unwrap();
    s.execute("CREATE TABLE r (a INT, c INT)").unwrap();
    s.execute("INSERT INTO l VALUES (1, 2)").unwrap();
    s.execute("INSERT INTO r VALUES (1, 3)").unwrap();
    let rows = s.query("SELECT l.*, r.c FROM l JOIN r ON l.a = r.a").unwrap();
    assert_eq!(rows[0].len(), 3);
    // Unknown alias in a qualified wildcard errors.
    assert!(s.query("SELECT z.* FROM l JOIN r ON l.a = r.a").is_err());
}

#[test]
fn case_without_else_and_nested_functions() {
    let mut s = session();
    s.execute("CREATE TABLE t (x INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1), (5)").unwrap();
    let rows = s
        .query(
            "SELECT CASE WHEN x > 3 THEN UPPER(CONCAT('big', '!')) END FROM t ORDER BY x",
        )
        .unwrap();
    assert!(rows[0].get(0).is_null());
    assert_eq!(rows[1].get(0).as_str(), Some("BIG!"));
}

#[test]
fn order_by_with_limit_stability() {
    let mut s = session();
    s.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1, 1), (1, 2), (1, 3), (2, 4)").unwrap();
    // Stable sort: ties keep insertion order.
    let rows = s.query("SELECT v FROM t ORDER BY k FETCH FIRST 3 ROWS ONLY").unwrap();
    assert_eq!(
        rows.iter().map(|r| r.get(0).as_int().unwrap()).collect::<Vec<_>>(),
        vec![1, 2, 3]
    );
}

#[test]
fn where_clause_type_errors_are_clean() {
    let mut s = session();
    s.execute("CREATE TABLE t (x INT, s VARCHAR(5))").unwrap();
    s.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
    // Comparing string to int never matches (deterministic type-tag order)
    // but must not panic or error.
    let r = s.query("SELECT x FROM t WHERE s = 1");
    assert!(r.is_ok());
    // LIKE on an integer column is an execution error, not a panic.
    assert!(s.query("SELECT x FROM t WHERE x LIKE 'a%'").is_err());
}

#[test]
fn deeply_nested_subqueries_bounded() {
    let mut s = session();
    s.execute("CREATE TABLE t (x INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    let mut q = "SELECT x FROM t".to_string();
    for _ in 0..20 {
        q = format!("SELECT x FROM ({q}) d");
    }
    let e = s.query(&q).unwrap_err();
    assert!(e.to_string().contains("nesting"), "{e}");
}

#[test]
fn compound_block_executes_atomically_in_order() {
    let mut s = session();
    s.set_dialect(Dialect::Db2);
    s.execute("CREATE TABLE t (x INT)").unwrap();
    let r = s
        .execute(
            "BEGIN INSERT INTO t VALUES (1); INSERT INTO t VALUES (2); \
             UPDATE t SET x = x * 10; END",
        )
        .unwrap();
    assert_eq!(r.affected, 2, "block returns the last statement's result");
    let rows = s.query("SELECT x FROM t ORDER BY 1").unwrap();
    assert_eq!(
        rows.iter().map(|r| r.get(0).as_int().unwrap()).collect::<Vec<_>>(),
        vec![10, 20]
    );
}

#[test]
fn date_arithmetic_in_sql() {
    let mut s = session();
    s.execute("CREATE TABLE t (d DATE)").unwrap();
    s.execute("INSERT INTO t VALUES ('2016-12-25')").unwrap();
    let rows = s
        .query("SELECT d + 7, d - 360, d - DATE '2016-01-01' FROM t")
        .unwrap();
    assert_eq!(rows[0].get(0).render(), "2017-01-01");
    assert_eq!(rows[0].get(1).render(), "2015-12-31");
    assert_eq!(rows[0].get(2), &Datum::Int(359));
}

#[test]
fn syscat_introspection_views() {
    let mut s = session();
    s.execute("CREATE TABLE inv (sku BIGINT NOT NULL, qty INT, label VARCHAR(10))")
        .unwrap();
    s.execute("INSERT INTO inv VALUES (1, 5, 'a'), (2, 6, 'b')").unwrap();
    let rows = s
        .query("SELECT name, live_rows FROM syscat_tables WHERE name = 'INV'")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(1), &Datum::Int(2));
    let rows = s
        .query(
            "SELECT column_name, type_name, nullable FROM syscat_columns \
             WHERE table_name = 'INV' ORDER BY ordinal",
        )
        .unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].get(0).as_str(), Some("SKU"));
    assert_eq!(rows[0].get(1).as_str(), Some("BIGINT"));
    assert_eq!(rows[0].get(2), &Datum::Bool(false));
    // Functions view includes builtins and UDXes.
    let rows = s
        .query("SELECT COUNT(*) FROM syscat_functions WHERE kind = 'builtin'")
        .unwrap();
    assert!(rows[0].get(0).as_int().unwrap() > 80);
    s.database().catalog().register_udx(
        "my_fn",
        dashdb_local::common::dialect::DialectSet::ALL,
        1,
        1,
        dashdb_local::common::DataType::Int64,
        std::sync::Arc::new(|a, _| Ok(a[0].clone())),
    );
    let rows = s
        .query("SELECT name FROM syscat_functions WHERE kind = 'udx'")
        .unwrap();
    assert_eq!(rows[0].get(0).as_str(), Some("MY_FN"));
    // A user table may still shadow the SYSCAT name.
    s.execute("CREATE TABLE syscat_tables (x INT)").unwrap();
    let rows = s.query("SELECT * FROM syscat_tables").unwrap();
    assert!(rows.is_empty(), "user table shadows the view");
}

#[test]
fn temp_tables_are_session_private() {
    let db = Database::with_hardware(HardwareSpec::laptop());
    let mut s1 = db.connect();
    let mut s2 = db.connect();
    s1.set_dialect(Dialect::Netezza);
    s2.set_dialect(Dialect::Netezza);
    // Both sessions declare the same temp name without collision.
    s1.execute("CREATE TEMP TABLE scratch (x INT)").unwrap();
    s2.execute("CREATE TEMP TABLE scratch (x INT)").unwrap();
    s1.execute("INSERT INTO scratch VALUES (1)").unwrap();
    s2.execute("INSERT INTO scratch VALUES (2), (3)").unwrap();
    assert_eq!(s1.query("SELECT COUNT(*) FROM scratch").unwrap()[0].get(0), &Datum::Int(1));
    assert_eq!(s2.query("SELECT COUNT(*) FROM scratch").unwrap()[0].get(0), &Datum::Int(2));
    // A temp table shadows a same-named permanent table for its session.
    let mut s3 = db.connect();
    s3.execute("CREATE TABLE shadowed (x INT)").unwrap();
    s3.execute("INSERT INTO shadowed VALUES (9)").unwrap();
    s1.execute("CREATE TEMP TABLE shadowed (x INT)").unwrap();
    assert_eq!(s1.query("SELECT COUNT(*) FROM shadowed").unwrap()[0].get(0), &Datum::Int(0));
    assert_eq!(s3.query("SELECT COUNT(*) FROM shadowed").unwrap()[0].get(0), &Datum::Int(1));
    // DROP removes the temp first, revealing the permanent one.
    s1.execute("DROP TABLE shadowed").unwrap();
    assert_eq!(s1.query("SELECT COUNT(*) FROM shadowed").unwrap()[0].get(0), &Datum::Int(1));
    // Session close cleans up.
    s1.close();
    assert_eq!(s2.query("SELECT COUNT(*) FROM scratch").unwrap()[0].get(0), &Datum::Int(2));
}

//! Criterion: cache-conscious partitioned hash join, and the fused
//! join-aggregate against join-then-aggregate (the §II.B.7 ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dash_common::{row, Field, Row, Schema};
use dash_exec::agg::{try_fused_join_aggregate, AggExpr, AggFunc};
use dash_exec::batch::Batch;
use dash_exec::expr::Expr;
use dash_exec::functions::EvalContext;
use dash_exec::join::{hash_join, JoinType};
use dash_exec::key::KeyMode;
use dash_exec::stats::ExecStats;

fn fact(n: usize) -> Batch {
    let schema = Schema::new(vec![
        Field::not_null("fk", dash_common::DataType::Int64),
        Field::new("v", dash_common::DataType::Float64),
    ])
    .expect("schema");
    let rows: Vec<Row> = (0..n)
        .map(|i| row![(i % 1000) as i64, (i % 97) as f64])
        .collect();
    Batch::from_rows(schema, &rows).expect("batch")
}

fn dim() -> Batch {
    let schema = Schema::new(vec![
        Field::not_null("pk", dash_common::DataType::Int64),
        Field::new("label", dash_common::DataType::Utf8),
    ])
    .expect("schema");
    let rows: Vec<Row> = (0..1000)
        .map(|i| row![i as i64, format!("label-{}", i % 25)])
        .collect();
    Batch::from_rows(schema, &rows).expect("batch")
}

fn bench_join(c: &mut Criterion) {
    let d = dim();
    let mut group = c.benchmark_group("hash_join");
    for n in [10_000usize, 100_000] {
        let f = fact(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("inner", n), &f, |b, f| {
            b.iter(|| {
                let mut stats = ExecStats::default();
                let stmt = dash_common::StatementContext::unbounded();
                hash_join(f, &d, &[(0, 0)], JoinType::Inner, KeyMode::Encoded, 1, &stmt, &mut stats).expect("join")
            })
        });
    }
    group.finish();
}

fn bench_fused_vs_pipeline(c: &mut Criterion) {
    let d = dim();
    let out_schema = Schema::new(vec![
        Field::new("label", dash_common::DataType::Utf8),
        Field::new("cnt", dash_common::DataType::Int64),
        Field::new("total", dash_common::DataType::Float64),
    ])
    .expect("schema");
    let group_exprs = vec![Expr::col(3)]; // label in joined schema
    let aggs = vec![
        AggExpr {
            func: AggFunc::CountStar,
            args: vec![],
            distinct: false,
        },
        AggExpr {
            func: AggFunc::Sum,
            args: vec![Expr::col(1)],
            distinct: false,
        },
    ];
    let ctx = EvalContext::default();
    let mut group = c.benchmark_group("join_aggregate");
    for n in [10_000usize, 100_000] {
        let f = fact(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fused", n), &f, |b, f| {
            b.iter(|| {
                try_fused_join_aggregate(f, &d, &[(0, 0)], &group_exprs, &aggs, &out_schema)
                    .expect("fusable")
                    .expect("ok")
            })
        });
        group.bench_with_input(BenchmarkId::new("join_then_agg", n), &f, |b, f| {
            b.iter(|| {
                let mut stats = ExecStats::default();
                let stmt = dash_common::StatementContext::unbounded();
                let joined =
                    hash_join(f, &d, &[(0, 0)], JoinType::Inner, KeyMode::Encoded, 1, &stmt, &mut stats).expect("join");
                dash_exec::agg::hash_aggregate(
                    &joined,
                    &group_exprs,
                    &aggs,
                    out_schema.clone(),
                    &ctx,
                    KeyMode::Encoded,
                    1,
                    &mut stats,
                )
                .expect("agg")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join, bench_fused_vs_pipeline);
criterion_main!(benches);

//! Per-statement lifecycle control: cancellation tokens and memory budgets.
//!
//! The paper sells dashDB Local as predictable under concurrent analytic
//! load (§II.A workload management; Table 1 Test 2 runs 100 streams).
//! Predictability needs *preemption*: a statement that blows its deadline
//! or its memory budget has to stop where it stands — inside a scan
//! stride, a join partition, a simulated-I/O stall — not at the next
//! coordinator round boundary.
//!
//! [`StatementContext`] is the spine for that. It is created once per
//! statement (by `Session::execute` on a single node, by
//! `Cluster::query_with_deadline` in MPP), cloned freely (one `Arc`
//! bump), and consulted at every long-running check site:
//!
//! * the morsel pool checks it before **claiming each morsel**, so scan,
//!   aggregate, join, and sort observe cancellation within one morsel;
//! * the buffer pool polls it inside simulated-I/O stalls (sliced to
//!   ~1 ms), so a deadline kill never waits out a stalled page read;
//! * the MPP scatter workers poll it between and inside shard attempts.
//!
//! The token is **deadline-armed**: `is_cancelled` returns true once the
//! deadline passes even if nobody called [`StatementContext::cancel`],
//! so a lost watchdog can delay preemption but never lose it. The flag is
//! latched on first observation, making subsequent checks a single
//! relaxed atomic load.
//!
//! The memory budget is a shared atomic high-water account: operators
//! [`try_reserve`](StatementContext::try_reserve) their hash-table and
//! partition allocations and get a classified
//! [`DashError::ResourceExhausted`] when the statement would exceed its
//! budget — a clean abort instead of unbounded growth. [`BudgetLease`]
//! gives operators RAII release so an abort (error or cancellation)
//! returns every reserved byte.

use crate::error::{DashError, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Granularity at which cancellable sleeps poll the token. 1 ms keeps a
/// deadline kill from waiting out an injected multi-millisecond stall
/// while staying far coarser than the scheduler tick.
pub const STALL_POLL: Duration = Duration::from_millis(1);

#[derive(Debug)]
struct StatementInner {
    /// Latched cancellation flag (explicit cancel, watchdog, or the first
    /// observation of an expired deadline).
    cancelled: AtomicBool,
    /// Absolute deadline; `None` = never expires on its own.
    deadline: Option<Instant>,
    /// Memory budget in bytes; `u64::MAX` = unlimited.
    budget_limit: u64,
    /// Bytes currently reserved against the budget.
    budget_used: AtomicU64,
    /// Highest `budget_used` ever observed: the statement's peak reserved
    /// footprint. Only tracked when a budget limit is set (like
    /// `budget_used`), so unlimited statements stay on the fast path.
    budget_high_water: AtomicU64,
    /// Reservations refused because they would exceed the budget.
    budget_rejections: AtomicU64,
    /// Worst preemption latency observed, in morsels: the maximum number
    /// of morsels any pool worker *completed* after the token flipped.
    /// The claim-check contract bounds this at 1 (only the morsel already
    /// in flight may finish); tests assert it.
    cancel_latency_max_morsels: AtomicU64,
}

/// A cheap, cloneable per-statement cancellation token + memory budget.
///
/// See the [module docs](self) for the lifecycle it models. `Clone` is an
/// `Arc` bump; all methods are thread-safe.
#[derive(Debug, Clone)]
pub struct StatementContext {
    inner: Arc<StatementInner>,
}

impl Default for StatementContext {
    fn default() -> Self {
        StatementContext::unbounded()
    }
}

impl StatementContext {
    fn build(deadline: Option<Instant>, budget: Option<u64>) -> StatementContext {
        StatementContext {
            inner: Arc::new(StatementInner {
                cancelled: AtomicBool::new(false),
                deadline,
                budget_limit: budget.unwrap_or(u64::MAX),
                budget_used: AtomicU64::new(0),
                budget_high_water: AtomicU64::new(0),
                budget_rejections: AtomicU64::new(0),
                cancel_latency_max_morsels: AtomicU64::new(0),
            }),
        }
    }

    /// A context with no deadline and no budget: never cancels on its own
    /// (though [`cancel`](Self::cancel) still works) and never rejects a
    /// reservation. The default for paths that predate lifecycle control.
    pub fn unbounded() -> StatementContext {
        StatementContext::build(None, None)
    }

    /// A shared process-wide unbounded context, for hot paths that need a
    /// `&StatementContext` but have no statement (background maintenance,
    /// direct storage access). Avoids an allocation per call.
    pub fn ambient() -> &'static StatementContext {
        static AMBIENT: OnceLock<StatementContext> = OnceLock::new();
        AMBIENT.get_or_init(StatementContext::unbounded)
    }

    /// A context that self-cancels `deadline` from now.
    pub fn with_deadline(deadline: Duration) -> StatementContext {
        StatementContext::build(Instant::now().checked_add(deadline), None)
    }

    /// A context with a memory budget of `bytes` and no deadline.
    pub fn with_budget(bytes: u64) -> StatementContext {
        StatementContext::build(None, Some(bytes))
    }

    /// A context with an optional deadline and an optional budget — the
    /// general constructor sessions use.
    pub fn with_limits(deadline: Option<Duration>, budget: Option<u64>) -> StatementContext {
        StatementContext::build(
            deadline.and_then(|d| Instant::now().checked_add(d)),
            budget,
        )
    }

    /// Flip the token. Idempotent; every subsequent
    /// [`is_cancelled`](Self::is_cancelled) returns true.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Has the statement been cancelled (explicitly or by its deadline)?
    ///
    /// Deadline-armed: the first check past the deadline latches the flag,
    /// so a watchdog is an accelerator, not a requirement.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if let Some(dl) = self.inner.deadline {
            if Instant::now() >= dl {
                self.inner.cancelled.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// [`is_cancelled`](Self::is_cancelled) as a `Result`:
    /// `Err(DashError::Cancelled)` once the token has flipped.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(DashError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// The absolute deadline, if one is armed.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left before the deadline (`None` = no deadline; zero once
    /// passed). The WLM admission gate spends queue wait against this.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|dl| dl.saturating_duration_since(Instant::now()))
    }

    /// Sleep for `d`, polling the token every [`STALL_POLL`] so a
    /// cancelled statement never waits out the stall. Returns
    /// `Err(DashError::Cancelled)` if the token flips mid-sleep.
    pub fn sleep_cancellable(&self, d: Duration) -> Result<()> {
        let end = Instant::now() + d;
        loop {
            self.check()?;
            let now = Instant::now();
            if now >= end {
                return Ok(());
            }
            std::thread::sleep((end - now).min(STALL_POLL));
        }
    }

    /// Reserve `bytes` against the statement's memory budget. Refuses with
    /// a classified [`DashError::ResourceExhausted`] (and counts the
    /// rejection) when the reservation would exceed the budget; the
    /// account is left untouched on refusal.
    pub fn try_reserve(&self, bytes: u64) -> Result<()> {
        if self.inner.budget_limit == u64::MAX {
            return Ok(());
        }
        let mut used = self.inner.budget_used.load(Ordering::Relaxed);
        loop {
            let new = used.saturating_add(bytes);
            if new > self.inner.budget_limit {
                self.inner.budget_rejections.fetch_add(1, Ordering::Relaxed);
                return Err(DashError::ResourceExhausted(format!(
                    "statement memory budget exceeded: {} B reserved + {} B requested > {} B limit",
                    used, bytes, self.inner.budget_limit
                )));
            }
            match self.inner.budget_used.compare_exchange_weak(
                used,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner
                        .budget_high_water
                        .fetch_max(new, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => used = actual,
            }
        }
    }

    /// Return `bytes` to the budget (saturating; over-release is clamped).
    pub fn release(&self, bytes: u64) {
        if self.inner.budget_limit == u64::MAX {
            return;
        }
        let mut used = self.inner.budget_used.load(Ordering::Relaxed);
        loop {
            let new = used.saturating_sub(bytes);
            match self.inner.budget_used.compare_exchange_weak(
                used,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => used = actual,
            }
        }
    }

    /// Bytes currently reserved.
    pub fn budget_used(&self) -> u64 {
        self.inner.budget_used.load(Ordering::Relaxed)
    }

    /// Peak bytes ever reserved simultaneously. Zero for unlimited
    /// statements (the budget account is not tracked without a limit).
    pub fn budget_high_water(&self) -> u64 {
        self.inner.budget_high_water.load(Ordering::Relaxed)
    }

    /// Reservations refused so far.
    pub fn budget_rejections(&self) -> u64 {
        self.inner.budget_rejections.load(Ordering::Relaxed)
    }

    /// Record a worker's preemption latency (morsels it completed after
    /// the token flipped); keeps the maximum.
    pub fn note_cancel_latency(&self, morsels: u64) {
        self.inner
            .cancel_latency_max_morsels
            .fetch_max(morsels, Ordering::Relaxed);
    }

    /// Worst preemption latency observed so far, in morsels.
    pub fn cancel_latency_max_morsels(&self) -> u64 {
        self.inner.cancel_latency_max_morsels.load(Ordering::Relaxed)
    }
}

/// RAII budget reservation: charges grow the lease, drop returns every
/// reserved byte — including on error and cancellation unwinds, so an
/// aborted operator can never leak budget into the next one.
#[derive(Debug)]
pub struct BudgetLease {
    ctx: StatementContext,
    held: u64,
}

impl BudgetLease {
    /// An empty lease against `ctx`.
    pub fn new(ctx: &StatementContext) -> BudgetLease {
        BudgetLease {
            ctx: ctx.clone(),
            held: 0,
        }
    }

    /// Reserve `bytes` more; classified refusal leaves the lease intact.
    pub fn charge(&mut self, bytes: u64) -> Result<()> {
        self.ctx.try_reserve(bytes)?;
        self.held += bytes;
        Ok(())
    }

    /// Bytes this lease holds.
    pub fn held(&self) -> u64 {
        self.held
    }
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        self.ctx.release(self.held);
    }
}

/// Rough heap footprint of one datum, for budget accounting. Estimates on
/// purpose: the budget bounds *growth*, it is not an allocator.
pub fn approx_datum_bytes(d: &crate::Datum) -> u64 {
    let base = std::mem::size_of::<crate::Datum>() as u64;
    match d {
        crate::Datum::Str(s) => base + s.len() as u64,
        _ => base,
    }
}

/// Rough heap footprint of a row of datums.
pub fn approx_row_bytes(row: &[crate::Datum]) -> u64 {
    row.iter().map(approx_datum_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_cancels_or_rejects() {
        let ctx = StatementContext::unbounded();
        assert!(!ctx.is_cancelled());
        ctx.check().unwrap();
        ctx.try_reserve(u64::MAX).unwrap();
        assert_eq!(ctx.budget_used(), 0, "unlimited budget is not tracked");
        assert_eq!(ctx.remaining(), None);
    }

    #[test]
    fn explicit_cancel_latches_through_clones() {
        let ctx = StatementContext::unbounded();
        let clone = ctx.clone();
        clone.cancel();
        assert!(ctx.is_cancelled());
        assert_eq!(ctx.check().unwrap_err(), DashError::Cancelled);
    }

    #[test]
    fn deadline_arms_the_token() {
        let ctx = StatementContext::with_deadline(Duration::from_millis(5));
        assert!(!ctx.is_cancelled(), "fresh deadline has not passed");
        std::thread::sleep(Duration::from_millis(10));
        assert!(ctx.is_cancelled(), "expired deadline flips the token");
        // Latched: remaining() is zero, checks stay cancelled.
        assert_eq!(ctx.remaining(), Some(Duration::ZERO));
        assert!(ctx.check().is_err());
    }

    #[test]
    fn budget_accounting_and_classified_refusal() {
        let ctx = StatementContext::with_budget(1000);
        ctx.try_reserve(600).unwrap();
        ctx.try_reserve(400).unwrap();
        let err = ctx.try_reserve(1).unwrap_err();
        assert_eq!(err.class(), "53200", "classified OOM: {err}");
        assert_eq!(ctx.budget_rejections(), 1);
        // Refusal does not consume budget; release frees it.
        assert_eq!(ctx.budget_used(), 1000);
        ctx.release(500);
        ctx.try_reserve(500).unwrap();
        assert_eq!(ctx.budget_used(), 1000);
        assert_eq!(ctx.budget_high_water(), 1000, "peak tracked across release");
        ctx.release(1000);
        assert_eq!(ctx.budget_high_water(), 1000, "release never lowers the peak");
    }

    #[test]
    fn lease_returns_bytes_on_drop() {
        let ctx = StatementContext::with_budget(1000);
        {
            let mut lease = BudgetLease::new(&ctx);
            lease.charge(800).unwrap();
            assert!(lease.charge(300).is_err(), "over budget");
            assert_eq!(lease.held(), 800, "failed charge not added");
            assert_eq!(ctx.budget_used(), 800);
        }
        assert_eq!(ctx.budget_used(), 0, "drop released the lease");
        ctx.try_reserve(1000).unwrap();
    }

    #[test]
    fn cancellable_sleep_preempts() {
        let ctx = StatementContext::unbounded();
        let c = ctx.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            c.cancel();
        });
        let start = Instant::now();
        let err = ctx.sleep_cancellable(Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, DashError::Cancelled);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "stall must not be waited out: {:?}",
            start.elapsed()
        );
        t.join().unwrap();
    }

    #[test]
    fn cancellable_sleep_completes_when_alive() {
        let ctx = StatementContext::unbounded();
        let start = Instant::now();
        ctx.sleep_cancellable(Duration::from_millis(5)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn cancel_latency_keeps_max() {
        let ctx = StatementContext::unbounded();
        ctx.note_cancel_latency(0);
        ctx.note_cancel_latency(1);
        ctx.note_cancel_latency(0);
        assert_eq!(ctx.cancel_latency_max_morsels(), 1);
    }

    #[test]
    fn approx_sizes_scale_with_strings() {
        let short = approx_row_bytes(&[crate::Datum::Int(1)]);
        let long = approx_row_bytes(&[crate::Datum::str("x".repeat(100))]);
        assert!(long > short + 90);
    }
}
